//! Incremental proportional sampling over per-request gain weights.
//!
//! The greedy scheduler (§5.3, Listing 1) allocates every network slot by
//! drawing one request proportionally to its expected utility gain
//! `P_{i,t} · g(B_i + 1)`.  Three implementations of that draw coexist,
//! selectable via [`SamplerVariant`], so every optimization stays measurable
//! against its predecessor (the Figure 16 methodology):
//!
//! | variant | per-block cost | per-update cost (full rebuild / diff) | structure |
//! |---------|----------------|---------------------------------------|-----------|
//! | [`Scan`](SamplerVariant::Scan)   | `O(T log T)` (`O(n)` with meta off) | `O(m·C)` / `O(m·s + Δ·b·C)` | rebuild + prefix-scan the candidate weights every draw |
//! | [`Eager`](SamplerVariant::Eager) | `O(m log m + log T)` | `O(m·C + T log T)` / `O(m·s + Δ·b·C + m log m)` | Fenwick trees; every materialized weight rewritten per slot |
//! | [`Lazy`](SamplerVariant::Lazy)   | `O(b log m + log T)` | `O(m·C + T log T)` / `O(m·s + Δ·b·C + Δ log m)` | Fenwick trees; per-slot advance touches `b` bucket scalars |
//!
//! with `T` touched requests (up to the schedule length `C`), `m`
//! materialized requests, `b` distinct tail *shapes* (`b ≤ m`, and `b = 1`
//! for the homogeneous-tail workloads real predictors emit), `s` prediction
//! slices (4 by default), and `Δ` the number of requests whose prediction
//! actually changed between successive updates.  Every client interaction
//! re-sends the whole predicted distribution, so `update_prediction` — not
//! block sampling — is the hot path once per-block cost is flat: the diff
//! path ([`HorizonModel::apply_update`](crate::scheduler::HorizonModel))
//! keeps bucket membership and Fenwick state for requests whose prediction
//! is unchanged, applies `O(1)` coefficient rescales for shape-preserving
//! changes, and falls back to the full rebuild when the structural diff
//! exceeds `max(64, m/4)`.  For the lazy default that makes a small-diff
//! update `O(m·s + Δ·b·C + Δ log m)` instead of `O(m·C + T log T)` —
//! ~140× faster at `m = 10⁴` with 1% churn on the `sampler_json`
//! update-heavy case.
//!
//! The structure behind the incremental variants:
//!
//! * [`FenwickTree`] — a flat `f64` sum tree supporting `O(log n)` point
//!   assignment, append, prefix sums, and proportional *locate* (find the
//!   entry containing a cumulative offset).
//! * [`GainSampler`] — the scheduler-facing composite.  Requests fall into
//!   four segment groups, concatenated in a deterministic draw order:
//!
//!   1. **Shape buckets**: materialized requests whose tails evolve by the
//!      same per-slot multiplier (see
//!      [`TailShapePartition`](crate::scheduler::TailShapePartition)) share
//!      one tree holding the slot-invariant part of each weight
//!      (`g_i(B_i) · tail_i(0)`) plus a single scalar factor
//!      `s(t) = tail(rep, t) / tail(rep, 0)`.  Advancing the slot index
//!      updates the factor — `O(1)` for the whole bucket.  The eager
//!      variant uses the same layout but pins every factor at `1` and
//!      rewrites all `m` member weights per slot (the PR 2 behaviour, kept
//!      as the measured baseline).
//!   2. **Irregular** materialized requests (no shared shape, or bucket-cap
//!      overflow) keep exact weights `g_i(B_i) · tail_i(t)` in a
//!      binary-indexed tree over the per-slot tail deltas, re-derived each
//!      slot — the small exact-refresh fallback.
//!   3. **Shared-tail** requests (touched but unmaterialized) store only the
//!      gain part `g_i(B_i)`; their common factor `residual(t)` is a single
//!      scalar applied at draw time.  The group lives in a *compact* tree —
//!      each request is assigned a dense slot when first touched.
//!   4. **Untouched** requests are one meta-entry *per utility class* (one
//!      per distinct gain table) with weight
//!      `count_c · g_c(1) · residual(t)`: the heterogeneous hedge is exact,
//!      not bounded by a catalog-wide first-block gain.  A member of the
//!      winning class is drawn uniformly (§5.3.1).
//!
//! Determinism under a fixed seed: a draw maps a cumulative offset to an
//! entry through the segment layout, so the layout must be reproducible.
//! Bucket membership comes from the id-sorted materialized set, shared-group
//! slots are assigned in insertion order (the scheduler inserts in a
//! deterministic order), and meta classes are ordered by class index.  All
//! three variants walk the *same* segment layout, which is what makes
//! block-for-block parity between them testable (and tested, 256-case
//! proptest in the greedy scheduler).
//!
//! Per-block cost drops from `O(T log T)` (scan) through `O(m log m)`
//! (eager) to `O(b log m)` (lazy) — for homogeneous-tail catalogs the lazy
//! variant's per-block cost is flat in `m`, the same "cost must not grow
//! with catalog size" argument §5.3.1 makes for its 13× meta-request
//! speedup, now applied to the materialized set too.

use std::collections::HashMap;

use crate::scheduler::TailShapePartition;
use crate::types::RequestId;

/// Which sampling implementation the greedy scheduler uses for its
/// per-block proportional draw.  All variants draw from the same weight
/// decomposition and consume the RNG identically — they differ only in
/// per-block cost (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerVariant {
    /// Rebuild, sort, and prefix-scan the candidate weights on every draw —
    /// the seed implementation, retained as the Figure 16 baseline.
    Scan,
    /// Incremental Fenwick weights with an exact rewrite of every
    /// materialized weight per slot advance (the PR 2 sampler).
    Eager,
    /// Incremental Fenwick weights with lazily-rescaled shape buckets: a
    /// slot advance touches one scalar per bucket instead of `m` weights.
    #[default]
    Lazy,
}

impl SamplerVariant {
    /// Whether this variant maintains the incremental weight structure.
    pub fn is_incremental(self) -> bool {
        !matches!(self, SamplerVariant::Scan)
    }

    /// Short label used in benches and experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            SamplerVariant::Scan => "scan",
            SamplerVariant::Eager => "eager",
            SamplerVariant::Lazy => "lazy",
        }
    }
}

/// A Fenwick (binary-indexed) tree over non-negative `f64` weights with
/// `O(log n)` point assignment, append, prefix sums, and proportional
/// search.
#[derive(Debug, Clone)]
pub struct FenwickTree {
    /// 1-based partial sums (`tree[0]` unused).
    tree: Vec<f64>,
    /// Current value of each entry, for exact point assignment.
    values: Vec<f64>,
    /// Number of entries with a strictly positive value.  Repeated
    /// add/subtract cycles leave `O(ε)` residue in the partial sums, so an
    /// all-zero tree could otherwise report a positive total — and a caller
    /// drawing proportionally against that phantom mass would consume
    /// randomness a truthfully-zero structure would not (breaking draw
    /// parity with an exact recomputation).
    positive: usize,
}

impl FenwickTree {
    /// Creates a tree of `len` zero-weight entries.
    pub fn new(len: usize) -> Self {
        FenwickTree {
            tree: vec![0.0; len + 1],
            values: vec![0.0; len],
            positive: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current weight of entry `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Assigns weight `w` to entry `i`.  `w` must be finite and
    /// non-negative (weights are sampling masses).
    pub fn set(&mut self, i: usize, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "weight must be finite and >= 0");
        let delta = w - self.values[i];
        // lint:allow(float-eq) -- exact no-op short-circuit: any nonzero delta must propagate to the sums
        if delta == 0.0 {
            return;
        }
        if self.values[i] > 0.0 {
            self.positive -= 1;
        }
        if w > 0.0 {
            self.positive += 1;
        }
        self.values[i] = w;
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] += delta;
            j += j & j.wrapping_neg();
        }
    }

    /// Appends a new entry with weight `w` in `O(log n)`.
    pub fn push(&mut self, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "weight must be finite and >= 0");
        if w > 0.0 {
            self.positive += 1;
        }
        self.values.push(w);
        // Node `j` covers values[(j - lowbit(j))..j]; derive the new node
        // from existing prefix sums instead of rebuilding.
        let j = self.values.len();
        let lb = j & j.wrapping_neg();
        let covered_before = self.prefix_sum(j - 1) - self.prefix_sum(j - lb);
        self.tree.push(covered_before + w);
    }

    /// Sum of the weights of entries `0..i`.
    pub fn prefix_sum(&self, i: usize) -> f64 {
        let mut j = i.min(self.values.len());
        let mut s = 0.0;
        while j > 0 {
            s += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        s
    }

    /// Total weight.  Exactly `0` when no entry is positive, even if
    /// floating-point residue survives in the partial sums (see the
    /// `positive` field).
    pub fn total(&self) -> f64 {
        if self.positive == 0 {
            return 0.0;
        }
        self.prefix_sum(self.values.len())
    }

    /// Finds the entry containing cumulative offset `x`: the smallest `i`
    /// with `prefix_sum(i + 1) > x`, skipping zero-weight entries.  Returns
    /// `None` when `x` is negative or at/after the total weight.
    pub fn locate(&self, x: f64) -> Option<usize> {
        if self.values.is_empty() || x < 0.0 {
            return None;
        }
        let n = self.values.len();
        let mut idx = 0usize; // 1-based position walked so far
        let mut rem = x;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = idx + step;
            if next <= n && self.tree[next] <= rem {
                idx = next;
                rem -= self.tree[next];
            }
            step >>= 1;
        }
        // `idx` entries have cumulative weight <= x; entry `idx` (0-based) is
        // the candidate.  Floating-point boundary hits can land on a
        // zero-weight entry; skip forward to the next positive one.
        let mut i = idx;
        while i < n && self.values[i] <= 0.0 {
            i += 1;
        }
        if i < n && rem < self.values[i] {
            Some(i)
        } else {
            None
        }
    }

    /// Index of the last entry with positive weight, if any — the
    /// deterministic fallback for draws that land exactly on the total due
    /// to floating-point rounding.
    pub fn last_positive(&self) -> Option<usize> {
        self.values.iter().rposition(|&w| w > 0.0)
    }

    /// Audit: indices of sum nodes whose stored partial sum disagrees with a
    /// brute-force recomputation over the covered values (node `j` covers
    /// `values[j - lowbit(j)..j]`), beyond the accumulated-residue tolerance.
    /// Returns `(node, stored, expected)` triples.
    #[cfg(feature = "audit")]
    pub fn audit_bad_nodes(&self) -> Vec<(usize, f64, f64)> {
        let mut bad = Vec::new();
        for j in 1..self.tree.len() {
            let lb = j & j.wrapping_neg();
            let expected: f64 = self.values[j - lb..j].iter().sum();
            let tol = 1e-9 * expected.abs().max(1.0);
            if (self.tree[j] - expected).abs() > tol {
                bad.push((j, self.tree[j], expected));
            }
        }
        bad
    }

    /// Audit: the positive-entry counter vs. an exact recount, when they
    /// drift (`(stored, actual)`); `None` when consistent.
    #[cfg(feature = "audit")]
    pub fn audit_positive_count_drift(&self) -> Option<(usize, usize)> {
        let actual = self.values.iter().filter(|&&v| v > 0.0).count();
        if actual == self.positive {
            None
        } else {
            Some((self.positive, actual))
        }
    }

    /// Recomputes the partial sums exactly from the stored values in `O(n)`.
    ///
    /// Long chains of delta updates leave `O(ε · past-magnitude)` residue in
    /// the sum nodes; when the live values decay far below their history
    /// (e.g. `γ^t` tails deep into a schedule), that residue dominates the
    /// prefix sums and proportional draws become garbage.  Callers that
    /// rewrite *every* value each step (the eager refresh, the irregular
    /// exact-refresh set) follow up with this to keep the sums exact — it
    /// costs no more than the rewrite they just did.
    pub fn rebuild_sums(&mut self) {
        let n = self.values.len();
        for node in self.tree.iter_mut() {
            *node = 0.0;
        }
        // Standard O(n) construction: push each node's sum up to its parent.
        for i in 1..=n {
            self.tree[i] += self.values[i - 1];
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }
}

/// Which weight group a proportional draw landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampledGroup {
    /// A specific request (shape-bucket, irregular, or shared-tail group).
    Request(RequestId),
    /// The untouched meta-entry of utility class `c`; the caller draws an
    /// untouched member of that class uniformly.
    Meta(usize),
}

/// Where a materialized request lives inside the explicit layout, packed as
/// `bucket << 32 | position` (bucket `u32::MAX` = the irregular tree) so the
/// whole index is one dense flat array — the per-block hot path does a
/// single indexed load instead of hashing into a map whose buckets spill
/// out of cache at large `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExplicitSlot(u64);

const NO_SLOT: ExplicitSlot = ExplicitSlot(u64::MAX);
const IRREGULAR_BUCKET: u32 = u32::MAX;

impl ExplicitSlot {
    fn bucket(b: u32, pos: u32) -> Self {
        ExplicitSlot(((b as u64) << 32) | pos as u64)
    }

    fn irregular(pos: u32) -> Self {
        Self::bucket(IRREGULAR_BUCKET, pos)
    }

    fn decode(self) -> Option<(u32, u32)> {
        if self == NO_SLOT {
            None
        } else {
            Some(((self.0 >> 32) as u32, self.0 as u32))
        }
    }
}

/// One shape bucket: a tree of slot-invariant member values scaled by a
/// single per-slot factor.
#[derive(Debug, Clone)]
struct BucketTree {
    /// Members in insertion order (mirrors the partition's member list, plus
    /// zero-weight tombstones left by diff-update removals).
    ids: Vec<RequestId>,
    /// Per-member values.  Lazy variant: `g_i(B_i) · tail_i(0)` with
    /// `factor = s(t)`; eager variant: `g_i(B_i) · tail_i(t) · γ^{-t}` with
    /// `factor = γ^t` (the global exponent rescale keeping stored
    /// magnitudes O(1)).
    tree: FenwickTree,
    /// Per-member slot-invariant coefficients `tail_i(0)`, cached here so
    /// the lazy hot path multiplies a local 8-byte load instead of chasing
    /// the horizon model's tails on every gain change.
    coefs: Vec<f64>,
    /// The bucket-wide scale applied at draw time.
    factor: f64,
    /// Tombstoned (removed) slots; zero-weight, so they never affect draws.
    /// Compacted away once they outnumber the live members.
    dead: usize,
}

impl BucketTree {
    fn empty() -> Self {
        BucketTree {
            ids: Vec::new(),
            tree: FenwickTree::new(0),
            coefs: Vec::new(),
            factor: 0.0,
            dead: 0,
        }
    }
}

/// One per-utility-class meta-entry for the untouched remainder.
#[derive(Debug, Clone)]
struct MetaEntry {
    /// Untouched members of the class.
    untouched: usize,
    /// The class's exact first-block gain `g_c(1)`.
    gain: f64,
}

/// Incremental gain-weight sampler for the greedy scheduler.
///
/// See the [module docs](self) for the four-group decomposition.  The
/// scheduler owns the bookkeeping of *which* requests belong to which group;
/// this type owns the weights and the draw.
#[derive(Debug, Clone)]
pub struct GainSampler {
    /// Shape buckets in partition order.
    buckets: Vec<BucketTree>,
    /// Irregular (exact-refresh) request ids in insertion order (plus
    /// zero-weight tombstones); position `i` owns entry `i` of `irregular`.
    irregular_ids: Vec<RequestId>,
    /// Rescaled weights `g_i(B_i) · tail_i(t) · γ^{-t}` of the irregular
    /// requests (stored magnitudes stay O(1) across the schedule).
    irregular: FenwickTree,
    /// Tombstoned irregular slots (compacted once they dominate).
    irregular_dead: usize,
    /// The irregular group's draw-time scale `γ^t`.
    irregular_scale: f64,
    /// Where each materialized request lives, densely indexed by request;
    /// `NO_SLOT` for unmaterialized requests.  Rebuilds reset only the
    /// previous layout's entries, so the cost stays `O(m)`, not `O(n)`.
    explicit_slots: Vec<ExplicitSlot>,
    /// Dense slot of each shared-group request, assigned on first insertion.
    shared_slots: HashMap<RequestId, usize>,
    /// Slot → request id (the inverse of `shared_slots`).
    shared_ids: Vec<RequestId>,
    /// Gain parts `g_i(B_i)` of touched-but-unmaterialized requests, by slot.
    shared: FenwickTree,
    /// The shared group's (and the meta-entries') common tail factor
    /// `residual(t)`.
    shared_scale: f64,
    /// Per-utility-class meta-entries, in class-index order.
    meta: Vec<MetaEntry>,
    /// Lifetime count of tombstone compactions (bucket + irregular).
    compactions: u64,
    /// Lifetime count of entries moved by those compactions — the measurable
    /// amortized cost of the `dead > 32 && dead·2 > len` heuristic.
    compaction_moved: u64,
}

impl GainSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        GainSampler {
            buckets: Vec::new(),
            irregular_ids: Vec::new(),
            irregular: FenwickTree::new(0),
            irregular_dead: 0,
            irregular_scale: 1.0,
            explicit_slots: Vec::new(),
            shared_slots: HashMap::new(),
            shared_ids: Vec::new(),
            shared: FenwickTree::new(0),
            shared_scale: 0.0,
            meta: Vec::new(),
            compactions: 0,
            compaction_moved: 0,
        }
    }

    /// Resets all weights and installs a new explicit layout (`partition`)
    /// and meta-class gain catalog (`meta_gains`, one exact first-block gain
    /// per utility class) over a request space of size `n`, in `O(m)`;
    /// weights, factors, coefficients, and untouched counts start at zero.
    ///
    /// Shared-group slots are re-assigned in subsequent insertion order;
    /// callers that need seed-determinism must re-insert in a deterministic
    /// order (the scheduler inserts its canonical shared order).
    pub fn rebuild(&mut self, partition: &TailShapePartition, meta_gains: &[f64], n: usize) {
        // Un-index the previous layout (O(m_prev)), then grow the dense
        // index if the request space did.  Tombstoned slots still name their
        // old request, which may have been re-indexed elsewhere since — only
        // clear entries that still point at the slot being dropped.
        for (bi, b) in self.buckets.iter().enumerate() {
            for (pos, &r) in b.ids.iter().enumerate() {
                if self.explicit_slots[r.index()] == ExplicitSlot::bucket(bi as u32, pos as u32) {
                    self.explicit_slots[r.index()] = NO_SLOT;
                }
            }
        }
        for (pos, &r) in self.irregular_ids.iter().enumerate() {
            if self.explicit_slots[r.index()] == ExplicitSlot::irregular(pos as u32) {
                self.explicit_slots[r.index()] = NO_SLOT;
            }
        }
        if self.explicit_slots.len() < n {
            self.explicit_slots.resize(n, NO_SLOT);
        }
        self.buckets.clear();
        for (bi, b) in partition.buckets.iter().enumerate() {
            for (pos, &r) in b.members.iter().enumerate() {
                self.explicit_slots[r.index()] = ExplicitSlot::bucket(bi as u32, pos as u32);
            }
            self.buckets.push(BucketTree {
                ids: b.members.clone(),
                tree: FenwickTree::new(b.members.len()),
                coefs: vec![0.0; b.members.len()],
                factor: 0.0,
                dead: 0,
            });
        }
        for (pos, &r) in partition.irregular.iter().enumerate() {
            self.explicit_slots[r.index()] = ExplicitSlot::irregular(pos as u32);
        }
        self.irregular_ids = partition.irregular.clone();
        self.irregular = FenwickTree::new(self.irregular_ids.len());
        self.irregular_dead = 0;
        self.irregular_scale = 1.0;
        self.shared_slots.clear();
        self.shared_ids.clear();
        self.shared = FenwickTree::new(0);
        self.shared_scale = 0.0;
        self.meta = meta_gains
            .iter()
            .map(|&gain| MetaEntry { untouched: 0, gain })
            .collect();
    }

    /// Appends an empty shape bucket, mirroring a bucket the model's diff
    /// update added to the partition.
    pub fn push_bucket(&mut self) {
        self.buckets.push(BucketTree::empty());
    }

    /// Removes materialized request `r` from the explicit layout: its slot
    /// becomes a zero-weight tombstone (skipped by draws, compacted away
    /// once tombstones outnumber live members), so removal is an `O(log m)`
    /// point update instead of a layout rebuild.
    pub fn remove_explicit(&mut self, r: RequestId) {
        match self.explicit_slots[r.index()].decode() {
            Some((IRREGULAR_BUCKET, pos)) => {
                self.irregular.set(pos as usize, 0.0);
                self.irregular_dead += 1;
            }
            Some((b, pos)) => {
                let bucket = &mut self.buckets[b as usize];
                bucket.tree.set(pos as usize, 0.0);
                bucket.coefs[pos as usize] = 0.0;
                bucket.dead += 1;
            }
            None => panic!("request not in the explicit layout"),
        }
        self.explicit_slots[r.index()] = NO_SLOT;
        self.maybe_compact();
    }

    /// Appends `r` to shape bucket `b` with zero weight (the caller sets the
    /// coefficient and value next).  `r` must not already be explicit.
    pub fn append_bucket_member(&mut self, b: usize, r: RequestId) {
        debug_assert_eq!(self.explicit_slots[r.index()], NO_SLOT);
        let bucket = &mut self.buckets[b];
        self.explicit_slots[r.index()] = ExplicitSlot::bucket(b as u32, bucket.ids.len() as u32);
        bucket.ids.push(r);
        bucket.coefs.push(0.0);
        bucket.tree.push(0.0);
    }

    /// Appends `r` to the irregular set with zero weight.  `r` must not
    /// already be explicit.
    pub fn append_irregular(&mut self, r: RequestId) {
        debug_assert_eq!(self.explicit_slots[r.index()], NO_SLOT);
        self.explicit_slots[r.index()] = ExplicitSlot::irregular(self.irregular_ids.len() as u32);
        self.irregular_ids.push(r);
        self.irregular.push(0.0);
    }

    /// Rebuilds any tombstone-dominated structure compactly.  Live order is
    /// preserved, so the draw layout (the sequence of positive-weight
    /// entries) is unchanged and seed determinism survives compaction.
    fn maybe_compact(&mut self) {
        for b in 0..self.buckets.len() {
            let bucket = &self.buckets[b];
            if bucket.dead > 32 && bucket.dead * 2 > bucket.ids.len() {
                self.compact_bucket(b);
            }
        }
        if self.irregular_dead > 32 && self.irregular_dead * 2 > self.irregular_ids.len() {
            self.compact_irregular();
        }
    }

    fn compact_bucket(&mut self, b: usize) {
        let bucket = &mut self.buckets[b];
        let old_ids = std::mem::take(&mut bucket.ids);
        let old_coefs = std::mem::take(&mut bucket.coefs);
        let old_tree = std::mem::replace(&mut bucket.tree, FenwickTree::new(0));
        bucket.dead = 0;
        self.compactions += 1;
        self.compaction_moved += old_ids.len() as u64;
        for (pos, &r) in old_ids.iter().enumerate() {
            if self.explicit_slots[r.index()] == ExplicitSlot::bucket(b as u32, pos as u32) {
                let bucket = &mut self.buckets[b];
                self.explicit_slots[r.index()] =
                    ExplicitSlot::bucket(b as u32, bucket.ids.len() as u32);
                bucket.ids.push(r);
                bucket.coefs.push(old_coefs[pos]);
                bucket.tree.push(old_tree.get(pos));
            }
        }
    }

    fn compact_irregular(&mut self) {
        let old_ids = std::mem::take(&mut self.irregular_ids);
        let old_tree = std::mem::replace(&mut self.irregular, FenwickTree::new(0));
        self.irregular_dead = 0;
        self.compactions += 1;
        self.compaction_moved += old_ids.len() as u64;
        for (pos, &r) in old_ids.iter().enumerate() {
            if self.explicit_slots[r.index()] == ExplicitSlot::irregular(pos as u32) {
                self.explicit_slots[r.index()] =
                    ExplicitSlot::irregular(self.irregular_ids.len() as u32);
                self.irregular_ids.push(r);
                self.irregular.push(old_tree.get(pos));
            }
        }
    }

    /// Number of shape buckets in the installed layout.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Lifetime `(compactions, entries moved)` of the tombstone-compaction
    /// heuristic — the observable its amortized-O(1) bound is asserted on.
    pub fn compaction_stats(&self) -> (u64, u64) {
        (self.compactions, self.compaction_moved)
    }

    /// Total explicit-layout slot capacity currently allocated (live +
    /// tombstoned, buckets + irregular).  Bounded by the compaction
    /// heuristic to O(live members).
    pub fn explicit_capacity(&self) -> usize {
        self.buckets.iter().map(|b| b.ids.len()).sum::<usize>() + self.irregular_ids.len()
    }

    /// Live (non-tombstoned) weight entries across every group — buckets,
    /// irregular, shared, and meta-class hedges.  The sampler's resident
    /// footprint, aggregated fleet-wide into
    /// [`ShardSnapshot::sampler_entries`](crate::shard::ShardSnapshot) to
    /// make the session layer's memory-in-session-count story measurable
    /// next to its model-dedup counters.
    pub fn live_entries(&self) -> usize {
        let bucket_live: usize = self.buckets.iter().map(|b| b.ids.len() - b.dead).sum();
        bucket_live
            + (self.irregular_ids.len() - self.irregular_dead)
            + self.shared_ids.len()
            + self.meta.len()
    }

    /// Audit: every Fenwick tree in the layout, labeled — bucket trees in
    /// partition order, then irregular, then shared.
    #[cfg(feature = "audit")]
    pub fn audit_fenwick_trees(&self) -> Vec<(String, &FenwickTree)> {
        let mut trees: Vec<(String, &FenwickTree)> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(b, bt)| (format!("bucket[{b}]"), &bt.tree))
            .collect();
        trees.push(("irregular".to_string(), &self.irregular));
        trees.push(("shared".to_string(), &self.shared));
        trees
    }

    /// Audit: bucket `b`'s draw-time scale factor.
    #[cfg(feature = "audit")]
    pub fn audit_bucket_factor(&self, b: usize) -> f64 {
        self.buckets[b].factor
    }

    /// Audit: the cached slot-invariant coefficient of bucket member `r`
    /// (`None` when `r` is irregular or not explicit).
    #[cfg(feature = "audit")]
    pub fn audit_bucket_coef(&self, r: RequestId) -> Option<f64> {
        match self.explicit_slots[r.index()].decode() {
            Some((b, pos)) if b != IRREGULAR_BUCKET => {
                Some(self.buckets[b as usize].coefs[pos as usize])
            }
            _ => None,
        }
    }

    /// Whether request `r` is in the explicit (materialized) layout — a
    /// dense-index mirror of the model's materialized set, cheap enough for
    /// the per-block path.
    pub fn is_explicit(&self, r: RequestId) -> bool {
        self.explicit_slots[r.index()] != NO_SLOT
    }

    /// Whether materialized request `r` sits in the irregular
    /// (exact-refresh) set rather than a shape bucket.
    pub fn is_irregular(&self, r: RequestId) -> bool {
        matches!(
            self.explicit_slots[r.index()].decode(),
            Some((IRREGULAR_BUCKET, _))
        )
    }

    /// Sets shape bucket `b`'s scale factor (`s(t)` for the lazy variant,
    /// pinned at `1` by the eager variant).
    pub fn set_bucket_factor(&mut self, b: usize, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be >= 0");
        self.buckets[b].factor = factor;
    }

    /// Sets the slot-invariant coefficient (`tail_r(0)`) of bucket member
    /// `r`, cached for [`GainSampler::set_explicit_gain`].  No-op for
    /// irregular members (their weights are always set in full).
    pub fn set_explicit_coef(&mut self, r: RequestId, coef: f64) {
        if let Some((b, pos)) = self.explicit_slots[r.index()].decode() {
            if b != IRREGULAR_BUCKET {
                self.buckets[b as usize].coefs[pos as usize] = coef;
            }
        }
    }

    /// Updates bucket member `r`'s stored value to `g · coef` from its
    /// cached coefficient — the lazy variant's `O(log m)` per-block gain
    /// update, touching no model state.  `r` must be a bucket member.
    pub fn set_explicit_gain(&mut self, r: RequestId, g: f64) {
        match self.explicit_slots[r.index()].decode() {
            Some((b, pos)) if b != IRREGULAR_BUCKET => {
                let bucket = &mut self.buckets[b as usize];
                let v = g * bucket.coefs[pos as usize];
                bucket.tree.set(pos as usize, v);
            }
            _ => panic!("request not in a shape bucket"),
        }
    }

    /// Assigns the stored value of materialized request `r`: the
    /// slot-invariant part `g · tail(0)` for lazily-scaled bucket members,
    /// or the full current weight `g · tail(t)` for irregular members (and
    /// for bucket members under the eager variant).  `r` must be in the
    /// installed layout.
    pub fn set_explicit_value(&mut self, r: RequestId, v: f64) {
        match self.explicit_slots[r.index()].decode() {
            Some((IRREGULAR_BUCKET, pos)) => self.irregular.set(pos as usize, v),
            Some((b, pos)) => self.buckets[b as usize].tree.set(pos as usize, v),
            None => panic!("request not in the explicit layout"),
        }
    }

    /// Assigns the gain part of shared-tail request `r` (its tail factor is
    /// the group scale), assigning it the next dense slot on first insertion.
    pub fn set_shared_gain(&mut self, r: RequestId, g: f64) {
        match self.shared_slots.entry(r) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.shared.set(*e.get(), g);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.shared_ids.len());
                self.shared_ids.push(r);
                self.shared.push(g);
            }
        }
    }

    /// The shared-group request ids in slot (insertion) order.
    pub fn shared_ids(&self) -> &[RequestId] {
        &self.shared_ids
    }

    /// The draw layout as (request, weight) pairs in segment order, live
    /// slots only.  Diagnostic only.
    #[doc(hidden)]
    pub fn debug_layout(&self) -> Vec<(RequestId, f64)> {
        let mut out = Vec::new();
        for (bi, b) in self.buckets.iter().enumerate() {
            for (pos, &r) in b.ids.iter().enumerate() {
                if self.explicit_slots[r.index()] == ExplicitSlot::bucket(bi as u32, pos as u32) {
                    out.push((r, b.tree.get(pos) * b.factor));
                }
            }
        }
        for (pos, &r) in self.irregular_ids.iter().enumerate() {
            if self.explicit_slots[r.index()] == ExplicitSlot::irregular(pos as u32) {
                out.push((r, self.irregular.get(pos) * self.irregular_scale));
            }
        }
        for &r in &self.shared_ids {
            out.push((
                r,
                self.shared.get(self.shared_slots[&r]) * self.shared_scale,
            ));
        }
        out
    }

    /// The effective draw weight currently stored for `r` (explicit slot ×
    /// factor, or shared gain × scale), if `r` is indexed anywhere.
    /// Diagnostic only — used by consistency checks and tests.
    #[doc(hidden)]
    pub fn debug_weight(&self, r: RequestId) -> Option<f64> {
        match self
            .explicit_slots
            .get(r.index())
            .copied()
            .unwrap_or(NO_SLOT)
            .decode()
        {
            Some((IRREGULAR_BUCKET, pos)) => {
                Some(self.irregular.get(pos as usize) * self.irregular_scale)
            }
            Some((b, pos)) => {
                let bucket = &self.buckets[b as usize];
                Some(bucket.tree.get(pos as usize) * bucket.factor)
            }
            None => self
                .shared_slots
                .get(&r)
                .map(|&slot| self.shared.get(slot) * self.shared_scale),
        }
    }

    /// Drops every shared-group member for which `keep` returns `false`,
    /// preserving the relative order (and gains) of the survivors.  `O(s)`
    /// when nothing is dropped, `O(s log s)` otherwise.  Used by the
    /// schedule-wrap carry-over, where requests touched only through
    /// since-cleared allocations return to their meta class.
    pub fn compact_shared(&mut self, mut keep: impl FnMut(RequestId) -> bool) {
        if self.shared_ids.iter().all(|&r| keep(r)) {
            return;
        }
        let old_ids = std::mem::take(&mut self.shared_ids);
        let old_tree = std::mem::replace(&mut self.shared, FenwickTree::new(0));
        self.shared_slots.clear();
        for (slot, &r) in old_ids.iter().enumerate() {
            if keep(r) {
                self.shared_slots.insert(r, self.shared_ids.len());
                self.shared_ids.push(r);
                self.shared.push(old_tree.get(slot));
            }
        }
    }

    /// Sets the shared-tail group's common factor `residual(t)`.
    pub fn set_shared_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0, "scale must be >= 0");
        self.shared_scale = scale;
    }

    /// Sets the irregular group's draw-time scale (`γ^t`).  Storing
    /// irregular weights pre-divided by `γ^t` keeps their magnitudes O(1)
    /// across the schedule, so the Fenwick delta-update residue can never
    /// dwarf the live values — the global-exponent replacement for the
    /// exact `rebuild_sums` the eager path used to run after every rewrite.
    pub fn set_irregular_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale > 0.0, "scale must be > 0");
        self.irregular_scale = scale;
    }

    /// Sets the number of untouched requests behind utility class `c`'s
    /// meta-entry.
    pub fn set_meta_untouched(&mut self, c: usize, count: usize) {
        self.meta[c].untouched = count;
    }

    /// Total sampling mass across all groups.
    pub fn total(&self) -> f64 {
        let explicit: f64 = self
            .buckets
            .iter()
            .map(|b| b.tree.total() * b.factor)
            .sum::<f64>()
            + self.irregular.total() * self.irregular_scale;
        let meta: f64 = self.meta.iter().map(|m| m.untouched as f64 * m.gain).sum();
        explicit + self.shared_scale * (self.shared.total() + meta)
    }

    /// Resolves a cumulative offset `x ∈ [0, total)` to the group it lands
    /// in.  Segment order is shape buckets (partition order, members
    /// ascending) → irregular (ascending) → shared (slot order) → meta
    /// classes (class-index order).
    ///
    /// Offsets at or past the total (floating-point boundary cases) fall
    /// back to the last non-empty group, mirroring the legacy scan's
    /// `weights.last()` fallback.
    pub fn locate(&self, x: f64) -> Option<SampledGroup> {
        let mut rem = x.max(0.0);
        let mut any = false;
        for b in &self.buckets {
            let seg = b.tree.total() * b.factor;
            if seg > 0.0 {
                any = true;
                if rem < seg {
                    if let Some(i) = b.tree.locate(rem / b.factor) {
                        return Some(SampledGroup::Request(b.ids[i]));
                    }
                }
                rem = (rem - seg).max(0.0);
            }
        }
        let iw = self.irregular.total() * self.irregular_scale;
        if iw > 0.0 {
            any = true;
            if rem < iw {
                if let Some(i) = self.irregular.locate(rem / self.irregular_scale) {
                    return Some(SampledGroup::Request(self.irregular_ids[i]));
                }
            }
            rem = (rem - iw).max(0.0);
        }
        let sw = self.shared_scale * self.shared.total();
        if sw > 0.0 {
            any = true;
            if rem < sw {
                if let Some(i) = self.shared.locate(rem / self.shared_scale) {
                    return Some(SampledGroup::Request(self.shared_ids[i]));
                }
            }
            rem = (rem - sw).max(0.0);
        }
        let mut last_meta = None;
        for (c, m) in self.meta.iter().enumerate() {
            let seg = self.shared_scale * m.untouched as f64 * m.gain;
            if seg > 0.0 {
                any = true;
                last_meta = Some(c);
                if rem < seg {
                    return Some(SampledGroup::Meta(c));
                }
                rem = (rem - seg).max(0.0);
            }
        }
        if !any {
            return None;
        }
        // Fallback for x >= total (or rounding at the boundary of an empty
        // trailing segment): the last positive segment, walked in reverse
        // group order.
        if let Some(c) = last_meta {
            return Some(SampledGroup::Meta(c));
        }
        if sw > 0.0 {
            if let Some(i) = self.shared.last_positive() {
                return Some(SampledGroup::Request(self.shared_ids[i]));
            }
        }
        if iw > 0.0 {
            if let Some(i) = self.irregular.last_positive() {
                return Some(SampledGroup::Request(self.irregular_ids[i]));
            }
        }
        for b in self.buckets.iter().rev() {
            if b.factor > 0.0 {
                if let Some(i) = b.tree.last_positive() {
                    return Some(SampledGroup::Request(b.ids[i]));
                }
            }
        }
        None
    }
}

impl Default for GainSampler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_locate(weights: &[f64], x: f64) -> Option<usize> {
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            if w > 0.0 && x < acc {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn fenwick_prefix_sums_match_naive() {
        let mut t = FenwickTree::new(10);
        let weights = [0.5, 0.0, 2.0, 1.25, 0.0, 0.0, 3.5, 0.75, 0.0, 1.0];
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        for i in 0..=10 {
            let naive: f64 = weights[..i].iter().sum();
            assert!((t.prefix_sum(i) - naive).abs() < 1e-12, "prefix {i}");
        }
        assert!((t.total() - 9.0).abs() < 1e-12);
        // Overwrite and re-check.
        t.set(2, 0.0);
        t.set(0, 4.0);
        assert!((t.total() - 10.5).abs() < 1e-12);
        assert_eq!(t.get(2), 0.0);
        assert_eq!(t.get(0), 4.0);
    }

    #[test]
    fn fenwick_push_matches_preallocated() {
        let weights = [1.5, 0.0, 2.0, 0.25, 3.0, 0.0, 0.5];
        let mut grown = FenwickTree::new(0);
        let mut fixed = FenwickTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            grown.push(w);
            fixed.set(i, w);
        }
        assert_eq!(grown.len(), fixed.len());
        for i in 0..=weights.len() {
            assert!(
                (grown.prefix_sum(i) - fixed.prefix_sum(i)).abs() < 1e-12,
                "prefix {i}"
            );
        }
        // Point updates keep working after growth.
        grown.set(1, 4.0);
        assert!((grown.total() - (weights.iter().sum::<f64>() + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn fenwick_locate_matches_linear_scan() {
        let mut t = FenwickTree::new(7);
        let weights = [0.0, 1.0, 0.0, 2.5, 0.5, 0.0, 3.0];
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        let total: f64 = weights.iter().sum();
        let mut x = 0.0;
        while x < total {
            assert_eq!(t.locate(x), naive_locate(&weights, x), "x={x}");
            x += 0.125;
        }
        assert_eq!(t.locate(total), None);
        assert_eq!(t.locate(-1.0), None);
        assert_eq!(t.last_positive(), Some(6));
    }

    #[test]
    fn fenwick_boundaries_land_on_positive_entries() {
        let mut t = FenwickTree::new(4);
        t.set(1, 1.0);
        t.set(3, 2.0);
        // Offsets exactly at a cumulative boundary must select the *next*
        // positive entry, never a zero-weight one.
        assert_eq!(t.locate(0.0), Some(1));
        assert_eq!(t.locate(1.0), Some(3));
        assert_eq!(t.locate(2.999), Some(3));
        assert_eq!(t.locate(3.0), None);
    }

    #[test]
    fn empty_and_zero_trees() {
        let t = FenwickTree::new(0);
        assert!(t.is_empty());
        assert_eq!(t.locate(0.0), None);
        assert_eq!(t.total(), 0.0);
        let t = FenwickTree::new(5);
        assert_eq!(t.locate(0.0), None);
        assert_eq!(t.last_positive(), None);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weights_rejected() {
        FenwickTree::new(3).set(0, -1.0);
    }

    use crate::scheduler::ShapeBucket;

    fn partition(buckets: Vec<Vec<usize>>, irregular: Vec<usize>) -> TailShapePartition {
        TailShapePartition {
            buckets: buckets
                .into_iter()
                .map(|m| ShapeBucket {
                    rep: RequestId::from(m[0]),
                    members: m.into_iter().map(RequestId::from).collect(),
                    shape: vec![1.0],
                })
                .collect(),
            irregular: irregular.into_iter().map(RequestId::from).collect(),
        }
    }

    #[test]
    fn sampler_segment_order_and_totals() {
        let mut s = GainSampler::new();
        // Two shape buckets, one irregular request, two meta classes.
        s.rebuild(
            &partition(vec![vec![3, 7], vec![2]], vec![11]),
            &[0.25, 0.5],
            32,
        );
        assert_eq!(s.num_buckets(), 2);
        assert!(s.is_irregular(RequestId(11)));
        assert!(!s.is_irregular(RequestId(3)));
        s.set_explicit_value(RequestId(3), 2.0);
        s.set_explicit_value(RequestId(7), 1.0);
        s.set_bucket_factor(0, 0.5); // bucket 0 mass = 1.5
        s.set_explicit_value(RequestId(2), 4.0);
        s.set_bucket_factor(1, 1.0); // bucket 1 mass = 4
        s.set_explicit_value(RequestId(11), 0.5); // irregular mass = 0.5
        s.set_shared_gain(RequestId(10), 0.5);
        s.set_shared_scale(2.0); // shared mass = 1
        s.set_meta_untouched(0, 4); // class 0 mass = 2*4*0.25 = 2
        s.set_meta_untouched(1, 1); // class 1 mass = 2*1*0.5  = 1
        assert!((s.total() - 10.0).abs() < 1e-12);
        // Segment order: bucket 0 (ids 3, 7), bucket 1 (id 2), irregular
        // (id 11), shared (id 10), meta class 0, meta class 1.
        assert_eq!(s.locate(0.5), Some(SampledGroup::Request(RequestId(3))));
        assert_eq!(s.locate(1.2), Some(SampledGroup::Request(RequestId(7))));
        assert_eq!(s.locate(3.5), Some(SampledGroup::Request(RequestId(2))));
        assert_eq!(s.locate(5.7), Some(SampledGroup::Request(RequestId(11))));
        assert_eq!(s.locate(6.5), Some(SampledGroup::Request(RequestId(10))));
        assert_eq!(s.locate(7.5), Some(SampledGroup::Meta(0)));
        assert_eq!(s.locate(9.5), Some(SampledGroup::Meta(1)));
        // Past-total fallback resolves to the last positive segment.
        assert_eq!(s.locate(10.0), Some(SampledGroup::Meta(1)));
    }

    #[test]
    fn sampler_lazy_factor_rescales_bucket() {
        let mut s = GainSampler::new();
        s.rebuild(&partition(vec![vec![0, 1]], vec![]), &[], 32);
        s.set_explicit_value(RequestId(0), 3.0);
        s.set_explicit_value(RequestId(1), 1.0);
        s.set_bucket_factor(0, 1.0);
        assert!((s.total() - 4.0).abs() < 1e-12);
        // Advancing the slot touches one scalar, not the member weights.
        s.set_bucket_factor(0, 0.25);
        assert!((s.total() - 1.0).abs() < 1e-12);
        assert_eq!(s.locate(0.5), Some(SampledGroup::Request(RequestId(0))));
        assert_eq!(s.locate(0.8), Some(SampledGroup::Request(RequestId(1))));
        // Zero factor silences the bucket entirely.
        s.set_bucket_factor(0, 0.0);
        assert_eq!(s.total(), 0.0);
        assert_eq!(s.locate(0.0), None);
    }

    #[test]
    fn sampler_shared_slots_reuse_and_update() {
        let mut s = GainSampler::new();
        s.rebuild(&TailShapePartition::default(), &[], 32);
        s.set_shared_scale(1.0);
        s.set_shared_gain(RequestId(5), 1.0);
        s.set_shared_gain(RequestId(9), 2.0);
        // Updating an existing member must not allocate a second slot.
        s.set_shared_gain(RequestId(5), 3.0);
        assert_eq!(s.shared_ids(), &[RequestId(5), RequestId(9)]);
        assert!((s.total() - 5.0).abs() < 1e-12);
        assert_eq!(s.locate(0.5), Some(SampledGroup::Request(RequestId(5))));
        assert_eq!(s.locate(3.5), Some(SampledGroup::Request(RequestId(9))));
    }

    #[test]
    fn sampler_compact_shared_preserves_survivor_order() {
        let mut s = GainSampler::new();
        s.rebuild(&TailShapePartition::default(), &[], 32);
        s.set_shared_scale(1.0);
        for (r, g) in [(4, 1.0), (2, 2.0), (9, 3.0), (7, 4.0)] {
            s.set_shared_gain(RequestId(r), g);
        }
        s.compact_shared(|r| r != RequestId(2) && r != RequestId(7));
        assert_eq!(s.shared_ids(), &[RequestId(4), RequestId(9)]);
        assert!((s.total() - 4.0).abs() < 1e-12);
        assert_eq!(s.locate(0.5), Some(SampledGroup::Request(RequestId(4))));
        assert_eq!(s.locate(2.5), Some(SampledGroup::Request(RequestId(9))));
        // Survivors keep working as update targets, and re-inserting a
        // dropped id appends it after the survivors.
        s.set_shared_gain(RequestId(9), 1.0);
        s.set_shared_gain(RequestId(2), 5.0);
        assert_eq!(s.shared_ids(), &[RequestId(4), RequestId(9), RequestId(2)]);
        assert!((s.total() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_rebuild_clears_previous_weights() {
        let mut s = GainSampler::new();
        s.rebuild(&TailShapePartition::default(), &[0.1], 32);
        s.set_shared_gain(RequestId(5), 1.0);
        s.set_shared_gain(RequestId(9), 2.0);
        s.set_shared_scale(1.0);
        s.set_meta_untouched(0, 3);
        assert!((s.total() - 3.3).abs() < 1e-12);
        s.rebuild(&TailShapePartition::default(), &[0.1], 32);
        assert_eq!(s.total(), 0.0);
        s.set_shared_scale(1.0);
        assert_eq!(s.total(), 0.0, "old shared weights must be cleared");
    }

    #[test]
    fn compaction_cost_is_amortized_constant_under_adversarial_churn() {
        // The tombstone heuristic (`dead > 32 && dead·2 > len`) fires only
        // once tombstones dominate, so each compaction's O(len) scan is paid
        // for by the >= len/2 removals that preceded it.  Churn a bucket and
        // the irregular set through remove/re-append cycles at several sizes
        // and assert (a) the total entries moved stays within a constant
        // factor of the operation count, (b) slot capacity stays
        // proportional to live membership, (c) weights survive intact.
        for &m in &[64usize, 256, 1024] {
            let mut s = GainSampler::new();
            let bucket_members: Vec<usize> = (0..m).collect();
            let irregular_members: Vec<usize> = (m..2 * m).collect();
            s.rebuild(
                &partition(vec![bucket_members], irregular_members),
                &[],
                4 * m,
            );
            s.set_bucket_factor(0, 1.0);
            for i in 0..2 * m {
                s.set_explicit_value(RequestId::from(i), 1.0);
            }
            let mut ops: u64 = 0;
            for round in 0..6 {
                for i in 0..m {
                    // Stride-7 order so removals are scattered, not FIFO.
                    let b = RequestId::from((i * 7 + round) % m);
                    s.remove_explicit(b);
                    s.append_bucket_member(0, b);
                    s.set_explicit_value(b, 1.0);
                    let ir = RequestId::from(m + (i * 7 + round) % m);
                    s.remove_explicit(ir);
                    s.append_irregular(ir);
                    s.set_explicit_value(ir, 1.0);
                    ops += 4;
                }
            }
            let (compactions, moved) = s.compaction_stats();
            assert!(compactions > 0, "churn at m={m} must trigger compactions");
            assert!(
                moved <= 4 * ops,
                "amortized bound violated at m={m}: {moved} entries moved over {ops} ops"
            );
            assert!(
                s.explicit_capacity() <= 4 * m + 96,
                "slot capacity {} not bounded by live membership at m={m}",
                s.explicit_capacity()
            );
            // Compaction preserved every live weight and the total mass.
            assert!((s.total() - 2.0 * m as f64).abs() < 1e-9 * m as f64);
            for i in 0..2 * m {
                let w = s.debug_weight(RequestId::from(i));
                assert!(
                    w.is_some_and(|w| (w - 1.0).abs() < 1e-12),
                    "weight of {i} corrupted at m={m}: {w:?}"
                );
            }
        }
    }

    #[test]
    fn sampler_zero_scale_disables_shared_and_meta() {
        let mut s = GainSampler::new();
        s.rebuild(&partition(vec![], vec![0]), &[0.5], 32);
        s.set_explicit_value(RequestId(0), 1.5);
        s.set_shared_gain(RequestId(4), 9.0);
        s.set_meta_untouched(0, 9);
        // scale defaults to 0 after rebuild.
        assert!((s.total() - 1.5).abs() < 1e-12);
        assert_eq!(s.locate(1.0), Some(SampledGroup::Request(RequestId(0))));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// `locate` agrees with a naive linear scan for arbitrary weight
            /// vectors and offsets, whether the tree was preallocated or
            /// grown by pushes.
            #[test]
            fn locate_matches_naive(
                raw in collection::vec(0.0f64..4.0, 1..40),
                frac in 0.0f64..1.0,
                grow in any::<bool>()
            ) {
                // Zero out a third of the entries to exercise gaps.
                let weights: Vec<f64> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| if i % 3 == 0 { 0.0 } else { w })
                    .collect();
                let mut t = if grow {
                    FenwickTree::new(0)
                } else {
                    FenwickTree::new(weights.len())
                };
                for (i, &w) in weights.iter().enumerate() {
                    if grow {
                        t.push(w);
                    } else {
                        t.set(i, w);
                    }
                }
                let total: f64 = weights.iter().sum();
                prop_assert!((t.total() - total).abs() < 1e-9);
                let x = frac * total;
                if x < total {
                    let got = t.locate(x);
                    let want = naive_locate(&weights, x);
                    prop_assert_eq!(got, want);
                }
            }
        }
    }
}
