//! Incremental proportional sampling over per-request gain weights.
//!
//! The greedy scheduler (§5.3, Listing 1) allocates every network slot by
//! drawing one request proportionally to its expected utility gain
//! `P_{i,t} · g(B_i + 1)`.  Done naively that draw costs a full pass over the
//! candidate set *per block*: the seed implementation collected the touched
//! requests into a vector, sorted it for determinism, and prefix-scanned the
//! weights — `O(T log T)` per block for `T` touched requests (up to the whole
//! schedule length `C`), i.e. `O(C² log C)` per schedule, and `O(n)` per block
//! with the §5.3.1 meta-request optimization disabled.
//!
//! This module replaces the scan with an incrementally maintained weight
//! structure built on a Fenwick (binary-indexed) sum tree:
//!
//! * [`FenwickTree`] — a flat `f64` sum tree supporting `O(log n)` point
//!   assignment, append, prefix sums, and proportional *locate* (find the
//!   entry containing a cumulative offset).
//! * [`GainSampler`] — the scheduler-facing composite that exploits the
//!   shared-residual-tail structure of
//!   [`HorizonModel`](crate::scheduler::HorizonModel).  Requests fall into
//!   three groups:
//!
//!   1. **Explicit** (materialized) requests each own a full weight
//!      `g_i(B_i) · tail_i(t)` in a small tree of size `m`.  These are the
//!      only weights that must be recomputed when the slot index `t`
//!      advances.
//!   2. **Shared-tail** requests (touched but unmaterialized) store only the
//!      gain part `g_i(B_i)`; their common factor `residual(t)` is a single
//!      scalar applied at draw time, so advancing `t` costs `O(1)` for the
//!      whole group.  The group lives in a *compact* tree — each request is
//!      assigned a dense slot when first touched — so tree walks stay within
//!      a few cache lines instead of striding across an `n`-sized array.
//!   3. **Untouched** requests are one meta-entry with weight
//!      `count · ĝ₁ · residual(t)` where `ĝ₁` is the catalog-wide first-block
//!      gain bound; a member is drawn uniformly when the meta-entry wins
//!      (§5.3.1).
//!
//! Determinism under a fixed seed: a draw maps a cumulative offset to an
//! entry through the tree layout, so the layout must be reproducible.  The
//! explicit group is sorted by request index, and shared-group slots are
//! assigned in insertion order — callers insert in a deterministic order
//! (the scheduler sorts the touched set at rebuild time and thereafter
//! touches requests in sampled order, which is itself seed-deterministic).
//!
//! Per-block cost drops from `O(T log T)` to `O(m log m + log T)` — in the
//! common hedging regime (`m` small, `T` growing toward `C`) this is the
//! difference between quadratic and near-linear schedule generation, the same
//! argument §5.3.1 makes for its 13× meta-request speedup.

use std::collections::HashMap;

use crate::types::RequestId;

/// A Fenwick (binary-indexed) tree over non-negative `f64` weights with
/// `O(log n)` point assignment, append, prefix sums, and proportional
/// search.
#[derive(Debug, Clone)]
pub struct FenwickTree {
    /// 1-based partial sums (`tree[0]` unused).
    tree: Vec<f64>,
    /// Current value of each entry, for exact point assignment.
    values: Vec<f64>,
}

impl FenwickTree {
    /// Creates a tree of `len` zero-weight entries.
    pub fn new(len: usize) -> Self {
        FenwickTree {
            tree: vec![0.0; len + 1],
            values: vec![0.0; len],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current weight of entry `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Assigns weight `w` to entry `i`.  `w` must be finite and
    /// non-negative (weights are sampling masses).
    pub fn set(&mut self, i: usize, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "weight must be finite and >= 0");
        let delta = w - self.values[i];
        if delta == 0.0 {
            return;
        }
        self.values[i] = w;
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] += delta;
            j += j & j.wrapping_neg();
        }
    }

    /// Appends a new entry with weight `w` in `O(log n)`.
    pub fn push(&mut self, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "weight must be finite and >= 0");
        self.values.push(w);
        // Node `j` covers values[(j - lowbit(j))..j]; derive the new node
        // from existing prefix sums instead of rebuilding.
        let j = self.values.len();
        let lb = j & j.wrapping_neg();
        let covered_before = self.prefix_sum(j - 1) - self.prefix_sum(j - lb);
        self.tree.push(covered_before + w);
    }

    /// Sum of the weights of entries `0..i`.
    pub fn prefix_sum(&self, i: usize) -> f64 {
        let mut j = i.min(self.values.len());
        let mut s = 0.0;
        while j > 0 {
            s += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        s
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.prefix_sum(self.values.len())
    }

    /// Finds the entry containing cumulative offset `x`: the smallest `i`
    /// with `prefix_sum(i + 1) > x`, skipping zero-weight entries.  Returns
    /// `None` when `x` is negative or at/after the total weight.
    pub fn locate(&self, x: f64) -> Option<usize> {
        if self.values.is_empty() || x < 0.0 {
            return None;
        }
        let n = self.values.len();
        let mut idx = 0usize; // 1-based position walked so far
        let mut rem = x;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = idx + step;
            if next <= n && self.tree[next] <= rem {
                idx = next;
                rem -= self.tree[next];
            }
            step >>= 1;
        }
        // `idx` entries have cumulative weight <= x; entry `idx` (0-based) is
        // the candidate.  Floating-point boundary hits can land on a
        // zero-weight entry; skip forward to the next positive one.
        let mut i = idx;
        while i < n && self.values[i] <= 0.0 {
            i += 1;
        }
        if i < n && rem < self.values[i] {
            Some(i)
        } else {
            None
        }
    }

    /// Index of the last entry with positive weight, if any — the
    /// deterministic fallback for draws that land exactly on the total due
    /// to floating-point rounding.
    pub fn last_positive(&self) -> Option<usize> {
        self.values.iter().rposition(|&w| w > 0.0)
    }
}

/// Which weight group a proportional draw landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampledGroup {
    /// A specific request (explicit or shared-tail group).
    Request(RequestId),
    /// The untouched meta-group; the caller draws a member uniformly.
    Meta,
}

/// Incremental gain-weight sampler for the greedy scheduler.
///
/// See the [module docs](self) for the three-group decomposition.  The
/// scheduler owns the bookkeeping of *which* requests belong to which group;
/// this type owns the weights and the draw.
#[derive(Debug, Clone)]
pub struct GainSampler {
    /// Materialized request ids, sorted by index; position `i` owns entry
    /// `i` of `explicit`.
    explicit_ids: Vec<RequestId>,
    /// Full weights `g_i(B_i) · tail_i(t)` of the materialized requests.
    explicit: FenwickTree,
    /// Dense slot of each shared-group request, assigned on first insertion.
    shared_slots: HashMap<RequestId, usize>,
    /// Slot → request id (the inverse of `shared_slots`).
    shared_ids: Vec<RequestId>,
    /// Gain parts `g_i(B_i)` of touched-but-unmaterialized requests, by slot.
    shared: FenwickTree,
    /// The group's common tail factor `residual(t)`.
    shared_scale: f64,
    /// Number of untouched requests behind the meta-entry.
    meta_members: usize,
    /// Catalog-wide first-block gain bound `ĝ₁` (the meta-entry's
    /// per-member gain part).
    meta_gain: f64,
}

impl GainSampler {
    /// Creates an empty sampler with first-block gain bound `meta_gain` (see
    /// [`UtilityModel::max_first_block_gain`](crate::utility::UtilityModel::max_first_block_gain)).
    pub fn new(meta_gain: f64) -> Self {
        GainSampler {
            explicit_ids: Vec::new(),
            explicit: FenwickTree::new(0),
            shared_slots: HashMap::new(),
            shared_ids: Vec::new(),
            shared: FenwickTree::new(0),
            shared_scale: 0.0,
            meta_members: 0,
            meta_gain,
        }
    }

    /// Resets all weights and installs a new explicit (materialized) id set,
    /// in `O(m log m)` plus dropping the previous shared group.
    ///
    /// Shared-group slots are re-assigned in subsequent insertion order;
    /// callers that need seed-determinism must re-insert in a deterministic
    /// order (e.g. sorted).
    pub fn rebuild(&mut self, mut explicit_ids: Vec<RequestId>) {
        explicit_ids.sort_unstable();
        explicit_ids.dedup();
        self.explicit = FenwickTree::new(explicit_ids.len());
        self.explicit_ids = explicit_ids;
        self.shared_slots.clear();
        self.shared_ids.clear();
        self.shared = FenwickTree::new(0);
        self.shared_scale = 0.0;
        self.meta_members = 0;
    }

    /// The sorted materialized id set installed by the last rebuild.
    pub fn explicit_ids(&self) -> &[RequestId] {
        &self.explicit_ids
    }

    /// Assigns the full weight (gain × tail) of materialized request `r`.
    /// `r` must be in the installed explicit set.
    pub fn set_explicit_weight(&mut self, r: RequestId, w: f64) {
        let pos = self
            .explicit_ids
            .binary_search(&r)
            .expect("request not in the explicit set");
        self.explicit.set(pos, w);
    }

    /// Assigns the gain part of shared-tail request `r` (its tail factor is
    /// the group scale), assigning it the next dense slot on first insertion.
    pub fn set_shared_gain(&mut self, r: RequestId, g: f64) {
        match self.shared_slots.entry(r) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.shared.set(*e.get(), g);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.shared_ids.len());
                self.shared_ids.push(r);
                self.shared.push(g);
            }
        }
    }

    /// Sets the shared-tail group's common factor `residual(t)`.
    pub fn set_shared_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0, "scale must be >= 0");
        self.shared_scale = scale;
    }

    /// Sets the number of untouched requests behind the meta-entry.
    pub fn set_meta_members(&mut self, count: usize) {
        self.meta_members = count;
    }

    /// The meta-entry's per-member gain bound.
    pub fn meta_gain(&self) -> f64 {
        self.meta_gain
    }

    /// Total sampling mass across all three groups.
    pub fn total(&self) -> f64 {
        self.explicit.total()
            + self.shared_scale * (self.shared.total() + self.meta_members as f64 * self.meta_gain)
    }

    /// Resolves a cumulative offset `x ∈ [0, total)` to the group it lands
    /// in.  Segment order is explicit (index-sorted) → shared (slot order)
    /// → meta.
    ///
    /// Offsets at or past the total (floating-point boundary cases) fall
    /// back to the last non-empty group, mirroring the legacy scan's
    /// `weights.last()` fallback.
    pub fn locate(&self, x: f64) -> Option<SampledGroup> {
        let ew = self.explicit.total();
        let sw = self.shared_scale * self.shared.total();
        let mw = self.shared_scale * self.meta_members as f64 * self.meta_gain;
        if ew + sw + mw <= 0.0 {
            return None;
        }
        let mut rem = x.max(0.0);
        if rem < ew {
            if let Some(i) = self.explicit.locate(rem) {
                return Some(SampledGroup::Request(self.explicit_ids[i]));
            }
        }
        rem = (rem - ew).max(0.0);
        if rem < sw {
            if let Some(i) = self.shared.locate(rem / self.shared_scale) {
                return Some(SampledGroup::Request(self.shared_ids[i]));
            }
        }
        if mw > 0.0 {
            return Some(SampledGroup::Meta);
        }
        // Fallback for x >= total (or rounding at a segment boundary of an
        // empty trailing segment): last positive entry, shared before
        // explicit since shared is the later segment.
        if sw > 0.0 {
            if let Some(i) = self.shared.last_positive() {
                return Some(SampledGroup::Request(self.shared_ids[i]));
            }
        }
        self.explicit
            .last_positive()
            .map(|i| SampledGroup::Request(self.explicit_ids[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_locate(weights: &[f64], x: f64) -> Option<usize> {
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            if w > 0.0 && x < acc {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn fenwick_prefix_sums_match_naive() {
        let mut t = FenwickTree::new(10);
        let weights = [0.5, 0.0, 2.0, 1.25, 0.0, 0.0, 3.5, 0.75, 0.0, 1.0];
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        for i in 0..=10 {
            let naive: f64 = weights[..i].iter().sum();
            assert!((t.prefix_sum(i) - naive).abs() < 1e-12, "prefix {i}");
        }
        assert!((t.total() - 9.0).abs() < 1e-12);
        // Overwrite and re-check.
        t.set(2, 0.0);
        t.set(0, 4.0);
        assert!((t.total() - 10.5).abs() < 1e-12);
        assert_eq!(t.get(2), 0.0);
        assert_eq!(t.get(0), 4.0);
    }

    #[test]
    fn fenwick_push_matches_preallocated() {
        let weights = [1.5, 0.0, 2.0, 0.25, 3.0, 0.0, 0.5];
        let mut grown = FenwickTree::new(0);
        let mut fixed = FenwickTree::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            grown.push(w);
            fixed.set(i, w);
        }
        assert_eq!(grown.len(), fixed.len());
        for i in 0..=weights.len() {
            assert!(
                (grown.prefix_sum(i) - fixed.prefix_sum(i)).abs() < 1e-12,
                "prefix {i}"
            );
        }
        // Point updates keep working after growth.
        grown.set(1, 4.0);
        assert!((grown.total() - (weights.iter().sum::<f64>() + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn fenwick_locate_matches_linear_scan() {
        let mut t = FenwickTree::new(7);
        let weights = [0.0, 1.0, 0.0, 2.5, 0.5, 0.0, 3.0];
        for (i, &w) in weights.iter().enumerate() {
            t.set(i, w);
        }
        let total: f64 = weights.iter().sum();
        let mut x = 0.0;
        while x < total {
            assert_eq!(t.locate(x), naive_locate(&weights, x), "x={x}");
            x += 0.125;
        }
        assert_eq!(t.locate(total), None);
        assert_eq!(t.locate(-1.0), None);
        assert_eq!(t.last_positive(), Some(6));
    }

    #[test]
    fn fenwick_boundaries_land_on_positive_entries() {
        let mut t = FenwickTree::new(4);
        t.set(1, 1.0);
        t.set(3, 2.0);
        // Offsets exactly at a cumulative boundary must select the *next*
        // positive entry, never a zero-weight one.
        assert_eq!(t.locate(0.0), Some(1));
        assert_eq!(t.locate(1.0), Some(3));
        assert_eq!(t.locate(2.999), Some(3));
        assert_eq!(t.locate(3.0), None);
    }

    #[test]
    fn empty_and_zero_trees() {
        let t = FenwickTree::new(0);
        assert!(t.is_empty());
        assert_eq!(t.locate(0.0), None);
        assert_eq!(t.total(), 0.0);
        let t = FenwickTree::new(5);
        assert_eq!(t.locate(0.0), None);
        assert_eq!(t.last_positive(), None);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weights_rejected() {
        FenwickTree::new(3).set(0, -1.0);
    }

    #[test]
    fn sampler_three_group_totals() {
        let mut s = GainSampler::new(0.25);
        s.rebuild(vec![RequestId(7), RequestId(3)]);
        assert_eq!(s.explicit_ids(), &[RequestId(3), RequestId(7)]);
        s.set_explicit_weight(RequestId(3), 2.0);
        s.set_explicit_weight(RequestId(7), 1.0);
        s.set_shared_gain(RequestId(10), 0.5);
        s.set_shared_scale(2.0);
        s.set_meta_members(4);
        // explicit 3.0 + scale*(0.5 + 4*0.25) = 3 + 2*1.5 = 6.
        assert!((s.total() - 6.0).abs() < 1e-12);
        // Segment order: explicit (ids 3 then 7), shared, meta.
        assert_eq!(s.locate(0.5), Some(SampledGroup::Request(RequestId(3))));
        assert_eq!(s.locate(2.5), Some(SampledGroup::Request(RequestId(7))));
        assert_eq!(s.locate(3.5), Some(SampledGroup::Request(RequestId(10))));
        assert_eq!(s.locate(4.5), Some(SampledGroup::Meta));
        assert_eq!(s.locate(5.999), Some(SampledGroup::Meta));
        // Past-total fallback resolves deterministically.
        assert!(s.locate(6.0).is_some());
    }

    #[test]
    fn sampler_shared_slots_reuse_and_update() {
        let mut s = GainSampler::new(0.1);
        s.rebuild(vec![]);
        s.set_shared_scale(1.0);
        s.set_shared_gain(RequestId(5), 1.0);
        s.set_shared_gain(RequestId(9), 2.0);
        // Updating an existing member must not allocate a second slot.
        s.set_shared_gain(RequestId(5), 3.0);
        assert!((s.total() - 5.0).abs() < 1e-12);
        assert_eq!(s.locate(0.5), Some(SampledGroup::Request(RequestId(5))));
        assert_eq!(s.locate(3.5), Some(SampledGroup::Request(RequestId(9))));
    }

    #[test]
    fn sampler_rebuild_clears_previous_weights() {
        let mut s = GainSampler::new(0.1);
        s.rebuild(vec![]);
        s.set_shared_gain(RequestId(5), 1.0);
        s.set_shared_gain(RequestId(9), 2.0);
        s.set_shared_scale(1.0);
        assert!((s.total() - 3.0).abs() < 1e-12);
        s.rebuild(vec![]);
        assert_eq!(s.total(), 0.0);
        s.set_shared_scale(1.0);
        assert_eq!(s.total(), 0.0, "old shared weights must be cleared");
    }

    #[test]
    fn sampler_zero_scale_disables_shared_and_meta() {
        let mut s = GainSampler::new(0.5);
        s.rebuild(vec![RequestId(0)]);
        s.set_explicit_weight(RequestId(0), 1.5);
        s.set_shared_gain(RequestId(4), 9.0);
        s.set_meta_members(9);
        // scale defaults to 0 after rebuild.
        assert!((s.total() - 1.5).abs() < 1e-12);
        assert_eq!(s.locate(1.0), Some(SampledGroup::Request(RequestId(0))));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// `locate` agrees with a naive linear scan for arbitrary weight
            /// vectors and offsets, whether the tree was preallocated or
            /// grown by pushes.
            #[test]
            fn locate_matches_naive(
                raw in collection::vec(0.0f64..4.0, 1..40),
                frac in 0.0f64..1.0,
                grow in any::<bool>()
            ) {
                // Zero out a third of the entries to exercise gaps.
                let weights: Vec<f64> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| if i % 3 == 0 { 0.0 } else { w })
                    .collect();
                let mut t = if grow {
                    FenwickTree::new(0)
                } else {
                    FenwickTree::new(weights.len())
                };
                for (i, &w) in weights.iter().enumerate() {
                    if grow {
                        t.push(w);
                    } else {
                        t.set(i, w);
                    }
                }
                let total: f64 = weights.iter().sum();
                prop_assert!((t.total() - total).abs() < 1e-9);
                let x = frac * total;
                if x < total {
                    let got = t.locate(x);
                    let want = naive_locate(&weights, x);
                    prop_assert_eq!(got, want);
                }
            }
        }
    }
}
