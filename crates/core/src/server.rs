//! Server-side library: scheduler + sender orchestration (§3.2, §5.3.2).
//!
//! [`KhameleonServer`] is the single-client deployment: one
//! [`Session`](crate::session::Session) (boxed [`Scheduler`], server-side
//! predictor, bandwidth estimator, sender queue) plus a [`Backend`] that
//! resolves block references into actual blocks.  Multi-client deployments
//! use a [`SessionManager`](crate::session::SessionManager), which drives
//! the same session code over a shared backend.
//!
//! Servers are constructed through [`ServerBuilder`]:
//!
//! ```
//! use std::sync::Arc;
//! use khameleon_core::block::ResponseCatalog;
//! use khameleon_core::server::ServerBuilder;
//! use khameleon_core::utility::{LinearUtility, UtilityModel};
//!
//! let catalog = Arc::new(ResponseCatalog::uniform(100, 10, 10_000));
//! let utility = UtilityModel::homogeneous(&LinearUtility, 10);
//! let server = ServerBuilder::new(utility, catalog).build();
//! assert_eq!(server.backend_name(), "catalog");
//! ```
//!
//! Sender coordination follows §5.3.2: when a fresh prediction arrives, the
//! blocks already handed to the network are immutable, the not-yet-sent tail
//! of the current schedule is rolled back and re-planned, and the sender
//! simply continues from its position.

use std::collections::HashMap;
use std::sync::Arc;

use crate::block::{Block, ResponseCatalog};
use crate::predictor::{PredictorState, ServerPredictor};
use crate::protocol::{ClientMessage, ServerEvent, SessionId};
use crate::scheduler::{GreedySchedulerConfig, Scheduler};
use crate::session::{MessageOutcome, Session, SessionBuilder};
use crate::types::{Bandwidth, BlockRef, RequestId, Time};
use crate::utility::UtilityModel;

/// A data backend that can resolve block references (§3.3: file system,
/// database engine, connection pool, ...).
pub trait Backend: Send {
    /// Fetches `block`.  Returns `None` if the backend cannot produce it
    /// (out-of-range request or block index).
    fn fetch(&mut self, block: BlockRef) -> Option<Block>;

    /// The number of concurrent in-flight requests the backend can serve
    /// without degradation, or `None` if it scales arbitrarily (§5.4).
    fn concurrency_limit(&self) -> Option<usize> {
        None
    }

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "backend"
    }
}

/// Configuration of [`KhameleonServer`] and
/// [`Session`](crate::session::Session)s.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Scheduler configuration (cache size, batch size, γ, ...), used when
    /// the builder constructs the default greedy scheduler.
    pub scheduler: GreedySchedulerConfig,
    /// Initial bandwidth estimate used before the client reports rates.
    pub initial_bandwidth: Bandwidth,
    /// Optional user-configured bandwidth cap.
    pub bandwidth_cap: Option<Bandwidth>,
    /// How many blocks to keep queued between the scheduler and the sender.
    pub sender_queue_target: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            scheduler: GreedySchedulerConfig::default(),
            initial_bandwidth: Bandwidth::from_mbps(5.625),
            bandwidth_cap: None,
            sender_queue_target: 32,
        }
    }
}

/// Fluent constructor for [`KhameleonServer`].
///
/// Every component is optional: by default the server gets a greedy
/// scheduler built from [`ServerConfig::scheduler`], a
/// [`SimpleServerPredictor`](crate::predictor::simple::SimpleServerPredictor)
/// sized to the catalog, and a [`CatalogBackend`].
pub struct ServerBuilder {
    session: SessionBuilder,
    catalog: Arc<ResponseCatalog>,
    backend: Option<Box<dyn Backend>>,
}

impl ServerBuilder {
    /// Starts a builder for the given utility model and catalog.
    pub fn new(utility: UtilityModel, catalog: Arc<ResponseCatalog>) -> Self {
        ServerBuilder {
            session: SessionBuilder::new(utility, catalog.clone()),
            catalog,
            backend: None,
        }
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: ServerConfig) -> Self {
        self.session = self.session.config(cfg);
        self
    }

    /// Uses a custom scheduler (any [`Scheduler`] implementation) instead of
    /// the default greedy scheduler.
    pub fn scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.session = self.session.scheduler(scheduler);
        self
    }

    /// Uses a custom server-side predictor component.
    pub fn predictor(mut self, predictor: Box<dyn ServerPredictor>) -> Self {
        self.session = self.session.predictor(predictor);
        self
    }

    /// Uses a custom backend instead of the default [`CatalogBackend`].
    pub fn backend(mut self, backend: Box<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Caps the server's bandwidth estimate.
    pub fn bandwidth_cap(mut self, cap: Bandwidth) -> Self {
        self.session = self.session.bandwidth_cap(cap);
        self
    }

    /// Sets the initial bandwidth estimate used before rate reports arrive.
    pub fn initial_bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.session = self.session.initial_bandwidth(bandwidth);
        self
    }

    /// Builds the server.
    pub fn build(self) -> KhameleonServer {
        let backend = self
            .backend
            .unwrap_or_else(|| Box::new(CatalogBackend::new(self.catalog.clone())));
        KhameleonServer {
            session: self.session.build(),
            backend,
        }
    }
}

/// The single-client Khameleon server: one session plus a backend.
pub struct KhameleonServer {
    session: Session,
    backend: Box<dyn Backend>,
}

impl KhameleonServer {
    /// Starts building a server (see [`ServerBuilder`]).
    pub fn builder(utility: UtilityModel, catalog: Arc<ResponseCatalog>) -> ServerBuilder {
        ServerBuilder::new(utility, catalog)
    }

    /// Handles one typed protocol message from the client.  Returns
    /// [`MessageOutcome::NeedsResync`] when a prediction delta could not be
    /// applied and the client must resend a full summary.
    pub fn on_message(&mut self, message: &ClientMessage, now: Time) -> MessageOutcome {
        self.session.on_message(message, now)
    }

    /// Produces the next protocol event for the client: the next block on
    /// the wire, or [`ServerEvent::Idle`] when nothing useful remains.
    /// Single-client servers always report [`SessionId`] 0.
    pub fn poll(&mut self, now: Time) -> ServerEvent {
        match self.next_block(now) {
            Some(block) => ServerEvent::Block {
                session: SessionId(0),
                block,
            },
            None => ServerEvent::Idle,
        }
    }

    /// The current bandwidth estimate.
    pub fn bandwidth_estimate(&self) -> Bandwidth {
        self.session.bandwidth_estimate()
    }

    /// Total blocks sent since creation.
    pub fn blocks_sent(&self) -> u64 {
        self.session.blocks_sent()
    }

    /// Total bytes sent since creation.
    pub fn bytes_sent(&self) -> u64 {
        self.session.bytes_sent()
    }

    /// Number of prediction updates the scheduler has applied.
    pub fn prediction_updates(&self) -> u64 {
        self.session.prediction_updates()
    }

    /// Name of the scheduler in use.
    pub fn scheduler_name(&self) -> &'static str {
        self.session.scheduler_name()
    }

    /// Attaches a runtime invariant auditor to the scheduler (see
    /// [`crate::audit`]).
    #[cfg(feature = "audit")]
    pub fn audit_attach(&mut self, cfg: crate::audit::AuditConfig) {
        self.session.audit_attach(cfg);
    }

    /// The scheduler's accumulated audit report, when an auditor is
    /// attached.
    #[cfg(feature = "audit")]
    pub fn audit_report(&self) -> Option<crate::audit::AuditReport> {
        self.session.audit_report()
    }

    /// Name of the backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Handles a receive-rate report from the client (§5.4).
    pub fn on_rate_report(&mut self, rate: Bandwidth) {
        self.session.on_rate_report(rate);
    }

    /// Handles a predictor-state message from the client: decodes it and
    /// re-plans the unsent portion of the schedule (§5.3.2).
    pub fn on_predictor_state(&mut self, state: &PredictorState, now: Time) {
        self.session.on_predictor_state(state, now);
    }

    /// Returns the next block the sender should push, fetching it from the
    /// backend, or `None` when no useful block remains (everything scheduled
    /// and resident).
    pub fn next_block(&mut self, _now: Time) -> Option<Block> {
        let limit = self.backend.concurrency_limit();
        let block_ref = self.session.next_block_ref(limit)?;
        let block = self.backend.fetch(block_ref)?;
        self.session.commit(&block.meta);
        Some(block)
    }

    /// Time the sender should wait between consecutive blocks to pace at the
    /// estimated bandwidth.
    pub fn pacing_interval(&self) -> crate::types::Duration {
        self.session.pacing_interval()
    }

    /// The scheduler's view of the client cache (for tests/diagnostics).
    pub fn simulated_client_cache(&self) -> HashMap<RequestId, u32> {
        self.session.simulated_cache()
    }

    /// Expected utility (Eq. 2) of the pending schedule from the cache
    /// allocation `initial`.
    pub fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        self.session.expected_utility(initial)
    }

    /// The session backing this server (for diagnostics).
    pub fn session(&self) -> &Session {
        &self.session
    }
}

/// A trivial backend that serves metadata-only blocks straight from the
/// catalog — the equivalent of a file system pre-loaded with progressively
/// encoded responses (§3.2).  Useful for tests and as a default.
pub struct CatalogBackend {
    catalog: Arc<ResponseCatalog>,
}

impl CatalogBackend {
    /// Creates a backend over `catalog`.
    pub fn new(catalog: Arc<ResponseCatalog>) -> Self {
        CatalogBackend { catalog }
    }
}

impl Backend for CatalogBackend {
    fn fetch(&mut self, block: BlockRef) -> Option<Block> {
        let layout = self.catalog.get(block.request)?;
        let meta = layout.block_meta(block.index)?;
        Some(Block {
            meta,
            payload: None,
        })
    }

    fn name(&self) -> &'static str {
        "catalog"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::simple::SimpleServerPredictor;
    use crate::utility::LinearUtility;

    fn server(n: usize, blocks: u32, cache_blocks: usize) -> KhameleonServer {
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 10_000));
        let cfg = ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks,
                ..Default::default()
            },
            ..Default::default()
        };
        ServerBuilder::new(UtilityModel::homogeneous(&LinearUtility, blocks), catalog)
            .config(cfg)
            .predictor(Box::new(SimpleServerPredictor::new(n)))
            .build()
    }

    #[test]
    fn streams_blocks_without_any_prediction() {
        let mut s = server(10, 4, 20);
        let mut got = 0;
        while let Some(b) = s.next_block(Time::ZERO) {
            assert!(b.meta.block.request.index() < 10);
            got += 1;
            if got > 100 {
                break;
            }
        }
        // 10 requests * 4 blocks = 40 distinct blocks; with cache tracking the
        // server stops once everything fits conceptually in flight.
        assert!(got >= 20, "server pushed only {got} blocks");
        assert_eq!(s.blocks_sent(), got as u64);
        assert!(s.bytes_sent() > 0);
    }

    #[test]
    fn prediction_steers_the_stream() {
        let mut s = server(100, 5, 50);
        s.on_predictor_state(&PredictorState::LastRequest(RequestId(42)), Time::ZERO);
        assert_eq!(s.prediction_updates(), 1);
        let mut first_blocks = Vec::new();
        for _ in 0..5 {
            if let Some(b) = s.next_block(Time::ZERO) {
                first_blocks.push(b.meta.block);
            }
        }
        let for_42 = first_blocks
            .iter()
            .filter(|b| b.request == RequestId(42))
            .count();
        assert!(
            for_42 >= 4,
            "only {for_42} of the first 5 blocks target the predicted request"
        );
    }

    #[test]
    fn new_prediction_replans_unsent_blocks() {
        let mut s = server(50, 5, 40);
        s.on_predictor_state(&PredictorState::LastRequest(RequestId(1)), Time::ZERO);
        // Send a couple of blocks for request 1.
        let _ = s.next_block(Time::ZERO);
        let _ = s.next_block(Time::ZERO);
        // Prediction changes to request 2: subsequent blocks switch over.
        s.on_predictor_state(
            &PredictorState::LastRequest(RequestId(2)),
            Time::from_millis(10),
        );
        let b = s.next_block(Time::from_millis(10)).unwrap();
        assert_eq!(b.meta.block.request, RequestId(2));
        assert_eq!(b.meta.block.index, 0);
    }

    #[test]
    fn rate_reports_update_pacing() {
        let mut s = server(10, 2, 10);
        let before = s.pacing_interval();
        s.on_rate_report(Bandwidth::from_mbps(1.0));
        let after = s.pacing_interval();
        assert!(after > before, "pacing should slow down at lower bandwidth");
        assert!((s.bandwidth_estimate().as_mbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn typed_protocol_drives_the_server() {
        let mut s = server(50, 4, 30);
        s.on_message(
            &ClientMessage::Predictor(PredictorState::LastRequest(RequestId(9))),
            Time::ZERO,
        );
        s.on_message(
            &ClientMessage::RateReport(Bandwidth::from_mbps(2.0)),
            Time::ZERO,
        );
        match s.poll(Time::ZERO) {
            ServerEvent::Block { session, block } => {
                assert_eq!(session, SessionId(0));
                assert_eq!(block.meta.block.request, RequestId(9));
            }
            other => panic!("expected a block, got {other:?}"),
        }
        assert_eq!(s.scheduler_name(), "greedy");
    }

    #[test]
    fn catalog_backend_bounds() {
        let catalog = Arc::new(ResponseCatalog::uniform(2, 2, 100));
        let mut b = CatalogBackend::new(catalog);
        assert!(b.fetch(BlockRef::new(RequestId(1), 1)).is_some());
        assert!(b.fetch(BlockRef::new(RequestId(1), 2)).is_none());
        assert!(b.fetch(BlockRef::new(RequestId(9), 0)).is_none());
        assert_eq!(b.concurrency_limit(), None);
        assert_eq!(b.name(), "catalog");
    }

    #[test]
    fn configs_are_cloneable_and_debuggable() {
        let cfg = ServerConfig::default();
        let copy = cfg.clone();
        let text = format!("{copy:?}");
        assert!(text.contains("ServerConfig"));
        assert!(text.contains("scheduler"));
    }

    struct LimitedBackend {
        inner: CatalogBackend,
        limit: usize,
    }

    impl Backend for LimitedBackend {
        fn fetch(&mut self, block: BlockRef) -> Option<Block> {
            self.inner.fetch(block)
        }
        fn concurrency_limit(&self) -> Option<usize> {
            Some(self.limit)
        }
    }

    #[test]
    fn backend_limit_restricts_distinct_requests() {
        let n = 50;
        let blocks = 10u32;
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 10_000));
        let cfg = ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks: 30,
                ..Default::default()
            },
            sender_queue_target: 30,
            ..Default::default()
        };
        let mut s = ServerBuilder::new(
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog.clone(),
        )
        .config(cfg)
        .predictor(Box::new(SimpleServerPredictor::new(n)))
        .backend(Box::new(LimitedBackend {
            inner: CatalogBackend::new(catalog),
            limit: 3,
        }))
        .build();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            if let Some(b) = s.next_block(Time::ZERO) {
                seen.insert(b.meta.block.request);
            }
        }
        assert!(
            seen.len() <= 3,
            "backend limit violated: {} distinct requests in one queue refill",
            seen.len()
        );
    }
}
