//! Server-side library: scheduler + sender orchestration (§3.2, §5.3.2).
//!
//! [`KhameleonServer`] ties together the greedy scheduler, the server-side
//! predictor component, the bandwidth estimator, and a [`Backend`] that
//! resolves block references into actual blocks.  It exposes a *pull* API —
//! `next_block(now)` returns the next block the sender should place on the
//! network — so the same code drives both the discrete-event simulator and a
//! live threaded deployment (see the `live_pipeline` example).
//!
//! Sender coordination follows §5.3.2: when a fresh prediction arrives, the
//! blocks already handed to the network are immutable, the not-yet-sent tail
//! of the current schedule is rolled back and re-planned, and the sender
//! simply continues from its position.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::bandwidth::BandwidthEstimator;
use crate::block::{Block, ResponseCatalog};
use crate::predictor::{PredictorState, ServerPredictor};
use crate::scheduler::{limit_distinct_requests, GreedyScheduler, GreedySchedulerConfig};
use crate::types::{Bandwidth, BlockRef, RequestId, Time};
use crate::utility::UtilityModel;

/// A data backend that can resolve block references (§3.3: file system,
/// database engine, connection pool, ...).
pub trait Backend: Send {
    /// Fetches `block`.  Returns `None` if the backend cannot produce it
    /// (out-of-range request or block index).
    fn fetch(&mut self, block: BlockRef) -> Option<Block>;

    /// The number of concurrent in-flight requests the backend can serve
    /// without degradation, or `None` if it scales arbitrarily (§5.4).
    fn concurrency_limit(&self) -> Option<usize> {
        None
    }

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &str {
        "backend"
    }
}

/// Configuration of [`KhameleonServer`].
pub struct ServerConfig {
    /// Scheduler configuration (cache size, batch size, γ, ...).
    pub scheduler: GreedySchedulerConfig,
    /// Initial bandwidth estimate used before the client reports rates.
    pub initial_bandwidth: Bandwidth,
    /// Optional user-configured bandwidth cap.
    pub bandwidth_cap: Option<Bandwidth>,
    /// How many blocks to keep queued between the scheduler and the sender.
    pub sender_queue_target: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            scheduler: GreedySchedulerConfig::default(),
            initial_bandwidth: Bandwidth::from_mbps(5.625),
            bandwidth_cap: None,
            sender_queue_target: 32,
        }
    }
}

/// The Khameleon server: scheduler, sender queue, predictor decoding,
/// bandwidth estimation, and backend access.
pub struct KhameleonServer {
    scheduler: GreedyScheduler,
    predictor: Box<dyn ServerPredictor>,
    backend: Box<dyn Backend>,
    catalog: Arc<ResponseCatalog>,
    bandwidth: BandwidthEstimator,
    queue: VecDeque<BlockRef>,
    queue_target: usize,
    /// Blocks of the current schedule already handed to the network.
    sent_in_schedule: usize,
    /// Total blocks sent per request (for backend-limit backfill bookkeeping).
    sent_per_request: HashMap<RequestId, u32>,
    blocks_sent: u64,
    bytes_sent: u64,
}

impl KhameleonServer {
    /// Creates a server.
    pub fn new(
        cfg: ServerConfig,
        utility: UtilityModel,
        catalog: Arc<ResponseCatalog>,
        predictor: Box<dyn ServerPredictor>,
        backend: Box<dyn Backend>,
    ) -> Self {
        let mut bandwidth = BandwidthEstimator::new(cfg.initial_bandwidth);
        bandwidth.set_cap(cfg.bandwidth_cap);
        let mut scheduler_cfg = cfg.scheduler;
        scheduler_cfg.slot_duration = bandwidth.slot_duration(catalog.max_block_size().max(1));
        let scheduler = GreedyScheduler::new(scheduler_cfg, utility, catalog.clone());
        KhameleonServer {
            scheduler,
            predictor,
            backend,
            catalog,
            bandwidth,
            queue: VecDeque::new(),
            queue_target: cfg.sender_queue_target.max(1),
            sent_in_schedule: 0,
            sent_per_request: HashMap::new(),
            blocks_sent: 0,
            bytes_sent: 0,
        }
    }

    /// The current bandwidth estimate.
    pub fn bandwidth_estimate(&self) -> Bandwidth {
        self.bandwidth.estimate()
    }

    /// Total blocks sent since creation.
    pub fn blocks_sent(&self) -> u64 {
        self.blocks_sent
    }

    /// Total bytes sent since creation.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Number of prediction updates the scheduler has applied.
    pub fn prediction_updates(&self) -> u64 {
        self.scheduler.prediction_updates()
    }

    /// Handles a receive-rate report from the client (§5.4).
    pub fn on_rate_report(&mut self, rate: Bandwidth) {
        self.bandwidth.report_rate(rate);
        self.scheduler
            .set_slot_duration(self.bandwidth.slot_duration(self.catalog.max_block_size().max(1)));
    }

    /// Handles a predictor-state message from the client: decodes it and
    /// re-plans the unsent portion of the schedule (§5.3.2).
    pub fn on_predictor_state(&mut self, state: &PredictorState, now: Time) {
        let summary = self.predictor.decode(state, now);
        // Discard the queued (scheduled but unsent) blocks; the scheduler
        // rolls its state back to the sender position and re-plans them.
        self.queue.clear();
        self.scheduler
            .update_prediction(&summary, self.sent_in_schedule);
    }

    /// Refills the sender queue from the scheduler, applying the backend
    /// concurrency limit if the backend has one.
    fn refill_queue(&mut self) {
        if self.queue.len() >= self.queue_target {
            return;
        }
        let want = self.queue_target - self.queue.len();
        let mut batch = self.scheduler.next_batch(want);
        if let Some(limit) = self.backend.concurrency_limit() {
            let catalog = self.catalog.clone();
            batch = limit_distinct_requests(
                &batch,
                limit,
                |r| catalog.num_blocks(r),
                &self.sent_per_request,
            );
        }
        self.queue.extend(batch);
    }

    /// Returns the next block the sender should push, fetching it from the
    /// backend, or `None` when no useful block remains (everything scheduled
    /// and resident).
    pub fn next_block(&mut self, _now: Time) -> Option<Block> {
        if self.queue.is_empty() {
            self.refill_queue();
        }
        let block_ref = self.queue.pop_front()?;
        let block = self.backend.fetch(block_ref)?;
        self.sent_in_schedule += 1;
        if self.sent_in_schedule >= self.scheduler.config().cache_blocks {
            // The schedule wrapped: the scheduler reset its own state when it
            // crossed the boundary; realign the sender position.
            self.sent_in_schedule = 0;
        }
        *self.sent_per_request.entry(block_ref.request).or_insert(0) += 1;
        self.blocks_sent += 1;
        self.bytes_sent += block.meta.size;
        Some(block)
    }

    /// Time the sender should wait between consecutive blocks to pace at the
    /// estimated bandwidth.
    pub fn pacing_interval(&self) -> crate::types::Duration {
        self.bandwidth
            .slot_duration(self.catalog.max_block_size().max(1))
    }

    /// The scheduler's view of the client cache (for tests/diagnostics).
    pub fn simulated_client_cache(&self) -> HashMap<RequestId, u32> {
        self.scheduler.simulated_cache()
    }
}

/// A trivial backend that serves metadata-only blocks straight from the
/// catalog — the equivalent of a file system pre-loaded with progressively
/// encoded responses (§3.2).  Useful for tests and as a default.
pub struct CatalogBackend {
    catalog: Arc<ResponseCatalog>,
}

impl CatalogBackend {
    /// Creates a backend over `catalog`.
    pub fn new(catalog: Arc<ResponseCatalog>) -> Self {
        CatalogBackend { catalog }
    }
}

impl Backend for CatalogBackend {
    fn fetch(&mut self, block: BlockRef) -> Option<Block> {
        let layout = self.catalog.get(block.request)?;
        let meta = layout.block_meta(block.index)?;
        Some(Block {
            meta,
            payload: None,
        })
    }

    fn name(&self) -> &str {
        "catalog"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::simple::SimpleServerPredictor;
    use crate::utility::LinearUtility;

    fn server(n: usize, blocks: u32, cache_blocks: usize) -> KhameleonServer {
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 10_000));
        let cfg = ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks,
                ..Default::default()
            },
            ..Default::default()
        };
        KhameleonServer::new(
            cfg,
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog.clone(),
            Box::new(SimpleServerPredictor::new(n)),
            Box::new(CatalogBackend::new(catalog)),
        )
    }

    #[test]
    fn streams_blocks_without_any_prediction() {
        let mut s = server(10, 4, 20);
        let mut got = 0;
        while let Some(b) = s.next_block(Time::ZERO) {
            assert!(b.meta.block.request.index() < 10);
            got += 1;
            if got > 100 {
                break;
            }
        }
        // 10 requests * 4 blocks = 40 distinct blocks; with cache tracking the
        // server stops once everything fits conceptually in flight.
        assert!(got >= 20, "server pushed only {got} blocks");
        assert_eq!(s.blocks_sent(), got as u64);
        assert!(s.bytes_sent() > 0);
    }

    #[test]
    fn prediction_steers_the_stream() {
        let mut s = server(100, 5, 50);
        s.on_predictor_state(&PredictorState::LastRequest(RequestId(42)), Time::ZERO);
        assert_eq!(s.prediction_updates(), 1);
        let mut first_blocks = Vec::new();
        for _ in 0..5 {
            if let Some(b) = s.next_block(Time::ZERO) {
                first_blocks.push(b.meta.block);
            }
        }
        let for_42 = first_blocks
            .iter()
            .filter(|b| b.request == RequestId(42))
            .count();
        assert!(for_42 >= 4, "only {for_42} of the first 5 blocks target the predicted request");
    }

    #[test]
    fn new_prediction_replans_unsent_blocks() {
        let mut s = server(50, 5, 40);
        s.on_predictor_state(&PredictorState::LastRequest(RequestId(1)), Time::ZERO);
        // Send a couple of blocks for request 1.
        let _ = s.next_block(Time::ZERO);
        let _ = s.next_block(Time::ZERO);
        // Prediction changes to request 2: subsequent blocks switch over.
        s.on_predictor_state(&PredictorState::LastRequest(RequestId(2)), Time::from_millis(10));
        let b = s.next_block(Time::from_millis(10)).unwrap();
        assert_eq!(b.meta.block.request, RequestId(2));
        assert_eq!(b.meta.block.index, 0);
    }

    #[test]
    fn rate_reports_update_pacing() {
        let mut s = server(10, 2, 10);
        let before = s.pacing_interval();
        s.on_rate_report(Bandwidth::from_mbps(1.0));
        let after = s.pacing_interval();
        assert!(after > before, "pacing should slow down at lower bandwidth");
        assert!((s.bandwidth_estimate().as_mbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_backend_bounds() {
        let catalog = Arc::new(ResponseCatalog::uniform(2, 2, 100));
        let mut b = CatalogBackend::new(catalog);
        assert!(b.fetch(BlockRef::new(RequestId(1), 1)).is_some());
        assert!(b.fetch(BlockRef::new(RequestId(1), 2)).is_none());
        assert!(b.fetch(BlockRef::new(RequestId(9), 0)).is_none());
        assert_eq!(b.concurrency_limit(), None);
        assert_eq!(b.name(), "catalog");
    }

    struct LimitedBackend {
        inner: CatalogBackend,
        limit: usize,
    }

    impl Backend for LimitedBackend {
        fn fetch(&mut self, block: BlockRef) -> Option<Block> {
            self.inner.fetch(block)
        }
        fn concurrency_limit(&self) -> Option<usize> {
            Some(self.limit)
        }
    }

    #[test]
    fn backend_limit_restricts_distinct_requests() {
        let n = 50;
        let blocks = 10u32;
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 10_000));
        let cfg = ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks: 30,
                ..Default::default()
            },
            sender_queue_target: 30,
            ..Default::default()
        };
        let mut s = KhameleonServer::new(
            cfg,
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog.clone(),
            Box::new(SimpleServerPredictor::new(n)),
            Box::new(LimitedBackend {
                inner: CatalogBackend::new(catalog),
                limit: 3,
            }),
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            if let Some(b) = s.next_block(Time::ZERO) {
                seen.insert(b.meta.block.request);
            }
        }
        assert!(
            seen.len() <= 3,
            "backend limit violated: {} distinct requests in one queue refill",
            seen.len()
        );
    }
}
