//! Prediction deltas: `O(Δ)` uplink encoding and the server-side shadow.
//!
//! The diff path of [`HorizonModel::apply_update`] keeps the *model* update
//! proportional to the number of changed requests, but it is still fed whole
//! [`PredictionSummary`]s: the client ships `O(m · slices)` floats per
//! update and the server recomputes `O(m)` signatures just to discover that
//! most of them are unchanged.  This module closes both gaps:
//!
//! * [`DeltaTracker`] (client side) diffs consecutive summaries bit-exactly
//!   and emits either a [`ClientMessage::PredictorFull`] or a
//!   [`ClientMessage::PredictorDelta`] carrying only the entries whose
//!   stored `f64` bits changed, tagged with a generation chain.
//! * [`ShadowSummary`] (server side, one per session) reconstructs the
//!   client's summary bit-for-bit from the delta and hands the scheduler a
//!   precomputed changed-set plus the per-slice scalars a
//!   [`SlotPlan`](crate::scheduler) needs — so
//!   [`HorizonModel::apply_update_sparse`] plans in `O(Δ · slices)` with no
//!   signature scan.
//!
//! Bit-exactness is load-bearing: the shadow must reproduce the *exact*
//! bits the client's summary holds, or unchanged requests would grow
//! spurious signature diffs and the sparse changed-set would be dishonest.
//! That is why the shadow patches slices through
//! [`SparseDistribution::from_normalized`] (no renormalization) and why
//! [`DeltaTracker`] compares probabilities by bit pattern, not by value.
//!
//! A delta that names a base generation the shadow does not hold is refused
//! with [`DeltaError::GenerationMismatch`]; servers surface this as
//! [`ServerEvent::Resync`](crate::protocol::ServerEvent::Resync) and the
//! client answers with a fresh full summary.
//!
//! [`HorizonModel::apply_update`]: crate::scheduler::HorizonModel::apply_update
//! [`HorizonModel::apply_update_sparse`]: crate::scheduler::HorizonModel::apply_update_sparse
//! [`ClientMessage::PredictorFull`]: crate::protocol::ClientMessage::PredictorFull
//! [`ClientMessage::PredictorDelta`]: crate::protocol::ClientMessage::PredictorDelta

use std::collections::HashMap;

use crate::distribution::{union_count, PredictionSummary, SparseDistribution};
use crate::protocol::ClientMessage;
use crate::types::{RequestId, Time};

/// Changes to one horizon slice: entries whose probability changed or that
/// joined the explicit set (`upserts`), entries that left it (`removes`),
/// and the slice's residual mass when it changed.  Both id lists are sorted
/// ascending and disjoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SliceDelta {
    /// New or changed explicit entries, ascending by id.
    pub upserts: Vec<(RequestId, f64)>,
    /// Entries dropped from the explicit set, ascending by id.
    pub removes: Vec<RequestId>,
    /// The slice's new residual mass, when it changed (`None` = unchanged).
    pub residual: Option<f64>,
}

impl SliceDelta {
    /// Whether this slice delta changes anything.
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.removes.is_empty() && self.residual.is_none()
    }
}

/// A prediction update expressed as the difference against a previous
/// summary, identified by a generation chain: applying this delta to the
/// summary at `base_generation` yields the summary at `generation`,
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionDelta {
    /// Generation of the summary this delta applies on top of.
    pub base_generation: u64,
    /// Generation of the summary this delta produces.
    pub generation: u64,
    /// Client clock at which the new prediction was generated.
    pub generated_at: Time,
    /// Per-slice changes, in slice order (same length as the summary's
    /// slice list; untouched slices carry an empty [`SliceDelta`]).
    pub slices: Vec<SliceDelta>,
}

impl PredictionDelta {
    /// Total number of changed entries (upserts plus removes) across all
    /// slices — the `Δ` in `O(Δ)`.
    pub fn changed_entries(&self) -> usize {
        self.slices
            .iter()
            .map(|s| s.upserts.len() + s.removes.len())
            .sum()
    }

    /// Approximate encoded size in bytes, on the same coarse scale as
    /// [`PredictionSummary::wire_size_bytes`]: an upsert costs an id plus a
    /// probability, a remove costs an id, plus small per-slice and
    /// per-message headers.
    pub fn wire_size_bytes(&self) -> u64 {
        let mut bytes = 24u64; // generations + timestamp
        for s in &self.slices {
            bytes += 4; // per-slice counts
            bytes += 12 * s.upserts.len() as u64;
            bytes += 4 * s.removes.len() as u64;
            if s.residual.is_some() {
                bytes += 8;
            }
        }
        bytes
    }
}

/// Per-slice scalars of a summary that a slot plan would otherwise derive
/// by scanning every explicit entry: explicit probability mass per slice
/// and `|A ∪ B|` per adjacent slice pair.  The shadow recomputes them
/// during the flat merge it already performs per patched slice, in the same
/// summation order as the full-scan path, so the two paths produce
/// identical plans.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryScalars {
    /// Explicit probability mass per slice, in slice order.
    pub masses: Vec<f64>,
    /// `|A ∪ B|` for each adjacent slice pair (`len == slices - 1`).
    pub pair_unions: Vec<usize>,
}

/// The changed-set a [`ShadowSummary`] hands the scheduler alongside the
/// patched summary: every request whose per-slice probabilities (hence
/// signature) may differ from the previous summary, plus the slot-plan
/// scalars.  Drives
/// [`Scheduler::update_prediction_sparse`](crate::scheduler::Scheduler::update_prediction_sparse).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionChanges {
    /// Requests whose probabilities changed, ascending and unique.  A
    /// superset is allowed (unchanged entries diff to no-ops); an omission
    /// would corrupt the model, so the shadow only takes the sparse path
    /// when it can prove the set complete.
    pub changed: Vec<RequestId>,
    /// Slot-plan scalars of the *new* summary.
    pub scalars: SummaryScalars,
}

/// Why a delta could not be applied to a [`ShadowSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta's base generation does not match the shadow's current
    /// generation (or the shadow holds no summary at all).  The client must
    /// resend a full summary.
    GenerationMismatch {
        /// The generation the shadow holds, if any.
        have: Option<u64>,
        /// The base generation the delta named.
        want: u64,
    },
    /// The delta is structurally invalid (unsorted ids, out-of-range
    /// entries, removes of absent entries, non-finite probabilities, slice
    /// count mismatch).  The shadow is left untouched.
    Malformed(&'static str),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::GenerationMismatch { have, want } => match have {
                Some(g) => write!(f, "delta base generation {want} does not match shadow {g}"),
                None => write!(
                    f,
                    "delta base generation {want} but no shadow summary installed"
                ),
            },
            DeltaError::Malformed(why) => write!(f, "malformed prediction delta: {why}"),
        }
    }
}

/// Result of applying a delta to a [`ShadowSummary`].
#[derive(Debug)]
pub enum ShadowApply<'a> {
    /// The delta was applied and the changed-set is provably complete:
    /// drive the sparse scheduler path.
    Sparse {
        /// The patched summary (bit-identical to the client's).
        summary: &'a PredictionSummary,
        /// The changed-set and slot-plan scalars.
        changes: PredictionChanges,
    },
    /// The delta was applied, but a slice's residual-per-request changed
    /// while some materialized request lacks an explicit entry in every
    /// slice — such requests' signatures shifted without appearing in the
    /// delta, so the sparse path would be unsound.  Drive the full update
    /// path (still `O(Δ)` on the wire, full-scan on the server).
    Full {
        /// The patched summary (bit-identical to the client's).
        summary: &'a PredictionSummary,
    },
}

/// Server-side mirror of one client's prediction summary, patched in place
/// by [`PredictionDelta`]s.  One per session/connection.
///
/// Alongside the summary the shadow maintains, incrementally, everything
/// the sparse scheduler path needs:
///
/// * per-slice explicit mass and adjacent-pair union counts
///   ([`SummaryScalars`]), recomputed only for patched slices;
/// * per-request explicit-slice masks and a count of *partial-mask*
///   requests, which is what lets it certify the changed-set as complete
///   (a request explicit in every slice never reads a slice's
///   residual-per-request, so residual shifts cannot silently change its
///   signature).
#[derive(Debug, Default)]
pub struct ShadowSummary {
    state: Option<ShadowState>,
}

#[derive(Debug)]
struct ShadowState {
    generation: u64,
    summary: PredictionSummary,
    masses: Vec<f64>,
    pair_unions: Vec<usize>,
    /// Bit `i` set when slice `i` has an explicit entry for the request.
    /// Only maintained for summaries of ≤ 32 slices (`wide` otherwise).
    masks: HashMap<RequestId, u32>,
    /// Materialized requests whose mask is not the full-slice mask.
    partial: usize,
    /// More than 32 slices: masks are not tracked and every delta takes the
    /// full update path (the diff scheduler refuses such summaries anyway).
    wide: bool,
}

impl ShadowSummary {
    /// An empty shadow (no summary installed; every delta is refused).
    pub fn new() -> Self {
        ShadowSummary::default()
    }

    /// Drops the installed summary; subsequent deltas are refused until the
    /// next [`install`](ShadowSummary::install).
    pub fn clear(&mut self) {
        self.state = None;
    }

    /// The generation of the installed summary, if any.
    pub fn generation(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.generation)
    }

    /// The installed summary, if any.
    pub fn summary(&self) -> Option<&PredictionSummary> {
        self.state.as_ref().map(|s| &s.summary)
    }

    /// Installs a full summary at `generation`, deriving all incremental
    /// state from scratch (`O(m · slices)` — the price of a full update,
    /// paid only on install/resync).
    pub fn install(&mut self, generation: u64, summary: PredictionSummary) {
        let slices = summary.slices();
        let masses: Vec<f64> = slices
            .iter()
            .map(|s| s.dist.explicit_entries().iter().map(|&(_, p)| p).sum())
            .collect();
        let pair_unions: Vec<usize> = slices
            .windows(2)
            .map(|w| union_count(w[0].dist.explicit_entries(), w[1].dist.explicit_entries()))
            .collect();
        let wide = slices.len() > 32;
        let mut masks: HashMap<RequestId, u32> = HashMap::new();
        let mut partial = 0usize;
        if !wide {
            for (i, s) in slices.iter().enumerate() {
                for &(r, _) in s.dist.explicit_entries() {
                    *masks.entry(r).or_insert(0) |= 1u32 << i;
                }
            }
            let full = full_mask(slices.len());
            partial = masks.values().filter(|&&m| m != full).count();
        }
        self.state = Some(ShadowState {
            generation,
            summary,
            masses,
            pair_unions,
            masks,
            partial,
            wide,
        });
    }

    /// Applies `delta`, patching the summary in place and returning the
    /// changed-set (or a full-path directive).  On error the shadow is left
    /// exactly as it was: validation completes before any mutation.
    pub fn apply(&mut self, delta: &PredictionDelta) -> Result<ShadowApply<'_>, DeltaError> {
        let state = self.state.as_mut().ok_or(DeltaError::GenerationMismatch {
            have: None,
            want: delta.base_generation,
        })?;
        if state.generation != delta.base_generation {
            return Err(DeltaError::GenerationMismatch {
                have: Some(state.generation),
                want: delta.base_generation,
            });
        }
        let slices = state.summary.slices();
        if delta.slices.len() != slices.len() {
            return Err(DeltaError::Malformed("slice count mismatch"));
        }
        let n = state.summary.num_requests();

        // --- validate everything before mutating anything ---
        for (sd, slice) in delta.slices.iter().zip(slices) {
            if !strictly_ascending(sd.upserts.iter().map(|&(r, _)| r)) {
                return Err(DeltaError::Malformed("upserts not sorted/unique"));
            }
            if !strictly_ascending(sd.removes.iter().copied()) {
                return Err(DeltaError::Malformed("removes not sorted/unique"));
            }
            if sd
                .upserts
                .iter()
                .any(|&(r, p)| r.index() >= n || !p.is_finite() || p < 0.0)
            {
                return Err(DeltaError::Malformed("upsert out of range or non-finite"));
            }
            if sd.removes.iter().any(|&r| r.index() >= n) {
                return Err(DeltaError::Malformed("remove out of range"));
            }
            if sorted_intersect(&sd.upserts, &sd.removes) {
                return Err(DeltaError::Malformed("id both upserted and removed"));
            }
            let entries = slice.dist.explicit_entries();
            if sd
                .removes
                .iter()
                .any(|&r| entries.binary_search_by_key(&r, |&(x, _)| x).is_err())
            {
                return Err(DeltaError::Malformed("remove of absent entry"));
            }
            if let Some(res) = sd.residual {
                if !res.is_finite() || res < 0.0 {
                    return Err(DeltaError::Malformed("residual non-finite or negative"));
                }
            }
        }

        // --- apply (infallible from here) ---
        let nslices = slices.len();
        let full = full_mask(nslices);
        let mut rpp_changed = false;
        let mut modified = vec![false; nslices];
        for (i, sd) in delta.slices.iter().enumerate() {
            if sd.is_empty() {
                continue;
            }
            modified[i] = true;
            let dist = &state.summary.slices()[i].dist;
            let old_rpp = dist.residual_per_request().to_bits();
            let old_entries = dist.explicit_entries();
            let mut merged: Vec<(RequestId, f64)> =
                Vec::with_capacity(old_entries.len() + sd.upserts.len());
            let bit = if state.wide { 0 } else { 1u32 << i };
            let (mut ui, mut ri) = (0usize, 0usize);
            for &(r, p) in old_entries {
                while ui < sd.upserts.len() && sd.upserts[ui].0 < r {
                    merged.push(sd.upserts[ui]);
                    mask_set(
                        &mut state.masks,
                        &mut state.partial,
                        full,
                        sd.upserts[ui].0,
                        bit,
                    );
                    ui += 1;
                }
                if ui < sd.upserts.len() && sd.upserts[ui].0 == r {
                    merged.push(sd.upserts[ui]);
                    ui += 1;
                } else if ri < sd.removes.len() && sd.removes[ri] == r {
                    mask_clear(&mut state.masks, &mut state.partial, full, r, bit);
                    ri += 1;
                } else {
                    merged.push((r, p));
                }
                while ri < sd.removes.len() && sd.removes[ri] < r {
                    // Validated above: every remove hits an existing entry.
                    ri += 1;
                }
            }
            while ui < sd.upserts.len() {
                merged.push(sd.upserts[ui]);
                mask_set(
                    &mut state.masks,
                    &mut state.partial,
                    full,
                    sd.upserts[ui].0,
                    bit,
                );
                ui += 1;
            }
            // Same summation order as a full entry scan, so the sparse slot
            // plan is bit-identical to the full one.
            state.masses[i] = merged.iter().map(|&(_, p)| p).sum();
            let residual = sd.residual.unwrap_or(dist.residual_mass());
            let patched = SparseDistribution::from_normalized(n, merged, residual);
            if patched.residual_per_request().to_bits() != old_rpp {
                rpp_changed = true;
            }
            state.summary.set_slice_dist(i, patched);
        }
        for pi in 0..nslices.saturating_sub(1) {
            if modified[pi] || modified[pi + 1] {
                let s = state.summary.slices();
                state.pair_unions[pi] = union_count(
                    s[pi].dist.explicit_entries(),
                    s[pi + 1].dist.explicit_entries(),
                );
            }
        }
        state.summary.generated_at = delta.generated_at;
        state.generation = delta.generation;

        if state.wide || (rpp_changed && state.partial > 0) {
            // A residual shift changes the signature of every materialized
            // request *not* explicit in the shifted slice; those ids are not
            // in the delta, so the sparse changed-set would be incomplete.
            return Ok(ShadowApply::Full {
                summary: &state.summary,
            });
        }
        let mut changed: Vec<RequestId> = delta
            .slices
            .iter()
            .flat_map(|s| {
                s.upserts
                    .iter()
                    .map(|&(r, _)| r)
                    .chain(s.removes.iter().copied())
            })
            .collect();
        changed.sort_unstable();
        changed.dedup();
        Ok(ShadowApply::Sparse {
            summary: &state.summary,
            changes: PredictionChanges {
                changed,
                scalars: SummaryScalars {
                    masses: state.masses.clone(),
                    pair_unions: state.pair_unions.clone(),
                },
            },
        })
    }
}

fn full_mask(nslices: usize) -> u32 {
    if nslices >= 32 {
        u32::MAX
    } else {
        (1u32 << nslices) - 1
    }
}

fn strictly_ascending(ids: impl Iterator<Item = RequestId>) -> bool {
    let mut prev: Option<RequestId> = None;
    for r in ids {
        if prev.is_some_and(|p| p >= r) {
            return false;
        }
        prev = Some(r);
    }
    true
}

fn sorted_intersect(upserts: &[(RequestId, f64)], removes: &[RequestId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < upserts.len() && j < removes.len() {
        match upserts[i].0.cmp(&removes[j]) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    false
}

fn mask_set(
    masks: &mut HashMap<RequestId, u32>,
    partial: &mut usize,
    full: u32,
    r: RequestId,
    bit: u32,
) {
    if bit == 0 {
        return;
    }
    let m = masks.entry(r).or_insert(0);
    let old = *m;
    *m |= bit;
    let new = *m;
    *partial += usize::from(new != 0 && new != full);
    *partial -= usize::from(old != 0 && old != full);
}

fn mask_clear(
    masks: &mut HashMap<RequestId, u32>,
    partial: &mut usize,
    full: u32,
    r: RequestId,
    bit: u32,
) {
    if bit == 0 {
        return;
    }
    if let Some(m) = masks.get_mut(&r) {
        let old = *m;
        *m &= !bit;
        let new = *m;
        *partial += usize::from(new != 0 && new != full);
        *partial -= usize::from(old != 0 && old != full);
        if new == 0 {
            masks.remove(&r);
        }
    }
}

/// Client-side generation tracker: turns a stream of prediction summaries
/// into [`ClientMessage::PredictorFull`] / [`PredictorDelta`] messages.
///
/// The first summary (and any summary after [`reset`](DeltaTracker::reset),
/// a slice-structure change, or a delta that would not actually be smaller)
/// ships in full; every other update ships only the entries whose stored
/// `f64` bits differ from the previous summary.
///
/// [`PredictorDelta`]: crate::protocol::ClientMessage::PredictorDelta
#[derive(Debug, Default)]
pub struct DeltaTracker {
    generation: u64,
    last: Option<PredictionSummary>,
    /// Ship a full summary when the delta's estimated wire size exceeds
    /// this fraction of the full summary's (default 0.5): past that point
    /// the delta's per-entry overhead stops paying for itself.
    max_delta_ratio: f64,
}

impl DeltaTracker {
    /// A fresh tracker; the first [`encode`](DeltaTracker::encode) ships a
    /// full summary at generation 1.
    pub fn new() -> Self {
        DeltaTracker {
            generation: 0,
            last: None,
            max_delta_ratio: 0.5,
        }
    }

    /// Overrides the delta-vs-full size cutoff (fraction of the full
    /// summary's wire size above which a full summary is sent instead).
    pub fn with_max_delta_ratio(mut self, ratio: f64) -> Self {
        self.max_delta_ratio = ratio.max(0.0);
        self
    }

    /// The generation of the last encoded summary (0 before the first).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Forgets the last summary so the next [`encode`](DeltaTracker::encode)
    /// ships in full — the client's reaction to
    /// [`ServerEvent::Resync`](crate::protocol::ServerEvent::Resync).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// Encodes `summary` as a delta against the previously encoded summary
    /// when possible (and worthwhile), or as a full summary otherwise.
    pub fn encode(&mut self, summary: &PredictionSummary) -> ClientMessage {
        let delta = match &self.last {
            Some(prev) if same_structure(prev, summary) => Some(diff_summaries(prev, summary)),
            _ => None,
        };
        let base = self.generation;
        self.generation += 1;
        self.last = Some(summary.clone());
        match delta {
            Some(slices)
                if estimated_delta_bytes(&slices)
                    <= (self.max_delta_ratio * summary.wire_size_bytes() as f64) as u64 =>
            {
                ClientMessage::PredictorDelta(PredictionDelta {
                    base_generation: base,
                    generation: self.generation,
                    generated_at: summary.generated_at,
                    slices,
                })
            }
            _ => ClientMessage::PredictorFull {
                generation: self.generation,
                summary: summary.clone(),
            },
        }
    }
}

fn same_structure(a: &PredictionSummary, b: &PredictionSummary) -> bool {
    a.num_requests() == b.num_requests()
        && a.slices().len() == b.slices().len()
        && a.slices()
            .iter()
            .zip(b.slices())
            .all(|(x, y)| x.delta == y.delta)
}

fn estimated_delta_bytes(slices: &[SliceDelta]) -> u64 {
    let mut bytes = 24u64;
    for s in slices {
        bytes += 4 + 12 * s.upserts.len() as u64 + 4 * s.removes.len() as u64;
        if s.residual.is_some() {
            bytes += 8;
        }
    }
    bytes
}

fn diff_summaries(prev: &PredictionSummary, next: &PredictionSummary) -> Vec<SliceDelta> {
    prev.slices()
        .iter()
        .zip(next.slices())
        .map(|(a, b)| {
            let (ea, eb) = (a.dist.explicit_entries(), b.dist.explicit_entries());
            let mut upserts = Vec::new();
            let mut removes = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < ea.len() || j < eb.len() {
                match (ea.get(i), eb.get(j)) {
                    (Some(&(ra, pa)), Some(&(rb, pb))) if ra == rb => {
                        if pa.to_bits() != pb.to_bits() {
                            upserts.push((rb, pb));
                        }
                        i += 1;
                        j += 1;
                    }
                    (Some(&(ra, _)), Some(&(rb, _))) if ra < rb => {
                        removes.push(ra);
                        i += 1;
                    }
                    (Some(_), None) => {
                        removes.push(ea[i].0);
                        i += 1;
                    }
                    (_, Some(&(rb, pb))) => {
                        upserts.push((rb, pb));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            let residual = (a.dist.residual_mass().to_bits() != b.dist.residual_mass().to_bits())
                .then(|| b.dist.residual_mass());
            SliceDelta {
                upserts,
                removes,
                residual,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::HorizonSlice;

    fn summary(n: usize, per_slice: Vec<Vec<(u32, f64)>>, residual: f64) -> PredictionSummary {
        let deltas = PredictionSummary::default_deltas();
        let slices = per_slice
            .into_iter()
            .zip(deltas)
            .map(|(entries, delta)| HorizonSlice {
                delta,
                dist: SparseDistribution::from_normalized(
                    n,
                    entries
                        .into_iter()
                        .map(|(r, p)| (RequestId(r), p))
                        .collect(),
                    residual,
                ),
            })
            .collect();
        PredictionSummary::new(n, slices, Time::from_micros(0))
    }

    fn four(entries: Vec<(u32, f64)>, residual: f64, n: usize) -> PredictionSummary {
        summary(
            n,
            vec![entries.clone(), entries.clone(), entries.clone(), entries],
            residual,
        )
    }

    #[test]
    fn tracker_first_encode_is_full_then_delta() {
        // Toy summaries are so small the 50% economy check would refuse the
        // delta; this test is about the mechanism, not the economics.
        let mut t = DeltaTracker::new().with_max_delta_ratio(1.0);
        let s1 = four(vec![(1, 0.4), (2, 0.4)], 0.2, 100);
        let m1 = t.encode(&s1);
        assert!(matches!(
            m1,
            ClientMessage::PredictorFull { generation: 1, .. }
        ));
        let s2 = four(vec![(1, 0.5), (2, 0.3)], 0.2, 100);
        match t.encode(&s2) {
            ClientMessage::PredictorDelta(d) => {
                assert_eq!(d.base_generation, 1);
                assert_eq!(d.generation, 2);
                assert_eq!(d.changed_entries(), 8); // 2 upserts × 4 slices
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn shadow_reconstructs_bit_exactly_and_reports_changed_set() {
        let mut t = DeltaTracker::new().with_max_delta_ratio(1.0);
        let mut shadow = ShadowSummary::new();
        let s1 = four(vec![(1, 0.4), (2, 0.4), (7, 0.1)], 0.1, 100);
        match t.encode(&s1) {
            ClientMessage::PredictorFull {
                generation,
                summary,
            } => shadow.install(generation, summary),
            other => panic!("expected full, got {other:?}"),
        }
        let s2 = four(vec![(1, 0.5), (2, 0.4), (9, 0.05)], 0.05, 100);
        let msg = t.encode(&s2);
        let ClientMessage::PredictorDelta(d) = msg else {
            panic!("expected delta, got {msg:?}");
        };
        match shadow.apply(&d).expect("apply") {
            ShadowApply::Sparse { summary, changes } => {
                assert_eq!(summary, &s2);
                let ids: Vec<u32> = changes.changed.iter().map(|r| r.0).collect();
                assert_eq!(ids, vec![1, 7, 9]);
            }
            // Residual changed and every materialized request is explicit in
            // all four slices, so the sparse path must be taken.
            ShadowApply::Full { .. } => panic!("expected sparse path"),
        }
        assert_eq!(shadow.generation(), Some(2));
    }

    #[test]
    fn shadow_falls_back_to_full_path_on_partial_masks_with_residual_shift() {
        let mut shadow = ShadowSummary::new();
        // Request 5 is explicit only in slice 0: a residual shift in slice 1
        // changes its signature without it appearing in the delta.
        let s1 = summary(
            100,
            vec![
                vec![(1, 0.5), (5, 0.3)],
                vec![(1, 0.5)],
                vec![(1, 0.5)],
                vec![(1, 0.5)],
            ],
            0.2,
        );
        shadow.install(1, s1);
        let d = PredictionDelta {
            base_generation: 1,
            generation: 2,
            generated_at: Time::from_micros(1),
            slices: vec![
                SliceDelta::default(),
                SliceDelta {
                    upserts: vec![(RequestId(1), 0.6)],
                    removes: vec![],
                    residual: Some(0.4),
                },
                SliceDelta::default(),
                SliceDelta::default(),
            ],
        };
        assert!(matches!(shadow.apply(&d), Ok(ShadowApply::Full { .. })));
    }

    #[test]
    fn shadow_refuses_generation_mismatch_and_stays_intact() {
        let mut shadow = ShadowSummary::new();
        let s1 = four(vec![(1, 0.9)], 0.1, 50);
        shadow.install(3, s1.clone());
        let d = PredictionDelta {
            base_generation: 7,
            generation: 8,
            generated_at: Time::from_micros(1),
            slices: vec![SliceDelta::default(); 4],
        };
        assert!(matches!(
            shadow.apply(&d),
            Err(DeltaError::GenerationMismatch {
                have: Some(3),
                want: 7
            })
        ));
        assert_eq!(shadow.summary(), Some(&s1));
        assert_eq!(shadow.generation(), Some(3));
    }

    #[test]
    fn malformed_deltas_are_rejected_without_mutation() {
        let mut shadow = ShadowSummary::new();
        let s1 = four(vec![(1, 0.5), (2, 0.3)], 0.2, 50);
        shadow.install(1, s1.clone());
        let bad = |slices: Vec<SliceDelta>| PredictionDelta {
            base_generation: 1,
            generation: 2,
            generated_at: Time::from_micros(1),
            slices,
        };
        // Remove of an entry that is not explicit.
        let d = bad(vec![
            SliceDelta {
                upserts: vec![],
                removes: vec![RequestId(9)],
                residual: None,
            },
            SliceDelta::default(),
            SliceDelta::default(),
            SliceDelta::default(),
        ]);
        assert!(matches!(shadow.apply(&d), Err(DeltaError::Malformed(_))));
        // Unsorted upserts.
        let d = bad(vec![
            SliceDelta {
                upserts: vec![(RequestId(5), 0.1), (RequestId(3), 0.1)],
                removes: vec![],
                residual: None,
            },
            SliceDelta::default(),
            SliceDelta::default(),
            SliceDelta::default(),
        ]);
        assert!(matches!(shadow.apply(&d), Err(DeltaError::Malformed(_))));
        assert_eq!(shadow.summary(), Some(&s1));
        assert_eq!(shadow.generation(), Some(1));
    }

    #[test]
    fn tracker_resets_to_full_after_resync() {
        let mut t = DeltaTracker::new();
        let s = four(vec![(1, 0.8)], 0.2, 50);
        let _ = t.encode(&s);
        t.reset();
        let s2 = four(vec![(1, 0.7)], 0.3, 50);
        assert!(matches!(
            t.encode(&s2),
            ClientMessage::PredictorFull { generation: 2, .. }
        ));
    }

    #[test]
    fn delta_wire_size_is_proportional_to_changes() {
        let n = 10_000;
        let m = 10_000;
        let entries: Vec<(u32, f64)> = (0..m).map(|i| (i, 1.0 / m as f64)).collect();
        let s1 = four(entries.clone(), 0.0, n as usize);
        let mut changed = entries;
        // ~1% churn: move mass among 100 entries.
        for e in changed.iter_mut().take(100) {
            e.1 *= 1.5;
        }
        let s2 = four(changed, 0.0, n as usize);
        let mut t = DeltaTracker::new();
        let _ = t.encode(&s1);
        match t.encode(&s2) {
            ClientMessage::PredictorDelta(d) => {
                assert!(
                    d.wire_size_bytes() * 50 <= s2.wire_size_bytes(),
                    "delta ({} B) not ≥50× smaller than full ({} B)",
                    d.wire_size_bytes(),
                    s2.wire_size_bytes()
                );
            }
            other => panic!("expected delta, got {other:?}"),
        }
    }
}
