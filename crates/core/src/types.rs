//! Fundamental identifiers and time units shared across the Khameleon stack.
//!
//! The paper models the interaction space as a finite set of *possible
//! requests* `Q = {q_1, ..., q_n}` (§5.1).  A request identifies one logical
//! piece of content (an image, a data-cube slice, a query result).  Each
//! response is progressively encoded into an ordered list of *blocks*; any
//! prefix of the block list is renderable at reduced quality (§3.3).

use std::fmt;

/// Identifier of one logical request in the application's request space.
///
/// Request ids are dense indices in `0..n` where `n` is the size of the
/// request space (e.g. 10,000 for the image-exploration application).  Dense
/// ids let the scheduler store per-request state in flat vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u32);

impl RequestId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for RequestId {
    fn from(v: u32) -> Self {
        RequestId(v)
    }
}

impl From<usize> for RequestId {
    fn from(v: usize) -> Self {
        RequestId(v as u32)
    }
}

/// Reference to the `index`-th block (0-based) of a request's progressive
/// encoding.
///
/// Block `0` is always a complete (low quality) response; later blocks refine
/// it (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockRef {
    /// The request this block belongs to.
    pub request: RequestId,
    /// 0-based position of the block within the request's progressive
    /// encoding.
    pub index: u32,
}

impl BlockRef {
    /// Creates a block reference.
    #[inline]
    pub fn new(request: RequestId, index: u32) -> Self {
        Self { request, index }
    }
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.request, self.index)
    }
}

/// Simulation / wall-clock time in integer microseconds.
///
/// All Khameleon components are written against a logical clock so that the
/// discrete-event simulator and live deployments share the same code.  A
/// microsecond granularity keeps sub-millisecond scheduling decisions exact
/// while still allowing ~584,000 years of range in a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Time(pub u64);

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time(0);

    /// Largest representable time; useful as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs a time from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// Constructs a time from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000)
    }

    /// Constructs a time from fractional milliseconds (rounded to the nearest
    /// microsecond, saturating at zero).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Time((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Constructs a time from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000)
    }

    /// Constructs a time from fractional seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Time((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// The time in microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The time in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// Saturating difference between two instants.
    #[inline]
    pub fn saturating_sub(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A span of logical time, in integer microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Constructs a duration from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Constructs a duration from fractional milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Duration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// Constructs a duration from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// The duration in microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// Number of bytes, used for block payloads, cache capacities, and link
/// bandwidths.
pub type Bytes = u64;

/// Bandwidth expressed in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Constructs a bandwidth from megabytes per second (the unit the paper
    /// reports, §6.1).
    #[inline]
    pub fn from_mbps(mb_per_s: f64) -> Self {
        Bandwidth(mb_per_s * 1_000_000.0)
    }

    /// Bandwidth in bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Bandwidth in megabytes per second.
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// Time needed to transmit `bytes` at this bandwidth.
    ///
    /// Returns [`Duration::ZERO`] for non-positive bandwidths to avoid
    /// divisions by zero in degenerate configurations; callers that care
    /// should validate the bandwidth separately.
    #[inline]
    pub fn transmit_time(self, bytes: Bytes) -> Duration {
        if self.0 <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 / self.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}MB/s", self.as_mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_roundtrip() {
        let r = RequestId::from(42usize);
        assert_eq!(r.index(), 42);
        assert_eq!(r, RequestId(42));
        assert_eq!(r.to_string(), "q42");
    }

    #[test]
    fn block_ref_ordering_groups_by_request() {
        let a = BlockRef::new(RequestId(1), 5);
        let b = BlockRef::new(RequestId(2), 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "q1[5]");
    }

    #[test]
    fn time_conversions() {
        assert_eq!(Time::from_millis(3).as_micros(), 3_000);
        assert_eq!(Time::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(Time::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(Time::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, Time::from_millis(15));
        assert_eq!(t - Time::from_millis(10), Duration::from_millis(5));
        assert_eq!(
            Time::from_millis(1).saturating_sub(Time::from_millis(5)),
            Duration::ZERO
        );
        let mut t2 = Time::ZERO;
        t2 += Duration::from_micros(7);
        assert_eq!(t2.as_micros(), 7);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_millis(2) + Duration::from_micros(500);
        assert_eq!(d.as_micros(), 2_500);
        assert_eq!((d - Duration::from_micros(500)).as_millis_f64(), 2.0);
        assert_eq!(Duration::from_millis(3).mul(4), Duration::from_millis(12));
    }

    #[test]
    fn bandwidth_transmit_time() {
        let bw = Bandwidth::from_mbps(10.0);
        assert!((bw.as_mbps() - 10.0).abs() < 1e-9);
        // 1 MB at 10 MB/s takes 100 ms.
        let d = bw.transmit_time(1_000_000);
        assert_eq!(d.as_micros(), 100_000);
        // Degenerate bandwidth does not panic.
        assert_eq!(Bandwidth(0.0).transmit_time(100), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_millis(1).to_string(), "1.000ms");
        assert_eq!(Duration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(Bandwidth::from_mbps(5.625).to_string(), "5.62MB/s");
    }
}
