//! Runtime invariant auditor (the `audit` cargo feature).
//!
//! The in-tree parity proptests catch determinism bugs *end to end*: a seed
//! draws a different block and the whole 256-case suite fails.  The auditor
//! attacks the same invariants from inside, at configurable sampling
//! frequency, and **localizes** a violation to the exact Fenwick node, bucket
//! coefficient, or schedule slot instead of a failed end-to-end assert:
//!
//! * **Fenwick sums** — every tree node re-summed against the stored values,
//!   plus the positive-entry counter (the phantom-total defense).
//! * **Bucket coefficients** — each materialized request's sampler weight
//!   re-derived from the model's tails (`coef × shape factor`), each bucket's
//!   factor against the model's shape vector.
//! * **Slot alignment** — schedule log, eviction log, and ring-size
//!   invariants, promoted from the scheduler's scattered `debug_assert!`s
//!   into counted checks that *report* instead of aborting.
//! * **Diff signature** — after a diff-applied prediction update, the diffed
//!   model shadow-compared against a from-scratch rebuild.
//!
//! Everything in this module is compiled only with `--features audit`; with
//! the feature off the scheduler carries no auditor field and no hook code,
//! so the overhead is exactly zero.
//!
//! See `docs/ANALYSIS.md` for how to run the auditor locally.

use crate::types::RequestId;

/// The four invariant families the auditor verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditCheck {
    /// Fenwick subtree sums vs. brute-force recomputation.
    FenwickSums,
    /// Bucket coefficient × shared-shape-vector consistency vs. the model's
    /// materialized tails.
    BucketCoefficients,
    /// Schedule/eviction-log slot alignment and ring-size invariants.
    SlotAlignment,
    /// Diff-path model vs. a from-scratch rebuild after `apply_update`.
    DiffSignature,
}

impl AuditCheck {
    /// All checks, in report order.
    pub const ALL: [AuditCheck; 4] = [
        AuditCheck::FenwickSums,
        AuditCheck::BucketCoefficients,
        AuditCheck::SlotAlignment,
        AuditCheck::DiffSignature,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AuditCheck::FenwickSums => "fenwick_sums",
            AuditCheck::BucketCoefficients => "bucket_coefficients",
            AuditCheck::SlotAlignment => "slot_alignment",
            AuditCheck::DiffSignature => "diff_signature",
        }
    }

    fn idx(self) -> usize {
        match self {
            AuditCheck::FenwickSums => 0,
            AuditCheck::BucketCoefficients => 1,
            AuditCheck::SlotAlignment => 2,
            AuditCheck::DiffSignature => 3,
        }
    }
}

/// Sampling frequencies for the auditor's shadow checks.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Run the structural checks every `block_every` scheduled blocks
    /// (`1` = every block, `0` disables the per-block checks).
    pub block_every: u64,
    /// Run the post-update checks (including the expensive shadow rebuild of
    /// the diff-signature check) every `update_every` prediction updates
    /// (`0` disables them).
    pub update_every: u64,
    /// How many violations to retain verbatim in the report (counters keep
    /// counting past the cap).
    pub max_recorded: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            block_every: 64,
            update_every: 4,
            max_recorded: 32,
        }
    }
}

impl AuditConfig {
    /// Check on every block and every update — what the regression tests use.
    pub fn every_event() -> Self {
        AuditConfig {
            block_every: 1,
            update_every: 1,
            ..Self::default()
        }
    }
}

/// One localized invariant violation.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// Which invariant family failed.
    pub check: AuditCheck,
    /// Schedule slot the violation localizes to, when applicable.
    pub slot: Option<usize>,
    /// Request the violation localizes to, when applicable.
    pub request: Option<RequestId>,
    /// Human-readable specifics (tree/node, expected vs. stored, ...).
    pub detail: String,
}

/// Machine-readable audit outcome: per-check run/violation counters plus a
/// capped list of recorded violations.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Total auditor hook invocations (blocks + updates seen, checked or
    /// not).
    pub events: u64,
    runs: [u64; 4],
    violations: [u64; 4],
    recorded: Vec<AuditViolation>,
    max_recorded: usize,
}

impl AuditReport {
    fn new(max_recorded: usize) -> Self {
        AuditReport {
            events: 0,
            runs: [0; 4],
            violations: [0; 4],
            recorded: Vec::new(),
            max_recorded,
        }
    }

    /// Times `check` ran.
    pub fn runs(&self, check: AuditCheck) -> u64 {
        self.runs[check.idx()]
    }

    /// Violations `check` found (counted past the recording cap).
    pub fn violations_of(&self, check: AuditCheck) -> u64 {
        self.violations[check.idx()]
    }

    /// Total violations across all checks.
    pub fn total_violations(&self) -> u64 {
        self.violations.iter().sum()
    }

    /// The retained violations (first `max_recorded`).
    pub fn recorded(&self) -> &[AuditViolation] {
        &self.recorded
    }

    pub(crate) fn begin(&mut self, check: AuditCheck) {
        self.runs[check.idx()] += 1;
    }

    pub(crate) fn record(&mut self, violation: AuditViolation) {
        self.violations[violation.check.idx()] += 1;
        if self.recorded.len() < self.max_recorded {
            self.recorded.push(violation);
        }
    }

    /// Serializes the report as JSON (hand-rolled: the workspace has no
    /// serde, per the offline vendored-stub policy).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"events\":");
        s.push_str(&self.events.to_string());
        s.push_str(",\"total_violations\":");
        s.push_str(&self.total_violations().to_string());
        s.push_str(",\"checks\":[");
        for (i, check) in AuditCheck::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"check\":\"");
            s.push_str(check.name());
            s.push_str("\",\"runs\":");
            s.push_str(&self.runs(*check).to_string());
            s.push_str(",\"violations\":");
            s.push_str(&self.violations_of(*check).to_string());
            s.push('}');
        }
        s.push_str("],\"recorded\":[");
        for (i, v) in self.recorded.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"check\":\"");
            s.push_str(v.check.name());
            s.push_str("\",\"slot\":");
            match v.slot {
                Some(slot) => s.push_str(&slot.to_string()),
                None => s.push_str("null"),
            }
            s.push_str(",\"request\":");
            match v.request {
                Some(r) => s.push_str(&r.index().to_string()),
                None => s.push_str("null"),
            }
            s.push_str(",\"detail\":\"");
            json_escape_into(&mut s, &v.detail);
            s.push_str("\"}");
        }
        s.push_str("]}");
        s
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// The auditor a scheduler carries when attached: frequency gating plus the
/// accumulating report.  The scheduler drives it from its block/update hooks;
/// the checks themselves live next to the state they inspect
/// (`GreedyScheduler`'s audit impl).
#[derive(Debug, Clone)]
pub struct SamplerAuditor {
    cfg: AuditConfig,
    /// Accumulated counters and violations.
    pub report: AuditReport,
    blocks_seen: u64,
    updates_seen: u64,
    diffs_seen: u64,
}

impl SamplerAuditor {
    /// Creates an auditor with the given sampling frequencies.
    pub fn new(cfg: AuditConfig) -> Self {
        let report = AuditReport::new(cfg.max_recorded);
        SamplerAuditor {
            cfg,
            report,
            blocks_seen: 0,
            updates_seen: 0,
            diffs_seen: 0,
        }
    }

    /// Registers a scheduled block; true when the per-block checks should
    /// run now.
    pub fn tick_block(&mut self) -> bool {
        self.report.events += 1;
        self.blocks_seen += 1;
        self.cfg.block_every > 0 && self.blocks_seen.is_multiple_of(self.cfg.block_every)
    }

    /// Registers a prediction update; true when the post-update checks
    /// should run now.
    pub fn tick_update(&mut self) -> bool {
        self.report.events += 1;
        self.updates_seen += 1;
        self.cfg.update_every > 0 && self.updates_seen.is_multiple_of(self.cfg.update_every)
    }

    /// Registers a diff-applied prediction update; true when the
    /// diff-signature shadow rebuild should run now.  Counted separately
    /// from [`SamplerAuditor::tick_update`] (which already logged the event)
    /// so the expensive shadow check samples the *diff-applied* updates at
    /// `update_every` instead of hoping the two cadences coincide.
    pub fn tick_diff(&mut self) -> bool {
        self.diffs_seen += 1;
        self.cfg.update_every > 0 && self.diffs_seen.is_multiple_of(self.cfg.update_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_caps() {
        let mut a = SamplerAuditor::new(AuditConfig {
            block_every: 2,
            update_every: 1,
            max_recorded: 1,
        });
        assert!(!a.tick_block());
        assert!(a.tick_block());
        assert!(a.tick_update());
        a.report.begin(AuditCheck::FenwickSums);
        a.report.record(AuditViolation {
            check: AuditCheck::FenwickSums,
            slot: None,
            request: None,
            detail: "node 3".into(),
        });
        a.report.record(AuditViolation {
            check: AuditCheck::SlotAlignment,
            slot: Some(7),
            request: None,
            detail: "len \"mismatch\"".into(),
        });
        assert_eq!(a.report.events, 3);
        assert_eq!(a.report.runs(AuditCheck::FenwickSums), 1);
        assert_eq!(a.report.total_violations(), 2);
        assert_eq!(a.report.recorded().len(), 1, "cap respected");
        let json = a.report.to_json();
        assert!(json.contains("\"total_violations\":2"), "{json}");
        assert!(json.contains("\"check\":\"slot_alignment\",\"runs\":0"));
        assert!(json.contains("\\\"mismatch\\\"") || json.contains("node 3"));
    }
}
