//! Deterministic fault injection for the transport and sim layers.
//!
//! A [`FaultPlan`] is a seeded schedule of faults keyed by `(lane, index)`:
//! for the transport the lane is the connection's accept-order index and the
//! index counts outbound frames on that connection; for the simulator the
//! lane is the session index and the index counts uplink messages. Keeping
//! the plan in `khameleon-core` lets both layers share one grammar without a
//! dependency cycle, and keying by logical indices (never wall-clock time)
//! keeps every injected failure reproducible from the seed alone.

/// What to do to a frame (or message) when its `(lane, index)` key matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently discard the frame.
    Drop,
    /// Deliver the frame, but `ticks` logical steps late. The transport
    /// treats a delay as a stall of the flush path; the simulator adds
    /// `ticks` microseconds of extra propagation.
    Delay {
        /// How many logical steps (microseconds in the sim) to delay by.
        ticks: u64,
    },
    /// Deliver only the first `keep` bytes of the encoded frame.
    Truncate {
        /// How many leading bytes survive.
        keep: usize,
    },
    /// XOR the byte at `offset % len` with `xor` (never zero), producing a
    /// corrupt but well-framed payload the strict decoder must reject.
    Corrupt {
        /// Byte position to flip, reduced modulo the frame length.
        offset: usize,
        /// XOR mask applied to the byte (use a non-zero mask).
        xor: u8,
    },
    /// Freeze the lane for `ticks` logical steps before sending anything
    /// further (models a stalled peer rather than a lossy link).
    Stall {
        /// How many logical steps the lane stays frozen.
        ticks: u64,
    },
}

/// One scheduled fault: apply `kind` to frame `frame` of lane `lane`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which lane (connection accept index / session index) is affected.
    pub lane: usize,
    /// Which frame (outbound frame index / uplink message index) on the lane.
    pub frame: u64,
    /// What happens to the matched frame.
    pub kind: FaultKind,
}

/// A deterministic schedule of [`FaultEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan: every lookup misses.
    pub fn new() -> Self {
        FaultPlan {
            events: Vec::new(),
            seed: 0,
        }
    }

    /// Add one explicit fault. Builder-style, so plans read as literals:
    /// `FaultPlan::new().with(0, 3, FaultKind::Drop)`.
    pub fn with(mut self, lane: usize, frame: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { lane, frame, kind });
        self
    }

    /// Generate `count` pseudo-random faults over `lanes` lanes and frame
    /// indices `0..frame_span`, drawn from `kinds` — fully determined by
    /// `seed` via splitmix64 (no `rand` dependency, lint-clean everywhere).
    pub fn seeded(
        seed: u64,
        count: usize,
        lanes: usize,
        frame_span: u64,
        kinds: &[FaultKind],
    ) -> Self {
        let mut plan = FaultPlan {
            events: Vec::with_capacity(count),
            seed,
        };
        if lanes == 0 || frame_span == 0 || kinds.is_empty() {
            return plan;
        }
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(state)
        };
        for _ in 0..count {
            let lane = (next() % lanes as u64) as usize;
            let frame = next() % frame_span;
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            plan.events.push(FaultEvent { lane, frame, kind });
        }
        plan
    }

    /// The fault (if any) scheduled for frame `frame` of lane `lane`.
    /// First match wins; plans are small, linear scan is fine.
    pub fn lookup(&self, lane: usize, frame: u64) -> Option<FaultKind> {
        self.events
            .iter()
            .find(|e| e.lane == lane && e.frame == frame)
            .map(|e| e.kind)
    }

    /// All scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The seed this plan was built from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// The splitmix64 finalizer: a cheap bijective mixer used for deterministic
/// jitter, resume tokens, and seeded fault schedules. Being a bijection on
/// `u64` means distinct inputs (e.g. globally unique session ids) always
/// produce distinct outputs — resume tokens need no collision handling.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_matches_only_its_keys() {
        let plan = FaultPlan::new().with(0, 3, FaultKind::Drop).with(
            1,
            0,
            FaultKind::Truncate { keep: 2 },
        );
        assert_eq!(plan.lookup(0, 3), Some(FaultKind::Drop));
        assert_eq!(plan.lookup(1, 0), Some(FaultKind::Truncate { keep: 2 }));
        assert_eq!(plan.lookup(0, 0), None);
        assert_eq!(plan.lookup(2, 3), None);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let kinds = [
            FaultKind::Drop,
            FaultKind::Corrupt {
                offset: 5,
                xor: 0xff,
            },
        ];
        let a = FaultPlan::seeded(42, 16, 4, 100, &kinds);
        let b = FaultPlan::seeded(42, 16, 4, 100, &kinds);
        let c = FaultPlan::seeded(43, 16, 4, 100, &kinds);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        for e in a.events() {
            assert!(e.lane < 4);
            assert!(e.frame < 100);
            assert!(kinds.contains(&e.kind));
        }
    }

    #[test]
    fn degenerate_seeded_inputs_yield_empty_plans() {
        assert!(FaultPlan::seeded(1, 8, 0, 10, &[FaultKind::Drop]).is_empty());
        assert!(FaultPlan::seeded(1, 8, 4, 0, &[FaultKind::Drop]).is_empty());
        assert!(FaultPlan::seeded(1, 8, 4, 10, &[]).is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn splitmix64_is_deterministic_and_injective_on_small_range() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..4096u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
        assert_eq!(splitmix64(7), splitmix64(7));
    }
}
