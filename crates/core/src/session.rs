//! Multi-client sessions: per-client scheduling state multiplexed over one
//! shared backend and one shared bandwidth budget.
//!
//! The paper's server is a multiplexer: every connected client gets its own
//! scheduler, server-side predictor, and simulated cache, while the backend
//! and the outgoing link are shared resources that must be divided between
//! clients (§3.2, §5.4).  This module provides that layer:
//!
//! * [`Session`] — everything private to one client: a boxed
//!   [`Scheduler`], a [`ServerPredictor`], the bandwidth/rate state, the
//!   sender queue, and the per-request sent bookkeeping.
//! * [`SessionManager`] — owns N sessions plus the shared
//!   [`Backend`](crate::server::Backend), and on every call to
//!   [`next_event`](SessionManager::next_event) asks its [`SharePolicy`]
//!   which session's block goes on the wire next.
//! * [`SharePolicy`] — pluggable arbitration.  [`RoundRobin`] alternates
//!   between sessions with work; [`WeightedFair`] divides the link in
//!   proportion to per-session weights.
//!
//! A single-client [`KhameleonServer`](crate::server::KhameleonServer) is a
//! thin wrapper over one `Session` and one backend, so both deployments run
//! exactly the same scheduling code.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::bandwidth::BandwidthEstimator;
use crate::block::{BlockMeta, ResponseCatalog};
use crate::delta::{PredictionDelta, ShadowApply, ShadowSummary};
use crate::distribution::PredictionSummary;
use crate::predictor::simple::SimpleServerPredictor;
use crate::predictor::{PredictorState, ServerPredictor};
use crate::protocol::{ClientMessage, ServerEvent, SessionId};
use crate::scheduler::{
    limit_distinct_requests, GreedyContext, GreedyScheduler, ModelCache, Scheduler,
};
use crate::server::{Backend, ServerConfig};
use crate::types::{Bandwidth, BlockRef, Duration, RequestId, Time};
use crate::utility::UtilityModel;

/// Per-client server state: scheduler, predictor, bandwidth, sender queue.
///
/// A `Session` never touches the backend or the wire itself — it yields
/// [`BlockRef`]s through [`next_block_ref`](Session::next_block_ref) and is
/// told what actually went out via [`commit`](Session::commit).  That split
/// is what lets the [`SessionManager`] arbitrate a shared link between many
/// sessions.
pub struct Session {
    scheduler: Box<dyn Scheduler>,
    predictor: Box<dyn ServerPredictor>,
    catalog: Arc<ResponseCatalog>,
    bandwidth: BandwidthEstimator,
    queue: VecDeque<BlockRef>,
    queue_target: usize,
    /// Blocks of the current schedule already handed to the network.
    sent_in_schedule: usize,
    /// Blocks sent per request, used to continue prefixes when the backend
    /// concurrency limit rewrites schedules (§5.4).  Pruned on schedule
    /// wrap so long-running sessions do not accumulate dead entries.
    sent_per_request: HashMap<RequestId, u32>,
    blocks_sent: u64,
    bytes_sent: u64,
    weight: f64,
    /// Virtual-time anchor set by the [`SessionManager`] when this session
    /// joins: fair-queueing policies see `blocks_sent + service_base`, so a
    /// late joiner starts at the wire's current service level.
    service_base: u64,
    /// Server-side mirror of the client's last full prediction summary,
    /// patched in place by [`ClientMessage::PredictorDelta`]s (see
    /// [`crate::delta`]).  Empty until the client sends a
    /// [`ClientMessage::PredictorFull`].
    shadow: ShadowSummary,
    /// Prediction updates that arrived as deltas and were applied.
    delta_updates: u64,
    /// Deltas refused (generation mismatch / malformed), each answered with
    /// a resync request.
    resync_requests: u64,
    closed: bool,
    /// Memo that the last unconstrained [`next_block_ref`] returned `None`
    /// and nothing has since arrived that could create work.  The manager
    /// skips exhausted sessions when building arbitration candidates, so a
    /// mostly-drained fleet costs `O(live)` per block instead of the
    /// policy re-picking (and re-snapshotting) every drained session —
    /// at 10k sessions that tail was quadratic.  Cleared by every protocol
    /// message and every slot-duration change (the only inputs that can
    /// re-open a drained scheduler); never set under a backend concurrency
    /// limit, whose per-candidate allowance split must see the full set.
    ///
    /// [`next_block_ref`]: Session::next_block_ref
    exhausted: bool,
}

/// What a protocol message did to the session, as far as the caller's event
/// stream is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageOutcome {
    /// The message was absorbed; no client-visible event is needed.
    Handled,
    /// A prediction delta could not be applied (generation mismatch or
    /// malformed): the client must resend a full summary.  Transports
    /// surface this as [`ServerEvent::Resync`].
    NeedsResync,
}

impl Session {
    /// Starts building a session for the given utility model and catalog.
    pub fn builder(utility: UtilityModel, catalog: Arc<ResponseCatalog>) -> SessionBuilder {
        SessionBuilder::new(utility, catalog)
    }

    /// Handles one protocol message from this session's client.
    pub fn on_message(&mut self, message: &ClientMessage, now: Time) -> MessageOutcome {
        self.exhausted = false;
        match message {
            ClientMessage::Predictor(state) => {
                self.on_predictor_state(state, now);
                MessageOutcome::Handled
            }
            ClientMessage::PredictorFull {
                generation,
                summary,
            } => {
                self.on_predictor_full(*generation, summary);
                MessageOutcome::Handled
            }
            ClientMessage::PredictorDelta(delta) => self.on_predictor_delta(delta),
            ClientMessage::RateReport(rate) => {
                self.on_rate_report(*rate);
                MessageOutcome::Handled
            }
            ClientMessage::Close => {
                self.closed = true;
                MessageOutcome::Handled
            }
        }
    }

    /// Decodes a predictor-state message and re-plans the unsent tail of the
    /// schedule (§5.3.2).
    pub fn on_predictor_state(&mut self, state: &PredictorState, now: Time) {
        let summary = self.predictor.decode(state, now);
        // Opaque predictor states and deltas must not interleave: the shadow
        // no longer matches any client-side generation, so force a resync if
        // the client switches back to the delta path.
        self.shadow.clear();
        // Queued (scheduled but unsent) blocks are rolled back and re-planned.
        self.queue.clear();
        self.scheduler
            .update_prediction(&summary, self.sent_in_schedule);
    }

    /// Installs a full prediction summary at `generation` as the delta base
    /// and re-plans the unsent tail of the schedule.
    pub fn on_predictor_full(&mut self, generation: u64, summary: &PredictionSummary) {
        self.shadow.install(generation, summary.clone());
        self.queue.clear();
        self.scheduler
            .update_prediction(summary, self.sent_in_schedule);
    }

    /// Applies a prediction delta against the shadow summary and re-plans
    /// through the sparse scheduler path (`O(Δ)` — no signature scan).
    /// Returns [`MessageOutcome::NeedsResync`] if the delta's base
    /// generation does not match the shadow, leaving the schedule running
    /// on the last applied prediction.
    pub fn on_predictor_delta(&mut self, delta: &PredictionDelta) -> MessageOutcome {
        let this = &mut *self;
        match this.shadow.apply(delta) {
            Ok(ShadowApply::Sparse { summary, changes }) => {
                this.queue.clear();
                this.scheduler
                    .update_prediction_sparse(summary, &changes, this.sent_in_schedule);
                this.delta_updates += 1;
                MessageOutcome::Handled
            }
            Ok(ShadowApply::Full { summary }) => {
                // Applied, but the changed-set could not be certified
                // complete (partial-mask signatures shifted): full scan.
                this.queue.clear();
                this.scheduler
                    .update_prediction(summary, this.sent_in_schedule);
                this.delta_updates += 1;
                MessageOutcome::Handled
            }
            Err(_) => {
                this.resync_requests += 1;
                MessageOutcome::NeedsResync
            }
        }
    }

    /// Applies a receive-rate report to this session's bandwidth estimate
    /// (§5.4) and re-calibrates the scheduler's slot duration.
    pub fn on_rate_report(&mut self, rate: Bandwidth) {
        self.bandwidth.report_rate(rate);
        self.scheduler
            .set_slot_duration(self.bandwidth.slot_duration(self.max_block_size()));
    }

    /// Whether the client asked to close this session.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// The next block reference the sender should push for this session, or
    /// `None` when nothing useful remains.  `concurrency_limit` is the shared
    /// backend's limit, applied when the sender queue is refilled.
    pub fn next_block_ref(&mut self, concurrency_limit: Option<usize>) -> Option<BlockRef> {
        if self.closed {
            self.exhausted = true;
            return None;
        }
        if self.queue.is_empty() {
            // A zero allowance means "not this round": don't pull a batch
            // from the scheduler only to throw it away (the scheduler's
            // simulated cache would count the discarded blocks as sent).
            if concurrency_limit == Some(0) {
                return None;
            }
            self.refill_queue(concurrency_limit);
        }
        let block = self.queue.pop_front();
        if block.is_none() && concurrency_limit.is_none() {
            self.exhausted = true;
        }
        block
    }

    /// Records that `meta` was placed on the wire: advances the sender
    /// position, updates per-request counters, and prunes stale bookkeeping
    /// when the schedule wraps.
    pub fn commit(&mut self, meta: &BlockMeta) {
        self.scheduler.note_sent(meta.block);
        self.sent_in_schedule += 1;
        if self.sent_in_schedule >= self.scheduler.horizon() {
            // The schedule wrapped: the scheduler reset its own per-schedule
            // state when it crossed the boundary; realign the sender position
            // and drop `sent_per_request` entries for requests no longer
            // resident in the simulated cache (their prefixes restart, so
            // stale counts would both leak memory and skew backfill offsets).
            self.sent_in_schedule = 0;
            let resident = self.scheduler.simulated_cache();
            if resident.is_empty() {
                // The scheduler does not track the client cache (or holds
                // nothing): pruning against residency would wipe every
                // backfill offset.  Drop only fully-pushed requests.
                let catalog = self.catalog.clone();
                self.sent_per_request
                    .retain(|r, c| *c < catalog.num_blocks(*r));
            } else {
                self.sent_per_request
                    .retain(|r, _| resident.contains_key(r));
            }
        }
        *self.sent_per_request.entry(meta.block.request).or_insert(0) += 1;
        self.blocks_sent += 1;
        self.bytes_sent += meta.size;
    }

    fn refill_queue(&mut self, concurrency_limit: Option<usize>) {
        if self.queue.len() >= self.queue_target {
            return;
        }
        let want = self.queue_target - self.queue.len();
        let mut batch = self.scheduler.next_batch(want);
        if let Some(limit) = concurrency_limit {
            let catalog = self.catalog.clone();
            batch = limit_distinct_requests(
                &batch,
                limit,
                |r| catalog.num_blocks(r),
                &self.sent_per_request,
            );
        }
        self.queue.extend(batch);
    }

    fn max_block_size(&self) -> u64 {
        self.catalog.max_block_size().max(1)
    }

    /// The current bandwidth estimate for this session's downlink.
    pub fn bandwidth_estimate(&self) -> Bandwidth {
        self.bandwidth.estimate()
    }

    /// Time the sender should wait between blocks to pace this session at
    /// its estimated bandwidth.
    pub fn pacing_interval(&self) -> Duration {
        self.bandwidth.slot_duration(self.max_block_size())
    }

    /// Directly re-calibrates the scheduler's slot duration (used by the
    /// manager when dividing shared bandwidth between sessions).
    pub fn set_slot_duration(&mut self, slot: Duration) {
        self.exhausted = false;
        self.scheduler.set_slot_duration(slot);
    }

    /// The scheduler's view of this client's cache.
    pub fn simulated_cache(&self) -> HashMap<RequestId, u32> {
        self.scheduler.simulated_cache()
    }

    /// Expected utility (Eq. 2) of the pending schedule from the cache state
    /// `initial`.
    pub fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        self.scheduler.expected_utility(initial)
    }

    /// Total blocks sent on behalf of this session.
    pub fn blocks_sent(&self) -> u64 {
        self.blocks_sent
    }

    /// Total bytes sent on behalf of this session.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Prediction updates that arrived as deltas and were applied (sparse
    /// or full path; see [`crate::delta`]).
    pub fn delta_updates(&self) -> u64 {
        self.delta_updates
    }

    /// Deltas refused with a resync request (generation mismatch or
    /// malformed payload).
    pub fn resync_requests(&self) -> u64 {
        self.resync_requests
    }

    /// The generation of the installed shadow summary, if a
    /// [`ClientMessage::PredictorFull`] has been applied.
    pub fn shadow_generation(&self) -> Option<u64> {
        self.shadow.generation()
    }

    /// Number of prediction updates the scheduler has applied.
    pub fn prediction_updates(&self) -> u64 {
        self.scheduler.prediction_updates()
    }

    /// Prediction updates the scheduler absorbed as a model diff instead of
    /// a full rebuild (see [`Scheduler::diff_applied_updates`]).
    pub fn diff_applied_updates(&self) -> u64 {
        self.scheduler.diff_applied_updates()
    }

    /// Sender-ahead gap slots the scheduler's per-update cap rejected (see
    /// [`Scheduler::rejected_gap_slots`]).
    pub fn rejected_gap_slots(&self) -> u64 {
        self.scheduler.rejected_gap_slots()
    }

    /// Live weight entries resident in the scheduler's sampler (see
    /// [`Scheduler::sampler_entries`]).
    pub fn sampler_entries(&self) -> usize {
        self.scheduler.sampler_entries()
    }

    /// The scheduler driving this session.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Attaches a runtime invariant auditor to the scheduler (no-op for
    /// schedulers without audit support; see [`crate::audit`]).
    #[cfg(feature = "audit")]
    pub fn audit_attach(&mut self, cfg: crate::audit::AuditConfig) {
        self.scheduler.audit_attach(cfg);
    }

    /// The scheduler's accumulated audit report, when an auditor is
    /// attached.
    #[cfg(feature = "audit")]
    pub fn audit_report(&self) -> Option<crate::audit::AuditReport> {
        self.scheduler.audit_report()
    }

    /// The share weight used by weighted policies.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The fair-queueing service counter: blocks sent plus the virtual-time
    /// anchor assigned when this session joined its manager.
    pub fn service(&self) -> u64 {
        self.blocks_sent + self.service_base
    }

    /// Number of requests currently tracked in the per-request sent map
    /// (diagnostic; exercised by the pruning tests).
    pub fn tracked_requests(&self) -> usize {
        self.sent_per_request.len()
    }

    /// The catalog this session serves from.
    pub fn catalog(&self) -> &Arc<ResponseCatalog> {
        &self.catalog
    }
}

/// Fluent constructor for [`Session`]s (and, via
/// [`ServerBuilder`](crate::server::ServerBuilder), single-client servers).
pub struct SessionBuilder {
    cfg: ServerConfig,
    utility: UtilityModel,
    catalog: Arc<ResponseCatalog>,
    scheduler: Option<Box<dyn Scheduler>>,
    predictor: Option<Box<dyn ServerPredictor>>,
    /// Shared catalog/utility-derived scheduler context; when absent the
    /// default greedy scheduler derives its own.  [`SessionManager`] fills
    /// this from its per-`(utility, catalog)` cache so N sessions share one
    /// `O(n)` context.
    greedy_context: Option<Arc<GreedyContext>>,
    /// Shared prediction-model dedup registry; when present, the default
    /// greedy scheduler resolves full model builds through it so sessions
    /// with bit-identical predictions share one `HorizonModel`.
    /// [`SessionManager`] fills this from its own cache.
    model_cache: Option<Arc<ModelCache>>,
    weight: f64,
}

impl SessionBuilder {
    /// Starts a builder with default configuration: greedy scheduler, simple
    /// server predictor, unit share weight.
    pub fn new(utility: UtilityModel, catalog: Arc<ResponseCatalog>) -> Self {
        SessionBuilder {
            cfg: ServerConfig::default(),
            utility,
            catalog,
            scheduler: None,
            predictor: None,
            greedy_context: None,
            model_cache: None,
            weight: 1.0,
        }
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: ServerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Uses a custom scheduler instead of the default [`GreedyScheduler`].
    pub fn scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Uses a custom server-side predictor component instead of the default
    /// [`SimpleServerPredictor`].
    pub fn predictor(mut self, predictor: Box<dyn ServerPredictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Reuses a shared [`GreedyContext`] (derived from the same utility
    /// model and catalog) for the default greedy scheduler instead of
    /// deriving a per-session copy.
    pub fn greedy_context(mut self, ctx: Arc<GreedyContext>) -> Self {
        self.greedy_context = Some(ctx);
        self
    }

    /// Resolves the default greedy scheduler's full model rebuilds through a
    /// shared [`ModelCache`], deduplicating `HorizonModel`s across sessions
    /// with bit-identical predictions (see [`crate::scheduler::dedup`]).
    pub fn model_cache(mut self, cache: Arc<ModelCache>) -> Self {
        self.model_cache = Some(cache);
        self
    }

    /// Caps this session's bandwidth estimate.
    pub fn bandwidth_cap(mut self, cap: Bandwidth) -> Self {
        self.cfg.bandwidth_cap = Some(cap);
        self
    }

    /// Sets the initial bandwidth estimate used before rate reports arrive.
    pub fn initial_bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.cfg.initial_bandwidth = bandwidth;
        self
    }

    /// Sets the share weight used by weighted fair policies (default 1.0).
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "session weight must be positive");
        self.weight = weight;
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        let SessionBuilder {
            cfg,
            utility,
            catalog,
            scheduler,
            predictor,
            greedy_context,
            model_cache,
            weight,
        } = self;
        let mut bandwidth = BandwidthEstimator::new(cfg.initial_bandwidth);
        bandwidth.set_cap(cfg.bandwidth_cap);
        let slot = bandwidth.slot_duration(catalog.max_block_size().max(1));
        let scheduler = match scheduler {
            Some(mut s) => {
                s.set_slot_duration(slot);
                s
            }
            None => {
                let mut scheduler_cfg = cfg.scheduler.clone();
                scheduler_cfg.slot_duration = slot;
                let ctx = greedy_context
                    .unwrap_or_else(|| Arc::new(GreedyContext::new(&utility, &catalog)));
                let mut greedy =
                    GreedyScheduler::with_context(scheduler_cfg, utility, catalog.clone(), ctx);
                if let Some(cache) = model_cache {
                    greedy.attach_model_cache(cache);
                }
                Box::new(greedy)
            }
        };
        let predictor = predictor
            .unwrap_or_else(|| Box::new(SimpleServerPredictor::new(catalog.num_requests())));
        Session {
            scheduler,
            predictor,
            catalog,
            bandwidth,
            queue: VecDeque::new(),
            queue_target: cfg.sender_queue_target.max(1),
            sent_in_schedule: 0,
            sent_per_request: HashMap::new(),
            blocks_sent: 0,
            bytes_sent: 0,
            weight,
            service_base: 0,
            shadow: ShadowSummary::new(),
            delta_updates: 0,
            resync_requests: 0,
            closed: false,
            exhausted: false,
        }
    }
}

/// A session's public share state, as seen by a [`SharePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionShare {
    /// The session's id.
    pub session: SessionId,
    /// The session's share weight.
    pub weight: f64,
    /// Blocks sent on behalf of this session so far.
    pub blocks_sent: u64,
    /// Service counter for fair-queueing policies: `blocks_sent` plus the
    /// virtual-time anchor assigned when the session joined, so late joiners
    /// start at the current service level instead of monopolizing the wire
    /// until their lifetime count catches up.
    pub service: u64,
}

/// Decides which session's block goes on the wire next.
///
/// `ready` lists the sessions that may still have work, in ascending id
/// order; the policy returns an index into `ready`.  The manager calls the
/// policy again (with the exhausted session removed) if the chosen session
/// turns out to have nothing to send.
pub trait SharePolicy: Send {
    /// Picks the next session to serve, as an index into `ready`.
    fn pick(&mut self, ready: &[SessionShare]) -> Option<usize>;

    /// Name used in logs and experiment reports.
    fn name(&self) -> &'static str {
        "share-policy"
    }
}

/// Serves sessions in rotation, skipping those without work.
#[derive(Debug, Default)]
pub struct RoundRobin {
    last: Option<SessionId>,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl SharePolicy for RoundRobin {
    fn pick(&mut self, ready: &[SessionShare]) -> Option<usize> {
        if ready.is_empty() {
            return None;
        }
        let idx = match self.last {
            Some(last) => ready.iter().position(|s| s.session > last).unwrap_or(0),
            None => 0,
        };
        self.last = Some(ready[idx].session);
        Some(idx)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Divides the link in proportion to session weights: always serves the
/// session with the lowest weighted service so far (`service / weight`,
/// where `service` is anchored at the wire's virtual time when the session
/// joins), i.e. a virtual-time weighted-fair queueing discipline at block
/// granularity.
#[derive(Debug, Default)]
pub struct WeightedFair;

impl WeightedFair {
    /// Creates the policy.
    pub fn new() -> Self {
        WeightedFair
    }
}

impl SharePolicy for WeightedFair {
    fn pick(&mut self, ready: &[SessionShare]) -> Option<usize> {
        ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let va = (a.service + 1) as f64 / a.weight.max(f64::EPSILON);
                let vb = (b.service + 1) as f64 / b.weight.max(f64::EPSILON);
                va.partial_cmp(&vb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.session.cmp(&b.session))
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "weighted-fair"
    }
}

/// Multiplexes N client sessions over one shared backend and one shared
/// bandwidth budget.
///
/// Each call to [`next_event`](SessionManager::next_event) produces at most
/// one block — the manager is the single point where the shared link is
/// allocated, so the policy's choice *is* the bandwidth split.  Incoming
/// protocol messages are routed to their session with
/// [`on_message`](SessionManager::on_message); rate reports additionally
/// update the shared estimate and re-divide per-session slot durations by
/// weight.
pub struct SessionManager {
    sessions: Vec<(SessionId, Session)>,
    /// Sessions detached from scheduling but kept alive for a resumable
    /// reconnect: `(id, session, expires_at)`.  A parked session holds its
    /// scheduler state, shadow summary, and model-cache refcounts, but is
    /// invisible to arbitration, bandwidth division, and `stats_snapshot`'s
    /// per-session sums until it is resumed or TTL-evicted.
    parked: Vec<(SessionId, Session, Time)>,
    /// How long a parked session survives on the *logical* clock before
    /// [`evict_expired_parks`](Self::evict_expired_parks) reclaims it.
    park_ttl: Duration,
    /// Monotone count of park operations (for
    /// [`ShardSnapshot`](crate::shard::ShardSnapshot)).
    parked_total: u64,
    /// Monotone count of successful resumes (for
    /// [`ShardSnapshot`](crate::shard::ShardSnapshot)).
    resumed_total: u64,
    next_id: u64,
    backend: Box<dyn Backend>,
    policy: Box<dyn SharePolicy>,
    shared_bandwidth: BandwidthEstimator,
    /// One shared [`GreedyContext`] per distinct `(utility, catalog)` pair:
    /// the utility-class catalog and per-request block counts are
    /// session-independent, so N sessions over the same catalog share one
    /// `O(n)` derivation instead of each computing its own.
    context_cache: Vec<(UtilityModel, Arc<ResponseCatalog>, Arc<GreedyContext>)>,
    /// Shared prediction-model dedup registry handed to every
    /// default-scheduler session (see [`crate::scheduler::dedup`]).  Owned
    /// per manager by default; [`set_model_cache`](Self::set_model_cache)
    /// replaces it so shards of a
    /// [`ShardedSessionManager`](crate::shard::ShardedSessionManager) share
    /// one registry across threads.
    model_cache: Arc<ModelCache>,
    /// When set, [`redivide_bandwidth`](Self::redivide_bandwidth) divides by
    /// this weight denominator instead of the local weight sum — under
    /// sharding, the *global* weight sum, so per-session slot durations come
    /// out bit-identical to the single-threaded division.
    weight_denominator: Option<f64>,
    /// When true, rate reports update only their session's estimate; the
    /// shared budget is owned externally (by a shard coordinator) and
    /// arrives via [`set_shared_budget`](Self::set_shared_budget).
    external_budget: bool,
    /// Rotates the backend-concurrency remainder between sessions across
    /// [`next_event`](SessionManager::next_event) calls.
    budget_rotor: usize,
    blocks_sent: u64,
    bytes_sent: u64,
}

impl SessionManager {
    /// Creates a manager over `backend` with the given arbitration policy.
    pub fn new(backend: Box<dyn Backend>, policy: Box<dyn SharePolicy>) -> Self {
        SessionManager {
            sessions: Vec::new(),
            parked: Vec::new(),
            park_ttl: Duration::from_secs(30),
            parked_total: 0,
            resumed_total: 0,
            next_id: 0,
            backend,
            policy,
            shared_bandwidth: BandwidthEstimator::new(ServerConfig::default().initial_bandwidth),
            context_cache: Vec::new(),
            model_cache: ModelCache::new(),
            weight_denominator: None,
            external_budget: false,
            budget_rotor: 0,
            blocks_sent: 0,
            bytes_sent: 0,
        }
    }

    /// Convenience: a manager with [`RoundRobin`] arbitration.
    pub fn round_robin(backend: Box<dyn Backend>) -> Self {
        Self::new(backend, Box::new(RoundRobin::new()))
    }

    /// Convenience: a manager with [`WeightedFair`] arbitration.
    pub fn weighted_fair(backend: Box<dyn Backend>) -> Self {
        Self::new(backend, Box::new(WeightedFair::new()))
    }

    /// Caps the shared outgoing bandwidth budget.
    pub fn with_bandwidth_cap(mut self, cap: Bandwidth) -> Self {
        self.shared_bandwidth.set_cap(Some(cap));
        self.redivide_bandwidth();
        self
    }

    /// Adds a session and returns its id.
    ///
    /// The new session is anchored at the current virtual service time: its
    /// fair-queueing counter starts from the service frontier (the
    /// *most*-served live session's weighted service), so it shares the wire
    /// from the join point onward instead of monopolizing it until its
    /// lifetime count catches up.  The maximum — not the minimum — is used
    /// because an exhausted or idle session's counter freezes below the
    /// frontier and would otherwise drag every later joiner's anchor down
    /// with it; active sessions under fair arbitration all sit within one
    /// block of the frontier anyway.
    pub fn add_session(&mut self, builder: SessionBuilder) -> SessionId {
        let id = SessionId(self.next_id);
        self.add_session_with_id(id, builder)
    }

    /// Adds a session under a caller-chosen id (the sharded coordinator
    /// allocates globally unique ids across shard-local managers).  Panics
    /// if the id is already live; bumps the internal id allocator past `id`
    /// so a later [`add_session`](Self::add_session) cannot collide.
    pub fn add_session_with_id(&mut self, id: SessionId, mut builder: SessionBuilder) -> SessionId {
        assert!(
            !self.sessions.iter().any(|(sid, _)| *sid == id),
            "session id {id} is already live"
        );
        assert!(
            !self.parked.iter().any(|(sid, _, _)| *sid == id),
            "session id {id} is parked"
        );
        self.next_id = self.next_id.max(id.0 + 1);
        if builder.scheduler.is_none() && builder.greedy_context.is_none() {
            builder.greedy_context = Some(self.context_for(&builder.utility, &builder.catalog));
        }
        if builder.scheduler.is_none() && builder.model_cache.is_none() {
            builder.model_cache = Some(self.model_cache.clone());
        }
        let mut session = builder.build();
        let virtual_time = self
            .sessions
            .iter()
            .map(|(_, s)| s.service() as f64 / s.weight().max(f64::EPSILON))
            .fold(f64::NEG_INFINITY, f64::max);
        if virtual_time.is_finite() {
            session.service_base = (virtual_time * session.weight()).floor() as u64;
        }
        self.sessions.push((id, session));
        self.redivide_bandwidth();
        id
    }

    /// The shared scheduler context for `(utility, catalog)`, derived once
    /// and cached by storage identity (`Arc` pointer equality).
    fn context_for(
        &mut self,
        utility: &UtilityModel,
        catalog: &Arc<ResponseCatalog>,
    ) -> Arc<GreedyContext> {
        // Drop entries no scheduler holds any more (only the cache's own
        // Arc left): without this, a server whose clients each bring a
        // fresh catalog Arc would pin every dead context — and its catalog
        // — forever.
        self.context_cache
            .retain(|(_, _, ctx)| Arc::strong_count(ctx) > 1);
        for (u, c, ctx) in &self.context_cache {
            if u.same_tables(utility) && Arc::ptr_eq(c, catalog) {
                return ctx.clone();
            }
        }
        let ctx = Arc::new(GreedyContext::new(utility, catalog));
        self.context_cache
            .push((utility.clone(), catalog.clone(), ctx.clone()));
        ctx
    }

    /// Number of distinct shared scheduler contexts derived so far
    /// (diagnostic; one per distinct `(utility, catalog)` pair).
    pub fn shared_context_count(&self) -> usize {
        self.context_cache.len()
    }

    /// Replaces the prediction-model dedup registry.  Sharded deployments
    /// call this at spawn time so every shard resolves models through one
    /// shared registry; must be called before sessions are added (models
    /// already resolved through the old registry are left untouched).
    pub fn set_model_cache(&mut self, cache: Arc<ModelCache>) {
        self.model_cache = cache;
    }

    /// The prediction-model dedup registry serving this manager's sessions.
    pub fn model_cache(&self) -> &Arc<ModelCache> {
        &self.model_cache
    }

    /// Number of distinct live `HorizonModel`s across this manager's
    /// sessions — under dedup, sublinear in session count.
    pub fn live_models(&self) -> usize {
        self.model_cache.live_models()
    }

    /// Hands ownership of the shared budget to an external coordinator:
    /// rate reports stop feeding this manager's own shared estimate (the
    /// coordinator sees every shard's sessions and pushes the corrected
    /// division via [`set_shared_budget`](Self::set_shared_budget)).
    pub fn set_external_budget(&mut self, external: bool) {
        self.external_budget = external;
    }

    /// Installs an externally computed bandwidth budget: `total` becomes the
    /// shared estimate and, when `weight_denominator` is given, per-session
    /// shares divide by it instead of the local weight sum.  With the global
    /// weight sum as denominator, a shard's division is bit-identical to the
    /// single-threaded manager's (`slot_i = total · w_i / Σ_global w`) —
    /// the foundation of the sharded-vs-single parity guarantee.
    pub fn set_shared_budget(&mut self, total: Bandwidth, weight_denominator: Option<f64>) {
        self.shared_bandwidth.force_estimate(total);
        self.weight_denominator = weight_denominator;
        self.redivide_bandwidth();
    }

    /// Snapshot of this manager's counters in the cross-shard
    /// [`ShardSnapshot`](crate::shard::ShardSnapshot) shape — the shard
    /// worker's reply to a stats request, and equally usable on a
    /// standalone manager.  Counters of already-removed sessions are not
    /// included (identically on both paths).
    pub fn stats_snapshot(&self) -> crate::shard::ShardSnapshot {
        let mut snap = crate::shard::ShardSnapshot {
            sessions: self.sessions.len(),
            blocks_sent: self.blocks_sent,
            bytes_sent: self.bytes_sent,
            shared_context_count: self.context_cache.len(),
            parked_sessions: self.parked_total,
            resumed_sessions: self.resumed_total,
            ..Default::default()
        };
        for (_, session) in &self.sessions {
            snap.prediction_updates += session.prediction_updates();
            snap.diff_applied_updates += session.diff_applied_updates();
            snap.rejected_gap_slots += session.rejected_gap_slots();
            snap.sampler_entries += session.sampler_entries();
            snap.resync_requests += session.resync_requests();
            snap.delta_updates += session.delta_updates();
            #[cfg(feature = "audit")]
            if let Some(report) = session.audit_report() {
                snap.audit_violations += report.total_violations();
            }
        }
        snap
    }

    /// Removes a session.  Returns `true` if it existed.
    pub fn remove_session(&mut self, id: SessionId) -> bool {
        let before = self.sessions.len();
        self.sessions.retain(|(sid, _)| *sid != id);
        let removed = self.sessions.len() != before;
        if removed {
            self.redivide_bandwidth();
        }
        removed
    }

    /// Sets how long a parked session survives on the logical clock before
    /// [`evict_expired_parks`](Self::evict_expired_parks) reclaims it.  A
    /// zero TTL makes every park expire immediately — the deterministic
    /// "park expired" lever for tests.
    pub fn set_park_ttl(&mut self, ttl: Duration) {
        self.park_ttl = ttl;
    }

    /// Detaches session `id` from scheduling without destroying it: the
    /// session keeps its scheduler state, prediction history, shadow
    /// summary, and model-cache refcounts, but stops receiving wire slots
    /// and bandwidth shares.  Returns `true` if the session was live.
    ///
    /// The park expires `park_ttl` after `now` on the logical clock; under
    /// a frozen clock (lockstep transport) parks never expire, which is the
    /// deterministic-replay-friendly default.
    pub fn park_session(&mut self, id: SessionId, now: Time) -> bool {
        let Some(pos) = self.sessions.iter().position(|(sid, _)| *sid == id) else {
            return false;
        };
        let (_, session) = self.sessions.remove(pos);
        let expires = now.saturating_add(self.park_ttl);
        self.parked.push((id, session, expires));
        self.parked_total += 1;
        self.redivide_bandwidth();
        true
    }

    /// Re-attaches a parked session to scheduling.  Returns `true` on
    /// success; `false` if `id` is unknown or its park has expired (an
    /// expired entry is reclaimed on the spot).
    ///
    /// The resumed session's fair-queueing anchor is re-based *upward only*:
    /// if the live service frontier moved past it while parked, its counter
    /// jumps to the frontier so it cannot monopolize the wire replaying its
    /// deficit; if it is alone (or already at the frontier) the anchor is
    /// untouched, so a single-session park/resume cycle is bit-exact with an
    /// uninterrupted run.
    pub fn resume_session(&mut self, id: SessionId, now: Time) -> bool {
        let Some(pos) = self.parked.iter().position(|(sid, _, _)| *sid == id) else {
            return false;
        };
        if self.parked[pos].2 <= now {
            self.parked.remove(pos);
            return false;
        }
        let (_, mut session, _) = self.parked.remove(pos);
        let frontier = self
            .sessions
            .iter()
            .map(|(_, s)| s.service() as f64 / s.weight().max(f64::EPSILON))
            .fold(f64::NEG_INFINITY, f64::max);
        if frontier.is_finite() {
            let target = (frontier * session.weight()).floor() as u64;
            let current = session.service();
            if current < target {
                session.service_base += target - current;
            }
        }
        // The sessions vec is ascending by id (ids are allocated
        // monotonically and appended); `RoundRobin` and
        // `next_event_among`'s binary search both rely on that, so the
        // resumed session goes back at its sorted position.
        let at = self.sessions.partition_point(|(sid, _)| *sid < id);
        self.sessions.insert(at, (id, session));
        self.resumed_total += 1;
        self.redivide_bandwidth();
        true
    }

    /// Reclaims every parked session whose TTL has passed at `now`,
    /// returning their ids.  Dropping the `Session` releases its
    /// model-cache refcounts and scheduler state.
    pub fn evict_expired_parks(&mut self, now: Time) -> Vec<SessionId> {
        let mut evicted = Vec::new();
        self.parked.retain(|(id, _, expires)| {
            if *expires <= now {
                evicted.push(*id);
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Drops one parked session unconditionally (shed-load path).  Returns
    /// `true` if it existed.
    pub fn drop_parked(&mut self, id: SessionId) -> bool {
        let before = self.parked.len();
        self.parked.retain(|(sid, _, _)| *sid != id);
        self.parked.len() != before
    }

    /// The parked session closest to expiry, if any — the shed-load victim
    /// when the park table is full.
    pub fn earliest_expiring_park(&self) -> Option<SessionId> {
        self.parked
            .iter()
            .min_by_key(|(id, _, expires)| (*expires, *id))
            .map(|(id, _, _)| *id)
    }

    /// Whether session `id` is currently parked.
    pub fn is_parked(&self, id: SessionId) -> bool {
        self.parked.iter().any(|(sid, _, _)| *sid == id)
    }

    /// Number of currently parked sessions.
    pub fn num_parked(&self) -> usize {
        self.parked.len()
    }

    /// Routes one protocol message to its session.  Returns the resulting
    /// event, if the message produced one (`Close` yields
    /// [`ServerEvent::Closed`], a refused delta yields
    /// [`ServerEvent::Resync`]); `None` for unknown sessions.
    pub fn on_message(
        &mut self,
        id: SessionId,
        message: &ClientMessage,
        now: Time,
    ) -> Option<ServerEvent> {
        let session = self
            .sessions
            .iter_mut()
            .find(|(sid, _)| *sid == id)
            .map(|(_, s)| s)?;
        match message {
            ClientMessage::Close => {
                session.on_message(message, now);
                self.remove_session(id);
                Some(ServerEvent::Closed { session: id })
            }
            ClientMessage::RateReport(_) => {
                session.on_message(message, now);
                // Rate reports also feed the shared budget.  Each client
                // only observes its own share of the wire, so the total is
                // the *sum* of per-session estimates — feeding a single
                // client's rate in as the total would systematically halve
                // the estimate with every concurrent session.  Under an
                // external budget owner (a shard coordinator that sees
                // *every* shard's sessions), only the per-session estimate
                // is updated here; the corrected division arrives via
                // [`set_shared_budget`](Self::set_shared_budget).
                if !self.external_budget {
                    let total: f64 = self
                        .sessions
                        .iter()
                        .map(|(_, s)| s.bandwidth_estimate().bytes_per_sec())
                        .sum();
                    self.shared_bandwidth.report_rate(Bandwidth(total));
                    self.redivide_bandwidth();
                }
                None
            }
            ClientMessage::Predictor(_)
            | ClientMessage::PredictorFull { .. }
            | ClientMessage::PredictorDelta(_) => match session.on_message(message, now) {
                MessageOutcome::NeedsResync => Some(ServerEvent::Resync { session: id }),
                MessageOutcome::Handled => None,
            },
        }
    }

    /// Produces the next block to put on the shared wire, or
    /// [`ServerEvent::Idle`] when no session has useful work.
    ///
    /// The shared backend's concurrency budget is divided between live
    /// sessions so their per-refill allowances sum to the backend limit —
    /// N sessions cannot jointly drive N × limit distinct requests into one
    /// backend.  When there are more sessions than slots, the remainder
    /// rotates between sessions across calls so nobody starves.  (This is
    /// the §5.4 schedule-shaping heuristic generalized to many clients, not
    /// an exact in-flight tracker.)
    pub fn next_event(&mut self, _now: Time) -> ServerEvent {
        // Skipping exhausted sessions is outcome-identical to letting the
        // policy pick and discard them: `WeightedFair` is a stateless min
        // (absent entries cannot change which live session is minimal) and
        // `RoundRobin`'s cursor ends at the block recipient either way.
        // Under a concurrency limit the allowance split depends on the
        // candidate count, so the full set is kept (and `exhausted` is
        // never set on that path).
        let filter_exhausted = self.backend.concurrency_limit().is_none();
        let all: Vec<usize> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| !filter_exhausted || !s.exhausted)
            .map(|(i, _)| i)
            .collect();
        self.next_event_inner(all)
    }

    /// [`next_event`](SessionManager::next_event) restricted to the sessions
    /// in `eligible` (ascending by id).  Transport servers use this to keep
    /// backpressured connections — whose bounded outbound queues are full —
    /// out of arbitration entirely: the share policy and the backend
    /// concurrency budget only see the eligible set, so a slow consumer's
    /// share flows to live connections instead of accumulating in memory,
    /// and no scheduler state is mutated for blocks that could not be
    /// queued.
    pub fn next_event_among(&mut self, _now: Time, eligible: &[SessionId]) -> ServerEvent {
        debug_assert!(
            eligible.windows(2).all(|w| w[0] < w[1]),
            "eligible session list must be ascending"
        );
        let filter_exhausted = self.backend.concurrency_limit().is_none();
        let picked: Vec<usize> = self
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, (id, s))| {
                (!filter_exhausted || !s.exhausted) && eligible.binary_search(id).is_ok()
            })
            .map(|(i, _)| i)
            .collect();
        self.next_event_inner(picked)
    }

    fn next_event_inner(&mut self, indices: Vec<usize>) -> ServerEvent {
        let n = indices.len().max(1);
        let limits: Vec<Option<usize>> = match self.backend.concurrency_limit() {
            None => vec![None; n],
            Some(l) => {
                let base = l / n;
                let extra = l % n;
                (0..n)
                    .map(|i| Some(base + usize::from((i + n - self.budget_rotor % n) % n < extra)))
                    .collect()
            }
        };
        self.budget_rotor = self.budget_rotor.wrapping_add(1);
        let mut candidates: Vec<(usize, Option<usize>)> = indices.into_iter().zip(limits).collect();
        while !candidates.is_empty() {
            let ready: Vec<SessionShare> = candidates
                .iter()
                .map(|&(i, _)| {
                    let (id, s) = &self.sessions[i];
                    SessionShare {
                        session: *id,
                        weight: s.weight(),
                        blocks_sent: s.blocks_sent(),
                        service: s.service(),
                    }
                })
                .collect();
            let Some(pick) = self.policy.pick(&ready) else {
                break;
            };
            let (idx, limit) = candidates[pick];
            let (id, session) = &mut self.sessions[idx];
            let id = *id;
            match session.next_block_ref(limit) {
                Some(block_ref) => {
                    if let Some(block) = self.backend.fetch(block_ref) {
                        session.commit(&block.meta);
                        self.blocks_sent += 1;
                        self.bytes_sent += block.meta.size;
                        return ServerEvent::Block { session: id, block };
                    }
                    // Unresolvable reference: the session's scheduler has
                    // already moved past it.  Forfeit this session's turn so
                    // a scheduler that keeps producing unresolvable refs
                    // cannot spin this loop forever; the next call serves it
                    // again.
                    candidates.remove(pick);
                }
                None => {
                    candidates.remove(pick);
                }
            }
        }
        ServerEvent::Idle
    }

    /// Re-divides the shared bandwidth estimate between sessions by weight,
    /// updating each scheduler's slot duration.  The weight denominator is
    /// the local weight sum, unless an external budget owner supplied the
    /// global one (see [`set_shared_budget`](Self::set_shared_budget)).
    fn redivide_bandwidth(&mut self) {
        let total_weight: f64 = self
            .weight_denominator
            .unwrap_or_else(|| self.sessions.iter().map(|(_, s)| s.weight()).sum());
        if total_weight <= 0.0 {
            return;
        }
        let total = self.shared_bandwidth.estimate();
        for (_, session) in &mut self.sessions {
            let share = session.weight() / total_weight;
            let effective = Bandwidth(total.bytes_per_sec() * share);
            let slot = effective.transmit_time(session.catalog().max_block_size().max(1));
            session.set_slot_duration(slot);
        }
    }

    /// Time the sender should wait between consecutive blocks to pace the
    /// shared wire at the estimated total bandwidth.
    pub fn pacing_interval(&self) -> Duration {
        let max_block = self
            .sessions
            .iter()
            .map(|(_, s)| s.catalog().max_block_size())
            .max()
            .unwrap_or(1)
            .max(1);
        self.shared_bandwidth.slot_duration(max_block)
    }

    /// The shared bandwidth estimate.
    pub fn bandwidth_estimate(&self) -> Bandwidth {
        self.shared_bandwidth.estimate()
    }

    /// Number of live sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Ids of the live sessions, in creation order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.iter().map(|(id, _)| *id).collect()
    }

    /// A live session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, s)| s)
    }

    /// Mutable access to a live session by id.
    pub fn session_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions
            .iter_mut()
            .find(|(sid, _)| *sid == id)
            .map(|(_, s)| s)
    }

    /// Total blocks sent across all sessions.
    pub fn blocks_sent(&self) -> u64 {
        self.blocks_sent
    }

    /// Total bytes sent across all sessions.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Name of the arbitration policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Name of the shared backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::GreedySchedulerConfig;
    use crate::server::CatalogBackend;
    use crate::utility::LinearUtility;

    fn catalog(n: usize, blocks: u32) -> Arc<ResponseCatalog> {
        Arc::new(ResponseCatalog::uniform(n, blocks, 10_000))
    }

    fn utility(blocks: u32) -> UtilityModel {
        UtilityModel::homogeneous(&LinearUtility, blocks)
    }

    fn manager_with(
        policy: Box<dyn SharePolicy>,
        weights: &[f64],
        n: usize,
        blocks: u32,
    ) -> (SessionManager, Vec<SessionId>) {
        let cat = catalog(n, blocks);
        let mut mgr = SessionManager::new(Box::new(CatalogBackend::new(cat.clone())), policy);
        let ids = weights
            .iter()
            .map(|&w| {
                mgr.add_session(
                    Session::builder(utility(blocks), cat.clone())
                        .config(ServerConfig {
                            scheduler: GreedySchedulerConfig {
                                cache_blocks: (n * blocks as usize).max(64),
                                ..Default::default()
                            },
                            ..Default::default()
                        })
                        .weight(w),
                )
            })
            .collect();
        (mgr, ids)
    }

    fn drive(mgr: &mut SessionManager, steps: usize) -> HashMap<SessionId, usize> {
        let mut counts = HashMap::new();
        for _ in 0..steps {
            match mgr.next_event(Time::ZERO) {
                ServerEvent::Block { session, .. } => *counts.entry(session).or_insert(0) += 1,
                ServerEvent::Idle => break,
                ServerEvent::Closed { .. } | ServerEvent::Resync { .. } | ServerEvent::Busy => {}
            }
        }
        counts
    }

    #[test]
    fn round_robin_splits_evenly() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0], 100, 10);
        assert_eq!(mgr.policy_name(), "round-robin");
        let counts = drive(&mut mgr, 400);
        let a = counts[&ids[0]] as f64;
        let b = counts[&ids[1]] as f64;
        assert_eq!(a + b, 400.0, "both sessions had plenty of blocks");
        // Uniform demand, equal weights: a near-exact 50/50 split.
        assert!((a - b).abs() <= 2.0, "unfair split: {a} vs {b}");
    }

    #[test]
    fn weighted_fair_honours_weights() {
        let (mut mgr, ids) = manager_with(Box::new(WeightedFair::new()), &[2.0, 1.0], 100, 10);
        assert_eq!(mgr.policy_name(), "weighted-fair");
        let counts = drive(&mut mgr, 300);
        let heavy = counts[&ids[0]] as f64;
        let light = counts[&ids[1]] as f64;
        assert_eq!(heavy + light, 300.0);
        let ratio = heavy / light;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "expected a 2:1 split, got {heavy}:{light} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn sessions_track_independent_predictions() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0], 50, 4);
        mgr.on_message(
            ids[0],
            &ClientMessage::Predictor(PredictorState::LastRequest(RequestId(7))),
            Time::ZERO,
        );
        mgr.on_message(
            ids[1],
            &ClientMessage::Predictor(PredictorState::LastRequest(RequestId(33))),
            Time::ZERO,
        );
        // First few blocks for each session go to its own predicted request.
        let mut firsts: HashMap<SessionId, Vec<RequestId>> = HashMap::new();
        for _ in 0..8 {
            if let ServerEvent::Block { session, block } = mgr.next_event(Time::ZERO) {
                firsts
                    .entry(session)
                    .or_default()
                    .push(block.meta.block.request);
            }
        }
        assert!(firsts[&ids[0]].contains(&RequestId(7)));
        assert!(firsts[&ids[1]].contains(&RequestId(33)));
        assert!(!firsts[&ids[0]].contains(&RequestId(33)));
        assert_eq!(mgr.session(ids[0]).unwrap().prediction_updates(), 1);
    }

    #[test]
    fn close_message_removes_session() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0], 20, 2);
        assert_eq!(mgr.num_sessions(), 2);
        let ev = mgr.on_message(ids[0], &ClientMessage::Close, Time::ZERO);
        assert_eq!(ev, Some(ServerEvent::Closed { session: ids[0] }));
        assert_eq!(mgr.num_sessions(), 1);
        assert!(mgr.session(ids[0]).is_none());
        // Remaining session still streams.
        assert!(matches!(
            mgr.next_event(Time::ZERO),
            ServerEvent::Block { session, .. } if session == ids[1]
        ));
        // Messages to the removed session are rejected.
        assert_eq!(
            mgr.on_message(
                ids[0],
                &ClientMessage::RateReport(Bandwidth::from_mbps(1.0)),
                Time::ZERO
            ),
            None
        );
    }

    #[test]
    fn rate_reports_redivide_shared_bandwidth() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0], 20, 2);
        let before = mgr.pacing_interval();
        // Each client observes only its own share of the wire; once both
        // report a low rate, the shared estimate (their sum) drops and the
        // shared pacing slows down.
        for &id in &ids {
            mgr.on_message(
                id,
                &ClientMessage::RateReport(Bandwidth::from_mbps(0.5)),
                Time::ZERO,
            );
        }
        let after = mgr.pacing_interval();
        assert!(after > before, "shared pacing should slow down");
        let estimate = mgr.bandwidth_estimate().as_mbps();
        // The total reflects the *sum* of per-session rates (≥ 1.0 Mbps
        // before smoothing), not a single client's 0.5 Mbps share.
        assert!(
            estimate > 0.9 && estimate < 5.625,
            "shared estimate {estimate} should sit between one client's share and the initial estimate"
        );
    }

    #[test]
    fn exhausted_session_does_not_drag_down_the_join_anchor() {
        // Session A exhausts a tiny catalog early and stalls; session B keeps
        // streaming a large one.  A later joiner must be anchored at the
        // service frontier (B), not at A's frozen counter, or it would
        // monopolize the wire until it catches B up.
        let small = catalog(2, 2);
        let big = catalog(100, 10);
        let mut mgr = SessionManager::weighted_fair(Box::new(CatalogBackend::new(big.clone())));
        let full_cache = |n: usize| ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks: n,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = mgr.add_session(Session::builder(utility(2), small).config(full_cache(16)));
        let b =
            mgr.add_session(Session::builder(utility(10), big.clone()).config(full_cache(1000)));
        // Drain: A exhausts its 4 blocks quickly, B absorbs the rest.
        for _ in 0..104 {
            let _ = mgr.next_event(Time::ZERO);
        }
        assert!(mgr.session(a).unwrap().blocks_sent() <= 4);
        assert!(mgr.session(b).unwrap().blocks_sent() >= 90);
        // C joins: it must share with B immediately, not receive ~100
        // consecutive catch-up blocks.
        let c = mgr.add_session(Session::builder(utility(10), big).config(full_cache(1000)));
        let counts = drive(&mut mgr, 60);
        let c_share = counts.get(&c).copied().unwrap_or(0);
        assert!(
            (20..=40).contains(&c_share),
            "joiner took {c_share}/60 blocks next to an exhausted session (counts {counts:?})"
        );
    }

    #[test]
    fn wrap_pruning_preserves_offsets_without_cache_tracking() {
        // track_client_cache: false -> simulated_cache() is always empty; the
        // wrap pruning must not wipe in-progress backfill offsets (only
        // fully-pushed requests may be dropped).
        let cat = catalog(8, 4);
        let mut session = Session::builder(utility(4), cat)
            .config(ServerConfig {
                scheduler: GreedySchedulerConfig {
                    cache_blocks: 4,
                    track_client_cache: false,
                    ..Default::default()
                },
                sender_queue_target: 2,
                ..Default::default()
            })
            .build();
        let mut sent = 0;
        while sent < 12 {
            let Some(r) = session.next_block_ref(None) else {
                break;
            };
            let meta = session
                .catalog()
                .layout(r.request)
                .block_meta(r.index)
                .unwrap();
            session.commit(&meta);
            sent += 1;
        }
        assert!(sent >= 8, "session stalled after {sent} blocks");
        // Several schedules have wrapped (horizon 4); the map must still
        // track the partially-pushed requests rather than being cleared.
        assert!(
            session.tracked_requests() > 0,
            "sent_per_request wiped on wrap without cache tracking"
        );
    }

    #[test]
    fn sent_per_request_is_pruned_on_schedule_wrap() {
        // Tiny horizon (8 blocks) over a large corpus: the schedule wraps
        // many times and old requests fall out of the simulated ring.
        let cat = catalog(64, 2);
        let mut session = Session::builder(utility(2), cat)
            .config(ServerConfig {
                scheduler: GreedySchedulerConfig {
                    cache_blocks: 8,
                    ..Default::default()
                },
                sender_queue_target: 4,
                ..Default::default()
            })
            .build();
        let mut sent = 0;
        while sent < 200 {
            let Some(r) = session.next_block_ref(None) else {
                break;
            };
            let meta = session
                .catalog()
                .layout(r.request)
                .block_meta(r.index)
                .unwrap();
            session.commit(&meta);
            sent += 1;
        }
        assert!(sent >= 100, "session stalled after {sent} blocks");
        // Without pruning the map would approach the corpus size (64); with
        // pruning it stays bounded by the ring (8 blocks) plus the entries
        // touched since the last wrap.
        assert!(
            session.tracked_requests() <= 16,
            "sent_per_request leaked: {} entries",
            session.tracked_requests()
        );
    }

    #[test]
    fn late_joining_session_does_not_monopolize_weighted_fair() {
        let cat = catalog(100, 10);
        let mut mgr = SessionManager::weighted_fair(Box::new(CatalogBackend::new(cat.clone())));
        let full_cache = ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks: 1000,
                ..Default::default()
            },
            ..Default::default()
        };
        let a =
            mgr.add_session(Session::builder(utility(10), cat.clone()).config(full_cache.clone()));
        // A alone receives 100 blocks of service.
        for _ in 0..100 {
            assert!(matches!(
                mgr.next_event(Time::ZERO),
                ServerEvent::Block { session, .. } if session == a
            ));
        }
        // B joins with equal weight: it must be anchored at the current
        // virtual time and *share* the wire, not receive 100 consecutive
        // catch-up blocks.
        let b = mgr.add_session(Session::builder(utility(10), cat).config(full_cache));
        let counts = drive(&mut mgr, 100);
        let b_share = counts.get(&b).copied().unwrap_or(0);
        assert!(
            (40..=60).contains(&b_share),
            "late joiner took {b_share}/100 blocks (expected ~50)"
        );
        assert!(counts.get(&a).copied().unwrap_or(0) >= 40);
    }

    struct LimitedCatalog {
        inner: CatalogBackend,
        limit: usize,
    }

    impl Backend for LimitedCatalog {
        fn fetch(&mut self, block: BlockRef) -> Option<crate::block::Block> {
            self.inner.fetch(block)
        }
        fn concurrency_limit(&self) -> Option<usize> {
            Some(self.limit)
        }
    }

    #[test]
    fn backend_concurrency_budget_is_shared_across_sessions() {
        // A backend that can serve 4 concurrent requests, shared by 2
        // sessions: each session gets 2 slots, so the union of distinct
        // requests driven into the backend stays within the global limit.
        let cat = catalog(50, 10);
        let mut mgr = SessionManager::new(
            Box::new(LimitedCatalog {
                inner: CatalogBackend::new(cat.clone()),
                limit: 4,
            }),
            Box::new(RoundRobin::new()),
        );
        let cfg = ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks: 40,
                ..Default::default()
            },
            sender_queue_target: 40,
            ..Default::default()
        };
        for i in 0..2 {
            let mut builder = Session::builder(utility(10), cat.clone()).config(cfg.clone());
            if i == 1 {
                builder = builder.weight(2.0);
            }
            mgr.add_session(builder);
        }
        let mut distinct: std::collections::HashSet<RequestId> = Default::default();
        for _ in 0..40 {
            if let ServerEvent::Block { block, .. } = mgr.next_event(Time::ZERO) {
                distinct.insert(block.meta.block.request);
            }
        }
        assert!(
            distinct.len() <= 4,
            "two sessions drove {} distinct requests into a backend with limit 4",
            distinct.len()
        );
    }

    #[test]
    fn oversubscribed_backend_budget_rotates_without_exceeding_limit() {
        // More sessions (6) than backend slots (2): per-call allowances must
        // sum to the limit, and the remainder must rotate so every session
        // is eventually served.
        let cat = catalog(60, 10);
        let mut mgr = SessionManager::new(
            Box::new(LimitedCatalog {
                inner: CatalogBackend::new(cat.clone()),
                limit: 2,
            }),
            Box::new(RoundRobin::new()),
        );
        let cfg = ServerConfig {
            scheduler: GreedySchedulerConfig {
                cache_blocks: 60,
                ..Default::default()
            },
            sender_queue_target: 10,
            ..Default::default()
        };
        let ids: Vec<SessionId> = (0..6)
            .map(|_| {
                mgr.add_session(Session::builder(utility(10), cat.clone()).config(cfg.clone()))
            })
            .collect();
        let mut counts: HashMap<SessionId, usize> = HashMap::new();
        let mut served: HashMap<SessionId, std::collections::HashSet<RequestId>> = HashMap::new();
        for _ in 0..120 {
            match mgr.next_event(Time::ZERO) {
                ServerEvent::Block { session, block } => {
                    *counts.entry(session).or_insert(0) += 1;
                    served
                        .entry(session)
                        .or_default()
                        .insert(block.meta.block.request);
                }
                ServerEvent::Idle => break,
                ServerEvent::Closed { .. } | ServerEvent::Resync { .. } | ServerEvent::Busy => {}
            }
        }
        // Every session eventually gets service despite 4 of 6 having a zero
        // allowance on any single call.
        for id in &ids {
            assert!(
                counts.get(id).copied().unwrap_or(0) > 0,
                "session {id} starved under rotating budget: {counts:?}"
            );
        }
        // With a per-refill allowance of at most 1, each session's blocks on
        // the wire concentrate on very few distinct requests (~20 blocks per
        // session / 10 blocks per request), so the joint backend fan-out
        // stays near the limit instead of 6 × limit.
        for id in &ids {
            let distinct = served.get(id).map(|s| s.len()).unwrap_or(0);
            assert!(
                distinct <= 3,
                "session {id} drove {distinct} distinct requests into the backend despite allowance 1"
            );
        }
    }

    #[test]
    fn sessions_share_one_scheduler_context_per_catalog() {
        // The utility-class catalog / block-count context is derived from
        // `(utility, catalog)` only; sessions sharing both (by storage
        // identity) must share one Arc'd context instead of re-deriving
        // O(n) state each.
        let cat = catalog(50, 4);
        let shared_utility = utility(4);
        let mut mgr = SessionManager::round_robin(Box::new(CatalogBackend::new(cat.clone())));
        for _ in 0..3 {
            mgr.add_session(Session::builder(shared_utility.clone(), cat.clone()));
        }
        assert_eq!(mgr.shared_context_count(), 1);
        // One Arc held by the cache plus one per session's scheduler.
        assert_eq!(Arc::strong_count(&mgr.context_cache[0].2), 4);
        // A distinct utility (different table storage) gets its own context;
        // a distinct catalog Arc likewise.
        mgr.add_session(Session::builder(utility(4), cat.clone()));
        assert_eq!(mgr.shared_context_count(), 2);
        let other_cat = catalog(50, 4);
        mgr.add_session(Session::builder(shared_utility.clone(), other_cat));
        assert_eq!(mgr.shared_context_count(), 3);
        // Sessions with an explicit custom scheduler never touch the cache.
        let custom = GreedyScheduler::new(
            GreedySchedulerConfig::default(),
            shared_utility.clone(),
            cat.clone(),
        );
        mgr.add_session(Session::builder(shared_utility, cat).scheduler(Box::new(custom)));
        assert_eq!(mgr.shared_context_count(), 3);
        // Removing every session releases the contexts; the next derivation
        // prunes the dead entries instead of pinning them forever.
        for id in mgr.session_ids() {
            mgr.remove_session(id);
        }
        mgr.add_session(Session::builder(utility(4), catalog(50, 4)));
        assert_eq!(mgr.shared_context_count(), 1);
    }

    #[test]
    fn weighted_fair_requires_positive_weight() {
        let cat = catalog(4, 2);
        let result = std::panic::catch_unwind(|| Session::builder(utility(2), cat).weight(0.0));
        assert!(result.is_err());
    }

    #[test]
    fn parked_session_is_invisible_until_resumed() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0], 50, 4);
        mgr.on_message(
            ids[0],
            &ClientMessage::Predictor(PredictorState::LastRequest(RequestId(7))),
            Time::ZERO,
        );
        assert!(mgr.park_session(ids[0], Time::ZERO));
        assert!(mgr.is_parked(ids[0]));
        assert_eq!(mgr.num_sessions(), 1);
        assert_eq!(mgr.num_parked(), 1);
        // While parked, the session gets no wire slots.
        for _ in 0..10 {
            if let ServerEvent::Block { session, .. } = mgr.next_event(Time::ZERO) {
                assert_ne!(session, ids[0], "parked session must not be scheduled");
            }
        }
        // Resume re-attaches with prediction state intact: its first blocks
        // still target the request it predicted before parking.
        assert!(mgr.resume_session(ids[0], Time::ZERO));
        assert!(!mgr.is_parked(ids[0]));
        assert_eq!(mgr.num_sessions(), 2);
        let mut served = Vec::new();
        for _ in 0..8 {
            if let ServerEvent::Block { session, block } = mgr.next_event(Time::ZERO) {
                if session == ids[0] {
                    served.push(block.meta.block.request);
                }
            }
        }
        assert!(
            served.contains(&RequestId(7)),
            "resumed session lost its prediction state: {served:?}"
        );
        let snap = mgr.stats_snapshot();
        assert_eq!(snap.parked_sessions, 1);
        assert_eq!(snap.resumed_sessions, 1);
    }

    #[test]
    fn park_ttl_evicts_on_the_logical_clock() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0], 20, 2);
        mgr.set_park_ttl(Duration::from_millis(5));
        assert!(mgr.park_session(ids[0], Time::ZERO));
        // Before the TTL nothing is evicted and a resume still works.
        assert!(mgr.evict_expired_parks(Time::from_millis(4)).is_empty());
        assert!(mgr.is_parked(ids[0]));
        // At/after the TTL the park is reclaimed.
        assert_eq!(mgr.evict_expired_parks(Time::from_millis(5)), vec![ids[0]]);
        assert!(!mgr.is_parked(ids[0]));
        assert!(!mgr.resume_session(ids[0], Time::from_millis(5)));
        // A resume attempt past the TTL on a still-parked entry fails and
        // reclaims the entry on the spot.
        assert!(mgr.park_session(ids[1], Time::ZERO));
        assert!(!mgr.resume_session(ids[1], Time::from_millis(9)));
        assert!(!mgr.is_parked(ids[1]));
        assert_eq!(mgr.num_sessions(), 0);
    }

    #[test]
    fn zero_ttl_parks_expire_immediately() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0], 20, 2);
        mgr.set_park_ttl(Duration::ZERO);
        assert!(mgr.park_session(ids[0], Time::ZERO));
        assert!(!mgr.resume_session(ids[0], Time::ZERO));
        assert!(!mgr.is_parked(ids[0]));
    }

    #[test]
    fn park_holds_model_cache_refcounts() {
        // Two sessions with identical prediction histories share one model.
        // Parking one must keep the shared model alive; dropping the park
        // releases it.
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0], 50, 4);
        for &id in &ids {
            mgr.on_message(
                id,
                &ClientMessage::Predictor(PredictorState::LastRequest(RequestId(3))),
                Time::ZERO,
            );
        }
        let live_before = mgr.live_models();
        assert!(live_before >= 1);
        assert!(mgr.park_session(ids[0], Time::ZERO));
        assert_eq!(
            mgr.live_models(),
            live_before,
            "parking must hold model refcounts"
        );
        assert!(mgr.drop_parked(ids[0]));
        assert!(mgr.live_models() <= live_before);
        assert_eq!(mgr.num_parked(), 0);
    }

    #[test]
    fn resume_reanchors_service_upward_only() {
        let (mut mgr, ids) = manager_with(Box::new(WeightedFair::new()), &[1.0, 1.0], 100, 10);
        // Let both run, then park A and let B pull far ahead.
        drive(&mut mgr, 40);
        let service_at_park = mgr.session(ids[0]).unwrap().service();
        assert!(mgr.park_session(ids[0], Time::ZERO));
        drive(&mut mgr, 60);
        assert!(mgr.resume_session(ids[0], Time::ZERO));
        let resumed = mgr.session(ids[0]).unwrap().service();
        let frontier = mgr.session(ids[1]).unwrap().service();
        assert!(
            resumed >= service_at_park,
            "anchor must never move backwards"
        );
        assert!(
            resumed + 1 >= frontier,
            "resumed session must be re-anchored at the frontier ({resumed} vs {frontier})"
        );
        // A lone session resumes bit-exactly: no frontier, no re-anchor.
        let (mut solo, solo_ids) = manager_with(Box::new(RoundRobin::new()), &[1.0], 20, 2);
        drive(&mut solo, 5);
        let before = solo.session(solo_ids[0]).unwrap().service();
        assert!(solo.park_session(solo_ids[0], Time::ZERO));
        assert!(solo.resume_session(solo_ids[0], Time::ZERO));
        assert_eq!(solo.session(solo_ids[0]).unwrap().service(), before);
    }

    #[test]
    fn earliest_expiring_park_is_the_shed_victim() {
        let (mut mgr, ids) = manager_with(Box::new(RoundRobin::new()), &[1.0, 1.0, 1.0], 20, 2);
        mgr.set_park_ttl(Duration::from_millis(10));
        assert!(mgr.park_session(ids[1], Time::ZERO));
        assert!(mgr.park_session(ids[0], Time::from_millis(3)));
        assert_eq!(mgr.earliest_expiring_park(), Some(ids[1]));
        assert!(mgr.drop_parked(ids[1]));
        assert_eq!(mgr.earliest_expiring_park(), Some(ids[0]));
    }
}
