//! Client-side library: the Cache Manager (§3.2, §3.3).
//!
//! User-generated requests are *not* sent on the network.  They are registered
//! with the [`CacheManager`], which waits until the ring-buffer cache holds at
//! least one block for the request and then makes an application **upcall**
//! with whatever prefix is available.  Registering a request assigns it an
//! increasing logical timestamp; when the upcall for request `i` fires, all
//! requests with earlier timestamps are deregistered (the *preemptive
//! interactions* behaviour of §2 — the interface only ever shows the most
//! recent interaction's data).
//!
//! The manager also keeps the raw metric samples (§6.1) so experiments and
//! applications can report cache-hit rate, response latency, response
//! utility, preemption and overpush without extra plumbing.

use std::collections::HashSet;
use std::sync::Arc;

use crate::block::{BlockMeta, ResponseCatalog};
use crate::cache::RingCache;
use crate::metrics::{MetricsCollector, ResponseSample};
use crate::types::{BlockRef, Duration, RequestId, Time};
use crate::utility::UtilityModel;

/// An upcall delivered to the application: the freshest registered request
/// now has renderable data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Upcall {
    /// The request being answered.
    pub request: RequestId,
    /// Logical timestamp assigned at registration.
    pub logical_ts: u64,
    /// When the request was registered.
    pub registered_at: Time,
    /// When the upcall fired.
    pub at: Time,
    /// Contiguous prefix of blocks available at upcall time.
    pub blocks: u32,
    /// Utility of that prefix.
    pub utility: f64,
    /// Whether data was already cached when the request was registered.
    pub cache_hit: bool,
}

impl Upcall {
    /// Registration-to-upcall latency.
    pub fn latency(&self) -> Duration {
        self.at.saturating_sub(self.registered_at)
    }
}

/// A registered request waiting for data.
#[derive(Debug, Clone, Copy)]
struct Pending {
    request: RequestId,
    logical_ts: u64,
    registered_at: Time,
    cache_hit_at_registration: bool,
}

/// Client-side cache manager: ring cache + request registration + upcalls +
/// metric collection.
pub struct CacheManager {
    cache: RingCache,
    catalog: Arc<ResponseCatalog>,
    utility: UtilityModel,
    pending: Vec<Pending>,
    next_ts: u64,
    /// The most recently *answered* request; later blocks for it improve the
    /// rendered quality (tracked for convergence experiments).
    active: Option<RequestId>,
    /// Blocks that have contributed to an upcall (for overpush accounting).
    used_blocks: HashSet<BlockRef>,
    metrics: MetricsCollector,
}

impl CacheManager {
    /// Creates a cache manager with a ring cache of `cache_blocks` slots.
    pub fn new(cache_blocks: usize, catalog: Arc<ResponseCatalog>, utility: UtilityModel) -> Self {
        CacheManager {
            cache: RingCache::new(cache_blocks),
            catalog,
            utility,
            pending: Vec::new(),
            next_ts: 0,
            active: None,
            used_blocks: HashSet::new(),
            metrics: MetricsCollector::new(),
        }
    }

    /// Convenience constructor that sizes the cache from a byte budget, using
    /// the catalog's maximum padded block size as the slot size (how the
    /// paper's experiments express cache sizes, e.g. "50 MB").
    pub fn with_byte_capacity(
        capacity_bytes: u64,
        catalog: Arc<ResponseCatalog>,
        utility: UtilityModel,
    ) -> Self {
        let slot = catalog.max_block_size().max(1);
        let blocks = (capacity_bytes / slot).max(1) as usize;
        Self::new(blocks, catalog, utility)
    }

    /// The cache capacity in blocks (the scheduler's horizon `C`).
    pub fn cache_blocks(&self) -> usize {
        self.cache.capacity()
    }

    /// Registers a user request at time `now`.
    ///
    /// If the cache already holds data for it, the upcall fires immediately
    /// (a cache hit) and is returned; otherwise the request is queued until a
    /// block arrives.
    pub fn register(&mut self, request: RequestId, now: Time) -> Option<Upcall> {
        self.metrics.record_request();
        let ts = self.next_ts;
        self.next_ts += 1;
        let hit = self.cache.contains(request);
        let pending = Pending {
            request,
            logical_ts: ts,
            registered_at: now,
            cache_hit_at_registration: hit,
        };
        if hit {
            let upcall = self.fire_upcall(pending, now);
            Some(upcall)
        } else {
            self.pending.push(pending);
            None
        }
    }

    /// Delivers a block pushed by the server; returns any upcalls it
    /// triggered (at most one — for the newest pending request that now has
    /// data).
    pub fn on_block(&mut self, block: BlockMeta, now: Time) -> Vec<Upcall> {
        self.metrics.record_pushed(block.size);
        self.cache.insert(block);
        // Answer the *newest* pending request that now has data; older ones
        // will be preempted by its upcall.
        let candidate = self
            .pending
            .iter()
            .filter(|p| self.cache.contains(p.request))
            .max_by_key(|p| p.logical_ts)
            .copied();
        match candidate {
            Some(p) => {
                self.pending.retain(|x| x.logical_ts != p.logical_ts);
                vec![self.fire_upcall(p, now)]
            }
            None => Vec::new(),
        }
    }

    fn fire_upcall(&mut self, pending: Pending, now: Time) -> Upcall {
        // Preempt all earlier registrations (§2, §3.3).
        let before = self.pending.len();
        self.pending.retain(|p| p.logical_ts > pending.logical_ts);
        let preempted = before - self.pending.len();
        for _ in 0..preempted {
            self.metrics.record_preempted();
        }

        let blocks = self.cache.prefix_len(pending.request);
        let utility = self.utility.step(pending.request.index(), blocks);
        self.active = Some(pending.request);
        self.mark_used(pending.request);

        let upcall = Upcall {
            request: pending.request,
            logical_ts: pending.logical_ts,
            registered_at: pending.registered_at,
            at: now,
            blocks,
            utility,
            cache_hit: pending.cache_hit_at_registration,
        };
        self.metrics.record_response(ResponseSample {
            request: pending.request,
            registered_at: pending.registered_at,
            answered_at: now,
            cache_hit: pending.cache_hit_at_registration,
            blocks,
            utility,
        });
        upcall
    }

    fn mark_used(&mut self, request: RequestId) {
        let mut newly_used = 0;
        for b in self.cache.iter() {
            if b.block.request == request && self.used_blocks.insert(b.block) {
                newly_used += 1;
            }
        }
        if newly_used > 0 {
            self.metrics.record_used(newly_used);
        }
    }

    /// The most recently answered request.
    pub fn active_request(&self) -> Option<RequestId> {
        self.active
    }

    /// Current renderable utility of `request`, given the blocks cached right
    /// now (used by the convergence experiments, Figure 10).
    pub fn current_utility(&self, request: RequestId) -> f64 {
        let blocks = self.cache.prefix_len(request);
        self.utility.step(request.index(), blocks)
    }

    /// Current contiguous block prefix cached for `request`.
    pub fn current_blocks(&self, request: RequestId) -> u32 {
        self.cache.prefix_len(request)
    }

    /// Whether any data is cached for `request`.
    pub fn has_data(&self, request: RequestId) -> bool {
        self.cache.contains(request)
    }

    /// Number of requests still waiting for data.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Records that a prediction message was sent (uplink accounting).
    pub fn note_prediction_sent(&mut self, bytes: u64) {
        self.metrics.record_prediction(bytes);
    }

    /// Marks, at the end of a run, the still-pending requests as preempted
    /// (they never received data); call once before reading final metrics.
    pub fn finalize(&mut self) {
        let remaining = self.pending.len();
        for _ in 0..remaining {
            self.metrics.record_preempted();
        }
        self.pending.clear();
    }

    /// Read access to the collected metrics.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// The underlying ring cache (read-only), e.g. for the server to verify
    /// its simulation in tests.
    pub fn cache(&self) -> &RingCache {
        &self.cache
    }

    /// The response catalog shared with the server.
    pub fn catalog(&self) -> &Arc<ResponseCatalog> {
        &self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::LinearUtility;

    fn manager(n: usize, blocks: u32, cache: usize) -> CacheManager {
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 1000));
        CacheManager::new(
            cache,
            catalog,
            UtilityModel::homogeneous(&LinearUtility, blocks),
        )
    }

    fn meta(catalog: &ResponseCatalog, req: u32, idx: u32) -> BlockMeta {
        catalog.layout(RequestId(req)).block_meta(idx).unwrap()
    }

    #[test]
    fn miss_then_block_triggers_upcall() {
        let mut m = manager(4, 2, 8);
        let cat = m.catalog().clone();
        assert!(m.register(RequestId(1), Time::from_millis(0)).is_none());
        assert_eq!(m.pending_count(), 1);
        let ups = m.on_block(meta(&cat, 1, 0), Time::from_millis(30));
        assert_eq!(ups.len(), 1);
        let u = ups[0];
        assert_eq!(u.request, RequestId(1));
        assert_eq!(u.blocks, 1);
        assert!((u.utility - 0.5).abs() < 1e-12);
        assert!(!u.cache_hit);
        assert_eq!(u.latency(), Duration::from_millis(30));
        assert_eq!(m.pending_count(), 0);
        assert_eq!(m.active_request(), Some(RequestId(1)));
    }

    #[test]
    fn cache_hit_answers_immediately() {
        let mut m = manager(4, 2, 8);
        let cat = m.catalog().clone();
        assert!(m
            .on_block(meta(&cat, 2, 0), Time::from_millis(5))
            .is_empty());
        let u = m.register(RequestId(2), Time::from_millis(10)).unwrap();
        assert!(u.cache_hit);
        assert_eq!(u.latency(), Duration::ZERO);
        let s = m.metrics().summary();
        assert_eq!(s.completed, 1);
        assert!((s.cache_hit_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn newer_request_preempts_older() {
        let mut m = manager(8, 1, 8);
        let cat = m.catalog().clone();
        assert!(m.register(RequestId(0), Time::from_millis(0)).is_none());
        assert!(m.register(RequestId(1), Time::from_millis(5)).is_none());
        assert!(m.register(RequestId(2), Time::from_millis(10)).is_none());
        // A block for the newest request answers it and preempts the others.
        let ups = m.on_block(meta(&cat, 2, 0), Time::from_millis(20));
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].request, RequestId(2));
        assert_eq!(m.pending_count(), 0);
        let s = m.metrics().summary();
        assert_eq!(s.preempted, 2);
        assert_eq!(s.completed, 1);
        // A late block for a preempted request does nothing.
        assert!(m
            .on_block(meta(&cat, 0, 0), Time::from_millis(30))
            .is_empty());
    }

    #[test]
    fn older_block_answers_older_request_but_is_preempted_later() {
        let mut m = manager(8, 1, 8);
        let cat = m.catalog().clone();
        assert!(m.register(RequestId(0), Time::from_millis(0)).is_none());
        assert!(m.register(RequestId(1), Time::from_millis(5)).is_none());
        // Data for the *older* request arrives first: request 1 is newer and
        // still pending, so the upcall goes to request 0?  No — the manager
        // answers the newest pending request *that has data*, which is 0 here;
        // request 1 stays pending (it has no data yet).
        let ups = m.on_block(meta(&cat, 0, 0), Time::from_millis(8));
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].request, RequestId(0));
        assert_eq!(m.pending_count(), 1);
        // Then request 1's data arrives and answers it.
        let ups = m.on_block(meta(&cat, 1, 0), Time::from_millis(9));
        assert_eq!(ups[0].request, RequestId(1));
        assert_eq!(m.metrics().summary().preempted, 0);
    }

    #[test]
    fn utility_improves_with_more_blocks() {
        let mut m = manager(2, 4, 8);
        let cat = m.catalog().clone();
        m.on_block(meta(&cat, 0, 0), Time::from_millis(1));
        let u = m.register(RequestId(0), Time::from_millis(2)).unwrap();
        assert!((u.utility - 0.25).abs() < 1e-12);
        m.on_block(meta(&cat, 0, 1), Time::from_millis(3));
        m.on_block(meta(&cat, 0, 2), Time::from_millis(4));
        assert!((m.current_utility(RequestId(0)) - 0.75).abs() < 1e-12);
        assert_eq!(m.current_blocks(RequestId(0)), 3);
    }

    #[test]
    fn overpush_accounting() {
        let mut m = manager(4, 2, 8);
        let cat = m.catalog().clone();
        // Push blocks for requests 0 and 1; only 0 is ever requested.
        m.on_block(meta(&cat, 0, 0), Time::from_millis(1));
        m.on_block(meta(&cat, 0, 1), Time::from_millis(2));
        m.on_block(meta(&cat, 1, 0), Time::from_millis(3));
        let _ = m.register(RequestId(0), Time::from_millis(5));
        m.finalize();
        let s = m.metrics().summary();
        assert_eq!(s.blocks_pushed, 3);
        // Blocks of request 0 were used; request 1's block was overpushed.
        assert!((s.overpush_rate - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn finalize_counts_unanswered_as_preempted() {
        let mut m = manager(4, 1, 4);
        assert!(m.register(RequestId(3), Time::ZERO).is_none());
        m.finalize();
        assert_eq!(m.metrics().summary().preempted, 1);
        assert_eq!(m.pending_count(), 0);
    }

    #[test]
    fn byte_capacity_constructor_sizes_ring() {
        let catalog = Arc::new(ResponseCatalog::uniform(4, 2, 10_000));
        let m = CacheManager::with_byte_capacity(
            100_000,
            catalog,
            UtilityModel::homogeneous(&LinearUtility, 2),
        );
        assert_eq!(m.cache_blocks(), 10);
    }

    #[test]
    fn prediction_accounting() {
        let mut m = manager(2, 1, 2);
        m.note_prediction_sent(64);
        m.note_prediction_sent(64);
        let s = m.metrics().summary();
        assert_eq!(s.predictions_sent, 2);
        assert_eq!(s.prediction_bytes, 128);
    }
}
