//! Backend-concurrency limiting (§5.4).
//!
//! Khameleon assumes backends scale to many concurrent speculative requests
//! (file systems, key-value stores).  Backends like PostgreSQL degrade past a
//! concurrency limit, so the paper post-processes schedules "to ensure that
//! they do not refer to blocks from more than `C − n` distinct requests",
//! where `C` is the backend's scalable concurrency and `n` the number of
//! queries it is already processing.

use std::collections::{HashMap, HashSet};

use crate::types::{BlockRef, RequestId};

/// Restricts `schedule` to blocks from at most `max_distinct` distinct
/// requests.
///
/// The first `max_distinct` distinct requests encountered (in schedule order,
/// i.e. by scheduler priority) are kept.  Blocks of excluded requests are
/// replaced, where possible, by the next unsent blocks of the kept requests
/// so the sender still fills the available bandwidth; if the kept requests
/// run out of blocks the schedule simply shrinks.
///
/// `blocks_per_request` maps every request to its total block count, and
/// `already_sent` to the number of blocks already pushed (so backfill starts
/// at the right index).
pub fn limit_distinct_requests(
    schedule: &[BlockRef],
    max_distinct: usize,
    blocks_per_request: impl Fn(RequestId) -> u32,
    already_sent: &HashMap<RequestId, u32>,
) -> Vec<BlockRef> {
    if max_distinct == 0 {
        return Vec::new();
    }
    // Pass 1: decide which requests to keep.
    let mut kept: Vec<RequestId> = Vec::with_capacity(max_distinct);
    let mut kept_set: HashSet<RequestId> = HashSet::with_capacity(max_distinct);
    for b in schedule {
        if kept_set.contains(&b.request) {
            continue;
        }
        if kept.len() < max_distinct {
            kept.push(b.request);
            kept_set.insert(b.request);
        }
    }

    // Track the next unsent block index per kept request (continuing each
    // prefix past what was already pushed) so the rewritten schedule always
    // pushes contiguous, never-duplicated prefixes.
    let mut next_index: HashMap<RequestId, u32> = kept
        .iter()
        .map(|&r| (r, already_sent.get(&r).copied().unwrap_or(0)))
        .collect();

    // Emits the next block of `r` if it still has capacity.
    let emit = |r: RequestId, next_index: &mut HashMap<RequestId, u32>| -> Option<BlockRef> {
        let idx = next_index[&r];
        if idx < blocks_per_request(r) {
            next_index.insert(r, idx + 1);
            Some(BlockRef::new(r, idx))
        } else {
            None
        }
    };

    let mut out = Vec::with_capacity(schedule.len());
    for b in schedule {
        // A slot owned by a kept request continues that request's prefix;
        // a slot owned by an excluded request backfills the least-advanced
        // kept request (breadth-first hedging among the allowed ones).
        let preferred = if kept_set.contains(&b.request) {
            Some(b.request)
        } else {
            None
        };
        let produced = preferred
            .and_then(|r| emit(r, &mut next_index))
            .or_else(|| {
                kept.iter()
                    .copied()
                    .filter(|&r| next_index[&r] < blocks_per_request(r))
                    .min_by_key(|&r| next_index[&r])
                    .and_then(|r| emit(r, &mut next_index))
            });
        if let Some(block) = produced {
            out.push(block);
        }
        // No capacity left among kept requests: drop the slot.
    }
    out
}

/// Counts the number of distinct requests a schedule refers to.
pub fn distinct_requests(schedule: &[BlockRef]) -> usize {
    schedule
        .iter()
        .map(|b| b.request)
        .collect::<HashSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(r: u32, i: u32) -> BlockRef {
        BlockRef::new(RequestId(r), i)
    }

    #[test]
    fn passes_through_when_under_limit() {
        let s = vec![b(0, 0), b(1, 0), b(0, 1)];
        let out = limit_distinct_requests(&s, 5, |_| 10, &HashMap::new());
        assert_eq!(out, s);
        assert_eq!(distinct_requests(&out), 2);
    }

    #[test]
    fn replaces_excess_requests_with_backfill() {
        // Limit 2: requests 0 and 1 are kept, blocks of 2 and 3 become extra
        // blocks of 0/1.
        let s = vec![b(0, 0), b(1, 0), b(2, 0), b(3, 0), b(0, 1)];
        let out = limit_distinct_requests(&s, 2, |_| 10, &HashMap::new());
        assert_eq!(out.len(), 5);
        assert!(distinct_requests(&out) <= 2);
        // Prefix continuity: block indices per request are consecutive.
        let mut per: HashMap<RequestId, Vec<u32>> = HashMap::new();
        for x in &out {
            per.entry(x.request).or_default().push(x.index);
        }
        for (_, mut v) in per {
            v.sort_unstable();
            for (i, idx) in v.iter().enumerate() {
                assert_eq!(*idx as usize, i);
            }
        }
    }

    #[test]
    fn drops_slots_when_kept_requests_exhausted() {
        // Only request 0 is kept and it has 2 blocks total; the two blocks of
        // request 1 can only backfill one extra block.
        let s = vec![b(0, 0), b(1, 0), b(1, 1), b(1, 2)];
        let out = limit_distinct_requests(&s, 1, |_| 2, &HashMap::new());
        assert_eq!(out, vec![b(0, 0), b(0, 1)]);
    }

    #[test]
    fn respects_already_sent_offsets() {
        let mut sent = HashMap::new();
        sent.insert(RequestId(0), 3u32);
        let s = vec![b(0, 3), b(7, 0)];
        let out = limit_distinct_requests(&s, 1, |_| 10, &sent);
        assert_eq!(out, vec![b(0, 3), b(0, 4)]);
    }

    #[test]
    fn zero_limit_empties_schedule() {
        let s = vec![b(0, 0)];
        assert!(limit_distinct_requests(&s, 0, |_| 10, &HashMap::new()).is_empty());
    }

    #[test]
    fn distinct_count() {
        assert_eq!(distinct_requests(&[]), 0);
        assert_eq!(distinct_requests(&[b(1, 0), b(1, 1), b(2, 0)]), 2);
    }
}
