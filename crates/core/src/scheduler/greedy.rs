//! The greedy scheduler (Listing 1 of the paper).
//!
//! Each scheduling step computes, for every request, the expected utility
//! gain of giving it one more block — `P_{i,t} · g(B_i + 1)` — and samples a
//! request proportionally to that gain.  Batches of up to `bs` blocks are
//! emitted at a time so the sender is never blocked; after a full schedule of
//! `C` blocks (the client cache size) the per-schedule allocation state
//! resets, mirroring the ring buffer overwriting itself (§5.3.1).
//!
//! Three refinements from / beyond the paper are implemented and individually
//! toggleable so their effect can be measured:
//!
//! * **Meta-request optimization** (§5.3.1): the (usually huge) set of
//!   requests with identical residual probability is never materialized;
//!   it is represented by a single meta-entry whose weight is the sum of its
//!   members', and a member is drawn uniformly when the meta-entry wins.
//! * **Client-cache tracking**: the scheduler simulates the client's
//!   deterministic FIFO ring (§3.3) so it knows which block index to send
//!   next for each request and never re-pushes a block that is still
//!   resident.  Disabling it reproduces the bare Listing 1 behaviour where
//!   per-schedule counts restart from zero.  A per-schedule eviction log
//!   lets re-predictions roll the simulated ring back *exactly* — including
//!   restoring entries that the rolled-back deliveries had evicted — so the
//!   simulation re-converges with the client's real ring (§5.3.2).
//! * **Incremental sampling** ([`crate::sampling`]): per-request gain
//!   weights live in a Fenwick sum tree instead of being rebuilt, sorted,
//!   and prefix-scanned for every block.
//!
//! # Per-block sampling cost
//!
//! With `T` touched requests (up to the schedule length `C`), `m`
//! materialized requests (`m ≤ T`, typically ≪ `T`), and `n` requests in the
//! catalog:
//!
//! | path | per-block cost |
//! |------|----------------|
//! | legacy scan, meta off | `O(n)` (Figure 16's unoptimized baseline) |
//! | legacy scan, meta on  | `O(T log T)` — sort + prefix scan per draw |
//! | incremental (Fenwick) | `O(m log m + log T)` |
//!
//! The incremental path exploits the shared-residual-tail structure of
//! [`HorizonModel`]: only the `m` materialized requests have per-slot tails
//! that must be refreshed when `t` advances; every touched-but-unmaterialized
//! request shares one scalar tail factor, and the untouched remainder is a
//! single meta-entry.  Over a full schedule this turns `O(C² log C)` of
//! sampling work into `O(C (m log m + log C))` — the same "cost must not
//! grow with catalog size" argument §5.3.1 makes for its 13× meta-request
//! speedup.  The legacy scan is retained behind
//! [`GreedySchedulerConfig::use_incremental_sampler`] `= false` as the
//! measured baseline.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::ResponseCatalog;
use crate::distribution::PredictionSummary;
use crate::sampling::{GainSampler, SampledGroup};
use crate::scheduler::{HorizonModel, Schedule};
use crate::types::{BlockRef, Duration, RequestId};
use crate::utility::UtilityModel;

/// Configuration of the greedy scheduler.
#[derive(Debug, Clone)]
pub struct GreedySchedulerConfig {
    /// Client cache size in blocks — the scheduling horizon `C`.
    pub cache_blocks: usize,
    /// Maximum number of blocks scheduled per iteration before checking for a
    /// fresh prediction (`bs`, default 100).
    pub batch_size: usize,
    /// Future discount γ ∈ [0, 1] (Eq. 1).  The default of 0.8 per slot keeps
    /// a confident short-term prediction from being swamped by the
    /// near-uniform residual mass that accumulates when the scheduling
    /// horizon (`C` slots) extends far past the predictor's own horizon;
    /// experiment configs that sweep γ pass their own value.
    pub gamma: f64,
    /// Time to place one block on the network at the current bandwidth
    /// estimate; used to convert slot indices into prediction offsets.
    pub slot_duration: Duration,
    /// Enables the meta-request optimization (§5.3.1).
    pub use_meta_request: bool,
    /// Simulate the client's FIFO ring so block indices continue across
    /// schedules and resident blocks are not re-pushed.
    pub track_client_cache: bool,
    /// Sample via the incrementally maintained Fenwick weight structure
    /// ([`crate::sampling`]) instead of rebuilding and scanning the touched
    /// set for every block.  `false` selects the legacy per-block scan (the
    /// Figure 16 baseline).  Both paths draw from the same distribution;
    /// only the per-block cost differs (see the module docs).
    pub use_incremental_sampler: bool,
    /// RNG seed for the proportional sampling, for reproducibility.
    pub seed: u64,
}

impl Default for GreedySchedulerConfig {
    fn default() -> Self {
        GreedySchedulerConfig {
            cache_blocks: 1024,
            batch_size: 100,
            gamma: 0.80,
            slot_duration: Duration::from_millis(1),
            use_meta_request: true,
            track_client_cache: true,
            use_incremental_sampler: true,
            seed: 0x5eed,
        }
    }
}

/// The greedy scheduler of §5.3.
pub struct GreedyScheduler {
    cfg: GreedySchedulerConfig,
    utility: UtilityModel,
    catalog: Arc<ResponseCatalog>,
    model: HorizonModel,
    rng: StdRng,
    /// Blocks allocated per request during the current schedule (Listing 1's
    /// `B`), kept sparse because only touched requests matter.
    allocated: HashMap<RequestId, u32>,
    /// Position within the current schedule (Listing 1's `t`).
    t: usize,
    /// Blocks scheduled in the current schedule, in slot order; needed to roll
    /// back not-yet-sent slots when a new prediction arrives (§5.3.2).
    current_schedule: Vec<BlockRef>,
    /// For each slot of `current_schedule`, the ring entry its delivery
    /// evicted (`None` when the ring still had room).  Rolling a slot back
    /// restores its evicted entry, keeping the simulated ring exactly equal
    /// to the client's (which never saw the rolled-back block and therefore
    /// never evicted anything).  Maintained only with `track_client_cache`.
    eviction_log: Vec<Option<BlockRef>>,
    /// Exact simulation of the client's ring-buffer contents (block refs in
    /// arrival order) when `track_client_cache` is on.
    ring: VecDeque<BlockRef>,
    /// Per-request resident block indices (a view over `ring`): tracking the
    /// exact indices lets the scheduler repair prefix gaps after evictions,
    /// since renderable quality depends on the contiguous prefix (§3.3).
    resident: HashMap<RequestId, BTreeSet<u32>>,
    /// Requests currently excluded from the meta group because they have
    /// explicit probability, allocations, or resident blocks.
    touched: HashSet<RequestId>,
    /// Incrementally maintained gain weights (the `use_incremental_sampler`
    /// path); kept in sync by `rebuild_sampler` / `refresh_after_allocation`.
    sampler: GainSampler,
    /// Catalog-wide first-block gain bound `ĝ₁`, precomputed at construction
    /// (O(1) for homogeneous utility models); the per-member weight of the
    /// untouched meta-group.
    meta_first_gain: f64,
    /// Number of prediction updates received (for instrumentation).
    updates: u64,
    /// Total blocks scheduled since creation (for instrumentation).
    scheduled_blocks: u64,
}

impl GreedyScheduler {
    /// Creates a scheduler with a uniform prior over all requests.
    pub fn new(
        cfg: GreedySchedulerConfig,
        utility: UtilityModel,
        catalog: Arc<ResponseCatalog>,
    ) -> Self {
        assert!(cfg.cache_blocks > 0, "cache must hold at least one block");
        assert!(cfg.batch_size > 0, "batch size must be positive");
        let model = HorizonModel::uniform(
            catalog.num_requests(),
            cfg.cache_blocks,
            cfg.slot_duration,
            cfg.gamma,
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        let meta_first_gain = utility.max_first_block_gain();
        let sampler = GainSampler::new(meta_first_gain);
        let mut s = GreedyScheduler {
            cfg,
            utility,
            catalog,
            model,
            rng,
            allocated: HashMap::new(),
            t: 0,
            current_schedule: Vec::new(),
            eviction_log: Vec::new(),
            ring: VecDeque::new(),
            resident: HashMap::new(),
            touched: HashSet::new(),
            sampler,
            meta_first_gain,
            updates: 0,
            scheduled_blocks: 0,
        };
        s.rebuild_touched();
        s
    }

    /// The configuration in use.
    pub fn config(&self) -> &GreedySchedulerConfig {
        &self.cfg
    }

    /// Number of prediction updates applied so far.
    pub fn prediction_updates(&self) -> u64 {
        self.updates
    }

    /// Total number of blocks scheduled so far.
    pub fn scheduled_blocks(&self) -> u64 {
        self.scheduled_blocks
    }

    /// Position within the current schedule (`t` in Listing 1).
    pub fn position(&self) -> usize {
        self.t
    }

    /// Updates the bandwidth-derived slot duration.  Takes effect on the next
    /// prediction update (the current materialized horizon is kept).
    pub fn set_slot_duration(&mut self, slot: Duration) {
        self.cfg.slot_duration = slot;
    }

    /// Applies a fresh prediction from the client.
    ///
    /// Per §5.3.2, scheduling work already handed to the sender is immutable:
    /// the caller passes `sender_position`, the number of blocks of the
    /// current schedule that have already been placed on the network.  Slots
    /// scheduled beyond that position are rolled back and re-planned under
    /// the new probabilities; slots before it are untouched.
    pub fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize) {
        self.model = HorizonModel::build(
            summary,
            self.cfg.cache_blocks,
            self.cfg.slot_duration,
            self.cfg.gamma,
        );
        self.updates += 1;
        let sender_position = sender_position.min(self.cfg.cache_blocks);
        if sender_position < self.t {
            // Roll back the not-yet-sent tail of the current schedule.
            while self.t > sender_position {
                if let Some(block) = self.current_schedule.pop() {
                    if let Some(c) = self.allocated.get_mut(&block.request) {
                        *c = c.saturating_sub(1);
                        if *c == 0 {
                            self.allocated.remove(&block.request);
                        }
                    }
                    let evicted = if self.cfg.track_client_cache {
                        self.eviction_log.pop().flatten()
                    } else {
                        None
                    };
                    self.undo_ring_delivery(block, evicted);
                }
                self.t -= 1;
            }
        } else {
            // The sender is ahead of the scheduler (it drained its queue);
            // skip the intervening slots.
            self.t = sender_position;
        }
        self.rebuild_touched();
    }

    /// Reverses one `deliver_to_ring`: removes the rolled-back block and
    /// restores the entry (if any) its delivery had evicted.  The client
    /// never received the rolled-back block, so its real ring still holds
    /// the older entry; without the restore the simulation silently loses
    /// it forever and the two rings diverge.
    fn undo_ring_delivery(&mut self, block: BlockRef, evicted: Option<BlockRef>) {
        if !self.cfg.track_client_cache {
            return;
        }
        debug_assert_eq!(
            self.ring.back(),
            Some(&block),
            "rollback must pop deliveries in reverse order"
        );
        if self.ring.back() == Some(&block) {
            self.ring.pop_back();
            if let Some(set) = self.resident.get_mut(&block.request) {
                set.remove(&block.index);
                if set.is_empty() {
                    self.resident.remove(&block.request);
                }
            }
        }
        if let Some(old) = evicted {
            self.ring.push_front(old);
            self.resident
                .entry(old.request)
                .or_default()
                .insert(old.index);
        }
    }

    fn rebuild_touched(&mut self) {
        self.touched.clear();
        for r in self.model.materialized() {
            self.touched.insert(r);
        }
        for &r in self.allocated.keys() {
            self.touched.insert(r);
        }
        if self.cfg.track_client_cache {
            for &r in self.resident.keys() {
                self.touched.insert(r);
            }
        }
        self.rebuild_sampler();
    }

    /// Rebuilds the incremental weight structure from scratch: `O(T log n)`
    /// with the meta-request optimization on, `O(n log n)` with it off
    /// (every untouched request gets an explicit shared-tail entry).  Called
    /// only when the whole state shifts (prediction update, schedule reset);
    /// per-block maintenance goes through `refresh_after_allocation`.
    fn rebuild_sampler(&mut self) {
        if !self.cfg.use_incremental_sampler {
            return;
        }
        self.sampler.rebuild(self.model.materialized().collect());
        self.sampler
            .set_shared_scale(self.model.residual_tail(self.t));
        // Sorted so shared-group slots (assigned in insertion order) have a
        // reproducible layout — HashSet iteration order is not deterministic.
        let mut touched: Vec<RequestId> = self.touched.iter().copied().collect();
        touched.sort_unstable();
        for r in touched {
            self.refresh_request_weight(r);
        }
        if self.cfg.use_meta_request {
            self.sampler
                .set_meta_members(self.model.num_requests() - self.touched.len());
        } else {
            // Materialize every untouched request explicitly (the unoptimized
            // baseline measured in Figure 16 / §5.3.1's 13× comparison); they
            // are unmaterialized in the model, so they share the scalar tail.
            self.sampler.set_meta_members(0);
            for i in 0..self.model.num_requests() {
                let r = RequestId::from(i);
                if !self.touched.contains(&r) {
                    let g = self.marginal_gain(r);
                    self.sampler.set_shared_gain(r, g);
                }
            }
        }
    }

    /// Re-derives one request's weight after its residency or allocation
    /// changed.  Materialized requests carry their full (gain × tail)
    /// weight; everything else carries only the gain part under the shared
    /// residual-tail scale.
    fn refresh_request_weight(&mut self, r: RequestId) {
        if self.model.is_materialized(r) {
            let w = self.gain_for(r);
            self.sampler.set_explicit_weight(r, w);
        } else {
            let g = self.marginal_gain(r);
            self.sampler.set_shared_gain(r, g);
        }
    }

    /// Incremental bookkeeping after allocating one block to `q`: the slot
    /// index advanced (refresh the `m` materialized weights and the shared
    /// scalar), `q`'s gain moved, an eviction may have changed another
    /// request's resident prefix, and `q` may have left the meta group.
    /// `O(m log m + log T)` — sub-linear in both touched-set and catalog
    /// size.
    fn refresh_after_allocation(
        &mut self,
        q: RequestId,
        evicted: Option<BlockRef>,
        newly_touched: bool,
    ) {
        self.sampler
            .set_shared_scale(self.model.residual_tail(self.t));
        for i in 0..self.sampler.explicit_ids().len() {
            let r = self.sampler.explicit_ids()[i];
            let w = self.gain_for(r);
            self.sampler.set_explicit_weight(r, w);
        }
        self.refresh_request_weight(q);
        if let Some(old) = evicted {
            if old.request != q {
                self.refresh_request_weight(old.request);
            }
        }
        if newly_touched && self.cfg.use_meta_request {
            self.sampler
                .set_meta_members(self.model.num_requests() - self.touched.len());
        }
    }

    /// Blocks of `request` the scheduler believes the client currently holds
    /// (as a renderable contiguous prefix) or will hold once the pending
    /// schedule is delivered.
    ///
    /// With cache tracking enabled the simulated ring already includes the
    /// blocks allocated in the current schedule (they are "delivered" to the
    /// simulation as they are scheduled), so it is the single source of truth;
    /// otherwise only the per-schedule allocation counts (bare Listing 1).
    /// The prefix — not the raw count — is used so that a response whose
    /// early blocks were evicted gets its prefix repaired before its tail is
    /// extended.
    fn effective_blocks(&self, request: RequestId) -> u32 {
        if self.cfg.track_client_cache {
            self.resident
                .get(&request)
                .map(resident_prefix_len)
                .unwrap_or(0)
        } else {
            self.allocated.get(&request).copied().unwrap_or(0)
        }
    }

    /// Marginal utility gain `g(B_i + 1)` of the next block for `request`
    /// (the probability-independent factor of its weight).
    fn marginal_gain(&self, request: RequestId) -> f64 {
        let have = self.effective_blocks(request);
        let nb = self.catalog.num_blocks(request);
        if have >= nb {
            return 0.0;
        }
        self.utility.table(request.index()).next_gain(have)
    }

    /// Expected utility gain of giving one more block to `request` at the
    /// current schedule position.
    fn gain_for(&self, request: RequestId) -> f64 {
        self.marginal_gain(request) * self.model.tail(request, self.t)
    }

    /// Draws one request proportionally to utility gain; returns `None` when
    /// every request is saturated or has zero gain.
    fn sample_request(&mut self) -> Option<RequestId> {
        if self.cfg.use_incremental_sampler {
            self.sample_request_incremental()
        } else {
            self.sample_request_scan()
        }
    }

    /// `O(m log m + log T)` proportional draw from the Fenwick weight
    /// structure.  The tree layouts are deterministic (index-sorted explicit
    /// group, reproducible slot order for the shared group), so a fixed seed
    /// yields a deterministic schedule.
    fn sample_request_incremental(&mut self) -> Option<RequestId> {
        let total = self.sampler.total();
        if total <= 0.0 {
            return None;
        }
        let x = self.rng.gen::<f64>() * total;
        match self.sampler.locate(x) {
            Some(SampledGroup::Request(r)) => Some(r),
            Some(SampledGroup::Meta) => self.sample_untouched(),
            None => None,
        }
    }

    /// The legacy per-block scan (the Figure 16 baseline): rebuilds, sorts,
    /// and prefix-scans the touched weights on every draw.
    fn sample_request_scan(&mut self) -> Option<RequestId> {
        // Weights of the touched (materialized / allocated / resident)
        // requests.  Sorted so the cumulative-sum sampling below is fully
        // deterministic under a fixed seed (HashSet iteration order is not).
        let mut touched: Vec<RequestId> = self.touched.iter().copied().collect();
        touched.sort_unstable();
        let mut weights: Vec<(RequestId, f64)> = Vec::with_capacity(touched.len() + 1);
        let mut total = 0.0;
        for r in touched {
            let w = self.gain_for(r);
            if w > 0.0 {
                total += w;
                weights.push((r, w));
            }
        }

        // Meta-request: all untouched requests share the residual tail and a
        // zero allocation, so their joint weight is count * residual_gain.
        let untouched = self.model.num_requests() - self.touched.len();
        let mut meta_weight = 0.0;
        if self.cfg.use_meta_request && untouched > 0 {
            let g1 = self.meta_gain();
            meta_weight = g1 * untouched as f64;
            total += meta_weight;
        } else if !self.cfg.use_meta_request {
            // Materialize every untouched request explicitly (the unoptimized
            // baseline measured in Figure 16 / §5.3.1's 13× comparison).
            for i in 0..self.model.num_requests() {
                let r = RequestId::from(i);
                if self.touched.contains(&r) {
                    continue;
                }
                let w = self.gain_for(r);
                if w > 0.0 {
                    total += w;
                    weights.push((r, w));
                }
            }
        }

        if total <= 0.0 {
            return None;
        }
        let mut x = self.rng.gen::<f64>() * total;
        for (r, w) in &weights {
            x -= w;
            if x <= 0.0 {
                return Some(*r);
            }
        }
        if meta_weight > 0.0 {
            return self.sample_untouched();
        }
        weights.last().map(|&(r, _)| r)
    }

    /// Marginal gain of the first block of a fresh (untouched) request:
    /// the catalog-wide first-block gain bound (precomputed at
    /// construction) times the shared residual tail.  Untouched requests
    /// all hold zero blocks, so the bound is exact for homogeneous utility
    /// models and a valid (uniformly applied) upper bound for heterogeneous
    /// ones.
    fn meta_gain(&self) -> f64 {
        self.meta_first_gain * self.model.residual_tail(self.t)
    }

    /// Uniformly samples a request not currently touched.
    fn sample_untouched(&mut self) -> Option<RequestId> {
        let n = self.model.num_requests();
        let untouched = n - self.touched.len();
        if untouched == 0 {
            return None;
        }
        // Rejection sampling: the touched set is tiny compared to n in every
        // realistic configuration, so this terminates almost immediately.  A
        // deterministic fallback scan guards pathological cases.
        for _ in 0..64 {
            let candidate = RequestId::from(self.rng.gen_range(0..n));
            if !self.touched.contains(&candidate) {
                return Some(candidate);
            }
        }
        (0..n)
            .map(RequestId::from)
            .find(|r| !self.touched.contains(r))
    }

    /// Schedules up to `count` blocks.
    ///
    /// Returns the blocks in push order.  Resets the per-schedule allocation
    /// state after a full schedule of `C` blocks, per Listing 1 lines 21–23.
    /// Callers that want Listing 1's "check for a new distribution every `bs`
    /// blocks" behaviour use [`GreedyScheduler::next_default_batch`].
    pub fn next_batch(&mut self, count: usize) -> Schedule {
        let want = count;
        let mut out = Vec::with_capacity(want);
        while out.len() < want {
            if self.t >= self.cfg.cache_blocks {
                // Full schedule allocated: reset (ring has overwritten itself).
                self.reset_schedule();
            }
            let Some(q) = self.sample_request() else {
                break;
            };
            let have = self.effective_blocks(q);
            let block = BlockRef::new(q, have);
            *self.allocated.entry(q).or_insert(0) += 1;
            let newly_touched = self.touched.insert(q);
            self.t += 1;
            self.scheduled_blocks += 1;
            self.current_schedule.push(block);
            let evicted = self.deliver_to_ring(block);
            out.push(block);
            if self.cfg.use_incremental_sampler {
                self.refresh_after_allocation(q, evicted, newly_touched);
            }
        }
        out
    }

    /// Schedules one full batch of `bs` blocks (the per-iteration unit of
    /// Listing 1).
    pub fn next_default_batch(&mut self) -> Schedule {
        self.next_batch(self.cfg.batch_size)
    }

    /// Delivers `block` to the simulated client ring, returning the entry it
    /// evicted (if the ring was full) and logging that eviction for exact
    /// rollback.
    fn deliver_to_ring(&mut self, block: BlockRef) -> Option<BlockRef> {
        if !self.cfg.track_client_cache {
            return None;
        }
        self.ring.push_back(block);
        self.resident
            .entry(block.request)
            .or_default()
            .insert(block.index);
        let mut evicted = None;
        if self.ring.len() > self.cfg.cache_blocks {
            if let Some(old) = self.ring.pop_front() {
                if let Some(set) = self.resident.get_mut(&old.request) {
                    set.remove(&old.index);
                    if set.is_empty() {
                        self.resident.remove(&old.request);
                    }
                }
                evicted = Some(old);
            }
        }
        self.eviction_log.push(evicted);
        evicted
    }

    fn reset_schedule(&mut self) {
        self.t = 0;
        self.allocated.clear();
        self.current_schedule.clear();
        self.eviction_log.clear();
        self.rebuild_touched();
    }

    /// The scheduler's current belief about the client's per-request resident
    /// block counts (empty unless cache tracking is enabled).
    pub fn simulated_cache(&self) -> HashMap<RequestId, u32> {
        self.resident
            .iter()
            .map(|(&r, set)| (r, set.len() as u32))
            .collect()
    }

    /// The simulated client ring contents in arrival order, oldest first
    /// (empty unless cache tracking is enabled).
    ///
    /// Exposed for tests and debugging: the rollback property tests replay
    /// random schedule / rollback / eviction sequences and assert this
    /// exactly matches a ground-truth replay of the client's FIFO ring.
    pub fn simulated_ring(&self) -> Vec<BlockRef> {
        self.ring.iter().copied().collect()
    }
}

impl GreedyScheduler {
    /// Expected utility (Eq. 2) of the blocks scheduled so far in the current
    /// schedule, starting from the cache allocation `initial`.
    pub fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        crate::scheduler::schedule_expected_utility(
            &self.current_schedule,
            &self.model,
            &self.utility,
            initial,
        )
    }
}

impl crate::scheduler::Scheduler for GreedyScheduler {
    fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize) {
        GreedyScheduler::update_prediction(self, summary, sender_position);
    }

    fn next_batch(&mut self, count: usize) -> Schedule {
        GreedyScheduler::next_batch(self, count)
    }

    fn set_slot_duration(&mut self, slot: Duration) {
        GreedyScheduler::set_slot_duration(self, slot);
    }

    fn simulated_cache(&self) -> HashMap<RequestId, u32> {
        GreedyScheduler::simulated_cache(self)
    }

    fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        GreedyScheduler::expected_utility(self, initial)
    }

    fn horizon(&self) -> usize {
        self.cfg.cache_blocks
    }

    fn prediction_updates(&self) -> u64 {
        self.updates
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Length of the contiguous prefix (starting at block 0) in a resident set.
fn resident_prefix_len(set: &BTreeSet<u32>) -> u32 {
    let mut len = 0;
    for &idx in set {
        if idx == len {
            len += 1;
        } else {
            break;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Time;
    use crate::utility::{GainTable, LinearUtility, PiecewiseUtility, PowerUtility};

    fn mk(n: usize, blocks: u32, cache_blocks: usize, meta: bool) -> GreedyScheduler {
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks,
            batch_size: 100,
            use_meta_request: meta,
            ..Default::default()
        };
        GreedyScheduler::new(
            cfg,
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog,
        )
    }

    #[test]
    fn fills_batches_and_respects_block_limits() {
        let mut s = mk(4, 2, 8, true);
        let batch = s.next_batch(8);
        assert_eq!(batch.len(), 8);
        // 4 requests × 2 blocks each = 8 blocks total; all must be distinct.
        let mut seen = HashSet::new();
        for b in &batch {
            assert!(seen.insert(*b), "block {b} scheduled twice");
            assert!(b.index < 2);
        }
        assert_eq!(s.scheduled_blocks(), 8);
    }

    #[test]
    fn concentrates_on_predicted_request() {
        let mut s = mk(100, 10, 50, true);
        let pred = PredictionSummary::point(100, RequestId(7), Time::ZERO);
        s.update_prediction(&pred, 0);
        let batch = s.next_batch(50);
        let for_7 = batch.iter().filter(|b| b.request == RequestId(7)).count();
        // With probability 1 on request 7, the vast majority of blocks go to
        // it (it only has 10 blocks, so exactly 10 here).
        assert_eq!(for_7, 10);
        // Block indices for request 7 are the full prefix 0..10.
        let mut idx: Vec<u32> = batch
            .iter()
            .filter(|b| b.request == RequestId(7))
            .map(|b| b.index)
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_prior_hedges_widely() {
        let mut s = mk(1000, 10, 200, true);
        let batch = s.next_batch(200);
        assert_eq!(batch.len(), 200);
        let distinct: HashSet<RequestId> = batch.iter().map(|b| b.request).collect();
        // With a uniform prior and linear utility, hedging should cover many
        // distinct requests (mostly first blocks).
        assert!(
            distinct.len() > 100,
            "only {} distinct requests",
            distinct.len()
        );
    }

    #[test]
    fn concave_utility_spreads_more_than_linear() {
        let n = 50;
        let blocks = 20;
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 100,
            ..Default::default()
        };
        let mut linear = GreedyScheduler::new(
            cfg.clone(),
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog.clone(),
        );
        let mut concave = GreedyScheduler::new(
            cfg,
            UtilityModel::homogeneous(&PowerUtility::new(0.3), blocks),
            catalog,
        );
        let pred = PredictionSummary::point(n, RequestId(0), Time::ZERO);
        linear.update_prediction(&pred, 0);
        concave.update_prediction(&pred, 0);
        let lb = linear.next_batch(100);
        let cb = concave.next_batch(100);
        let l_distinct: HashSet<_> = lb.iter().map(|b| b.request).collect();
        let c_distinct: HashSet<_> = cb.iter().map(|b| b.request).collect();
        // Concave utility saturates the likely request's marginal gain faster,
        // so it hedges across at least as many other requests.
        assert!(c_distinct.len() >= l_distinct.len());
    }

    #[test]
    fn tracks_client_cache_across_schedules() {
        // Cache comfortably larger than one response: the prefix continues
        // across batches instead of restarting at block 0.
        let mut s = mk(2, 8, 16, true);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        // First batch: 4 blocks, all for request 1 (indices 0..4).
        let b1 = s.next_batch(4);
        assert!(b1.iter().all(|b| b.request == RequestId(1)));
        // The next batch continues the prefix instead of restarting at 0.
        let b2 = s.next_batch(4);
        let idx: Vec<u32> = b2
            .iter()
            .filter(|b| b.request == RequestId(1))
            .map(|b| b.index)
            .collect();
        assert!(idx.iter().all(|&i| i >= 4), "indices restarted: {idx:?}");
        assert!(s.simulated_cache().contains_key(&RequestId(1)));
    }

    #[test]
    fn repairs_evicted_prefix_blocks() {
        // Cache (4 blocks) smaller than one response (8 blocks): pushing the
        // tail evicts the head, so the scheduler must circle back and repair
        // the renderable prefix rather than pushing ever-higher indices.
        let mut s = mk(2, 8, 4, true);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        let _ = s.next_batch(4); // indices 0..4 pushed, ring full
        let b2 = s.next_batch(4);
        // The first block of the second batch (index 4) evicts block 0, so a
        // later slot must re-push block 0.
        assert!(
            b2.iter().any(|b| b.index == 0),
            "prefix never repaired: {b2:?}"
        );
    }

    #[test]
    fn without_cache_tracking_indices_restart() {
        // Disable tracking: pure Listing 1 semantics.
        let catalog = Arc::new(ResponseCatalog::uniform(2, 8, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 4,
            track_client_cache: false,
            ..Default::default()
        };
        let mut s =
            GreedyScheduler::new(cfg, UtilityModel::homogeneous(&LinearUtility, 8), catalog);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        let _b1 = s.next_batch(4);
        let b2 = s.next_batch(4);
        assert!(
            b2.iter().any(|b| b.index == 0),
            "expected restart at block 0"
        );
    }

    #[test]
    fn sender_position_is_respected_on_update() {
        let mut s = mk(10, 4, 20, true);
        let _ = s.next_batch(10);
        assert_eq!(s.position(), 10);
        // New prediction arrives while the sender has already pushed 12 blocks
        // of this schedule: scheduling resumes at slot 12.
        let pred = PredictionSummary::point(10, RequestId(3), Time::ZERO);
        let resident_before = s.simulated_cache().get(&RequestId(3)).copied().unwrap_or(0);
        s.update_prediction(&pred, 12);
        assert_eq!(s.position(), 12);
        let batch = s.next_batch(100);
        // All probability mass sits on request 3, so the batch completes its
        // prefix (whatever the uniform warm-up batch already delivered) before
        // anything else — and nothing else has positive gain.
        let need = (4 - resident_before) as usize;
        assert!(batch.len() >= need, "batch too short: {batch:?}");
        assert!(
            batch.iter().take(need).all(|b| b.request == RequestId(3)),
            "request 3's prefix not completed first: {batch:?}"
        );
        assert_eq!(
            s.simulated_cache().get(&RequestId(3)).copied().unwrap_or(0),
            4,
            "request 3 should be fully resident after the update"
        );
    }

    #[test]
    fn exhausts_all_blocks_then_stops() {
        let mut s = mk(2, 2, 16, true);
        let batch = s.next_batch(16);
        // Only 4 distinct blocks exist; with cache tracking the scheduler
        // refuses to schedule duplicates within the ring's lifetime.
        assert_eq!(batch.len(), 4);
        assert!(s.next_batch(4).is_empty());
    }

    #[test]
    fn meta_and_materialized_paths_agree_statistically() {
        // With and without the meta-request optimization, the same prediction
        // should lead to a similar spread of scheduled requests.
        let mut with_meta = mk(200, 4, 100, true);
        let mut without_meta = mk(200, 4, 100, false);
        let pred = PredictionSummary::point(200, RequestId(5), Time::ZERO);
        with_meta.update_prediction(&pred, 0);
        without_meta.update_prediction(&pred, 0);
        let a = with_meta.next_batch(100);
        let b = without_meta.next_batch(100);
        let a5 = a.iter().filter(|x| x.request == RequestId(5)).count();
        let b5 = b.iter().filter(|x| x.request == RequestId(5)).count();
        assert_eq!(a5, 4);
        assert_eq!(b5, 4);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mk_seeded = || {
            let catalog = Arc::new(ResponseCatalog::uniform(50, 5, 100));
            GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: 60,
                    seed: 42,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, 5),
                catalog,
            )
        };
        let mut a = mk_seeded();
        let mut b = mk_seeded();
        assert_eq!(a.next_batch(60), b.next_batch(60));
    }

    #[test]
    fn legacy_scan_path_still_schedules() {
        let catalog = Arc::new(ResponseCatalog::uniform(4, 2, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 8,
            use_incremental_sampler: false,
            ..Default::default()
        };
        let mut s =
            GreedyScheduler::new(cfg, UtilityModel::homogeneous(&LinearUtility, 2), catalog);
        let batch = s.next_batch(8);
        assert_eq!(batch.len(), 8);
        let mut seen = HashSet::new();
        for b in &batch {
            assert!(seen.insert(*b), "block {b} scheduled twice");
        }
    }

    /// Builds one scheduler per seed, applies `pred`, and returns how often
    /// the first sampled block went to `watch` and how often it went to a
    /// request that was untouched (not materialized) at draw time.
    fn first_draw_stats(
        catalog: &Arc<ResponseCatalog>,
        cache: usize,
        incremental: bool,
        pred: &PredictionSummary,
        watch: RequestId,
        utility: &UtilityModel,
        seeds: u64,
    ) -> (f64, f64) {
        let materialized: HashSet<RequestId> = pred.materialized_requests().into_iter().collect();
        let mut watched = 0usize;
        let mut untouched = 0usize;
        for seed in 0..seeds {
            let mut s = GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: cache,
                    use_incremental_sampler: incremental,
                    seed,
                    ..Default::default()
                },
                utility.clone(),
                catalog.clone(),
            );
            s.update_prediction(pred, 0);
            let batch = s.next_batch(1);
            let Some(first) = batch.first() else { continue };
            if first.request == watch {
                watched += 1;
            }
            if !materialized.contains(&first.request) {
                untouched += 1;
            }
        }
        (
            watched as f64 / seeds as f64,
            untouched as f64 / seeds as f64,
        )
    }

    fn sparse_pred(n: usize, entries: Vec<(RequestId, f64)>, residual: f64) -> PredictionSummary {
        let dist = crate::distribution::SparseDistribution::from_entries(n, entries, residual);
        let slices = PredictionSummary::default_deltas()
            .into_iter()
            .map(|delta| crate::distribution::HorizonSlice {
                delta,
                dist: dist.clone(),
            })
            .collect();
        PredictionSummary::new(n, slices, Time::ZERO)
    }

    #[test]
    fn incremental_and_scan_first_draw_distributions_match() {
        // Statistical parity: for the same prediction, the stationary
        // first-draw distribution of the Fenwick sampler must match the
        // legacy scan's within a seed-controlled tolerance (both paths draw
        // from the identical weight decomposition; only the cost differs).
        let n = 100;
        let catalog = Arc::new(ResponseCatalog::uniform(n, 4, 1000));
        let utility = UtilityModel::homogeneous(&LinearUtility, 4);
        let pred = sparse_pred(n, vec![(RequestId(5), 0.4), (RequestId(9), 0.2)], 0.4);
        let seeds = 400;
        let (inc_watch, inc_meta) =
            first_draw_stats(&catalog, 50, true, &pred, RequestId(5), &utility, seeds);
        let (scan_watch, scan_meta) =
            first_draw_stats(&catalog, 50, false, &pred, RequestId(5), &utility, seeds);
        assert!(
            (inc_watch - scan_watch).abs() < 0.1,
            "request-5 share diverged: incremental {inc_watch} vs scan {scan_watch}"
        );
        assert!(
            (inc_meta - scan_meta).abs() < 0.1,
            "untouched share diverged: incremental {inc_meta} vs scan {scan_meta}"
        );
        // Sanity: the materialized request actually dominates the residual.
        assert!(inc_watch > 0.3, "request-5 share only {inc_watch}");
    }

    #[test]
    fn incremental_and_scan_agree_on_point_prediction() {
        // Under a point prediction the draw is deterministic regardless of
        // sampler: both paths must allocate exactly the predicted request's
        // blocks, in prefix order.
        for incremental in [true, false] {
            let catalog = Arc::new(ResponseCatalog::uniform(50, 6, 1000));
            let mut s = GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: 40,
                    use_incremental_sampler: incremental,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, 6),
                catalog,
            );
            s.update_prediction(&PredictionSummary::point(50, RequestId(3), Time::ZERO), 0);
            let batch = s.next_batch(40);
            let expected: Vec<BlockRef> = (0..6).map(|j| BlockRef::new(RequestId(3), j)).collect();
            assert_eq!(batch, expected, "incremental={incremental}");
        }
    }

    #[test]
    fn meta_gain_uses_catalog_wide_bound() {
        // Regression for the meta-weight bug: the untouched meta-group's
        // per-member gain used `utility.table(0).next_gain(0)`.  With a
        // heterogeneous model whose table 0 has a tiny first-block gain, that
        // under-weighted every untouched request ~50×, starving the hedge.
        // The fix uses the catalog-wide first-block gain bound.
        let n = 40;
        let tiny_first = PiecewiseUtility::from_points(vec![(0.5, 0.01)], "tiny-first");
        let mut tables = vec![GainTable::new(&tiny_first, 2)]; // g(1) = 0.01
        tables.extend((1..n).map(|_| GainTable::new(&LinearUtility, 2))); // g(1) = 0.5
        let utility = UtilityModel::per_request(tables);
        // Half the mass on materialized request 1, half residual across the
        // other 39: untouched and request 1 should split the first draw
        // roughly evenly (19.5 · residual/request ≈ 0.5 · p₁ here).
        let pred = sparse_pred(n, vec![(RequestId(1), 0.5)], 0.5);
        let catalog = Arc::new(ResponseCatalog::uniform(n, 2, 1000));
        for incremental in [true, false] {
            let (watch, untouched_share) = first_draw_stats(
                &catalog,
                30,
                incremental,
                &pred,
                RequestId(1),
                &utility,
                300,
            );
            assert!(
                untouched_share > 0.25,
                "untouched share {untouched_share} (request-1 share {watch}) — \
                 meta group under-weighted (incremental={incremental})"
            );
        }
    }

    #[test]
    fn rollback_across_eviction_restores_ring() {
        // Headline regression: rolling back a block whose delivery evicted an
        // older ring entry must restore that entry, or the simulated cache
        // diverges from the client's forever.
        let mut s = mk(2, 4, 3, true);
        let pred = PredictionSummary::point(2, RequestId(0), Time::ZERO);
        s.update_prediction(&pred, 0);
        // Fill the schedule (and the ring) with request 0's prefix 0..3.
        let b1 = s.next_batch(3);
        assert_eq!(
            b1,
            (0..3)
                .map(|j| BlockRef::new(RequestId(0), j))
                .collect::<Vec<_>>()
        );
        // Next block wraps the schedule and delivers block 3, evicting
        // block 0 from the full ring.
        let b2 = s.next_batch(1);
        assert_eq!(b2, vec![BlockRef::new(RequestId(0), 3)]);
        assert_eq!(
            s.simulated_ring(),
            vec![
                BlockRef::new(RequestId(0), 1),
                BlockRef::new(RequestId(0), 2),
                BlockRef::new(RequestId(0), 3),
            ]
        );
        // The sender never transmitted block 3; a re-prediction rolls it
        // back.  The eviction must be undone: block 0 returns to the ring.
        s.update_prediction(&pred, 0);
        assert_eq!(
            s.simulated_ring(),
            vec![
                BlockRef::new(RequestId(0), 0),
                BlockRef::new(RequestId(0), 1),
                BlockRef::new(RequestId(0), 2),
            ],
            "evicted entry not restored on rollback"
        );
        assert_eq!(s.simulated_cache().get(&RequestId(0)), Some(&3));
        // And scheduling resumes from the repaired prefix: block 3 again,
        // not a spurious re-push of block 0.
        let b3 = s.next_batch(1);
        assert_eq!(b3, vec![BlockRef::new(RequestId(0), 3)]);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        /// Ground-truth replay of the client's FIFO ring: the client
        /// receives exactly the committed schedules plus the surviving
        /// (non-rolled-back) prefix of the current one, in order, through a
        /// capacity-`C` FIFO.
        struct ClientReplay {
            cap: usize,
            history: Vec<BlockRef>,
            current: Vec<BlockRef>,
            t: usize,
        }

        impl ClientReplay {
            fn new(cap: usize) -> Self {
                ClientReplay {
                    cap,
                    history: Vec::new(),
                    current: Vec::new(),
                    t: 0,
                }
            }

            fn commit(&mut self) {
                self.history.append(&mut self.current);
                self.t = 0;
            }

            fn on_batch(&mut self, requested: usize, batch: &[BlockRef]) {
                for &b in batch {
                    if self.t >= self.cap {
                        self.commit();
                    }
                    self.current.push(b);
                    self.t += 1;
                }
                // A short batch means the scheduler ran one more loop
                // iteration (which resets at the schedule boundary) before
                // failing to sample.
                if batch.len() < requested && self.t >= self.cap {
                    self.commit();
                }
            }

            fn on_update(&mut self, sender_position: usize) {
                let pos = sender_position.min(self.cap);
                if pos < self.t {
                    self.current.truncate(self.current.len() - (self.t - pos));
                    self.t = pos;
                } else {
                    self.t = pos;
                }
            }

            fn ring(&self) -> Vec<BlockRef> {
                let all: Vec<BlockRef> = self
                    .history
                    .iter()
                    .chain(self.current.iter())
                    .copied()
                    .collect();
                let start = all.len().saturating_sub(self.cap);
                all[start..].to_vec()
            }
        }

        fn replay_ops(
            n: usize,
            blocks: u32,
            cache: usize,
            seed: u64,
            incremental: bool,
            ops: &[(u8, usize, usize)],
        ) {
            let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
            let mut s = GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: cache,
                    seed,
                    use_incremental_sampler: incremental,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, blocks),
                catalog,
            );
            let mut client = ClientReplay::new(cache);
            for &(kind, a, b) in ops {
                match kind {
                    0 | 1 => {
                        let k = a % 5 + 1;
                        let batch = s.next_batch(k);
                        client.on_batch(k, &batch);
                    }
                    2 => {
                        // The sender never reports a position past the
                        // scheduler's (it can only transmit scheduled
                        // blocks), so rollbacks are within the current tail.
                        let pos = b % (s.position() + 1);
                        let pred = PredictionSummary::point(n, RequestId::from(a % n), Time::ZERO);
                        s.update_prediction(&pred, pos);
                        client.on_update(pos);
                    }
                    _ => {
                        let pos = b % (s.position() + 1);
                        let pred = PredictionSummary::uniform(n, Time::ZERO);
                        s.update_prediction(&pred, pos);
                        client.on_update(pos);
                    }
                }
                prop_assert_eq!(
                    s.simulated_ring(),
                    client.ring(),
                    "ring diverged after op ({}, {}, {}) [incremental={}]",
                    kind,
                    a,
                    b,
                    incremental
                );
                // Resident counts are a view over the ring.
                let mut counts: HashMap<RequestId, u32> = HashMap::new();
                for blk in client.ring() {
                    *counts.entry(blk.request).or_insert(0) += 1;
                }
                prop_assert_eq!(s.simulated_cache(), counts);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The greedy scheduler never emits duplicate blocks while the ring
            /// still holds them, never exceeds per-request block counts, and
            /// always makes progress while capacity remains — on both sampling
            /// paths.
            #[test]
            fn schedule_is_well_formed(
                n in 1usize..40,
                blocks in 1u32..8,
                cache in 1usize..64,
                seed in 0u64..1000
            ) {
                for incremental in [true, false] {
                    let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
                    let cfg = GreedySchedulerConfig {
                        cache_blocks: cache,
                        seed,
                        use_incremental_sampler: incremental,
                        ..Default::default()
                    };
                    let mut s = GreedyScheduler::new(
                        cfg,
                        UtilityModel::homogeneous(&LinearUtility, blocks),
                        catalog,
                    );
                    let batch = s.next_batch(cache);
                    let expected = cache.min(n * blocks as usize);
                    prop_assert_eq!(batch.len(), expected);
                    let mut seen = HashSet::new();
                    for b in &batch {
                        prop_assert!(b.request.index() < n);
                        prop_assert!(b.index < blocks);
                        prop_assert!(seen.insert(*b), "duplicate block {}", b);
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Replaying any random schedule / rollback / eviction sequence,
            /// the scheduler's simulated ring exactly equals a ground-truth
            /// replay of the client's FIFO ring — including rollbacks of
            /// blocks whose delivery evicted older entries.
            #[test]
            fn simulated_ring_matches_client_replay(
                n in 1usize..8,
                blocks in 1u32..5,
                cache in 1usize..10,
                seed in 0u64..10_000,
                ops in collection::vec((0u8..4, 0usize..64, 0usize..64), 1..20)
            ) {
                replay_ops(n, blocks, cache, seed, true, &ops);
                replay_ops(n, blocks, cache, seed, false, &ops);
            }
        }
    }
}
