//! The greedy scheduler (Listing 1 of the paper).
//!
//! Each scheduling step computes, for every request, the expected utility
//! gain of giving it one more block — `P_{i,t} · g(B_i + 1)` — and samples a
//! request proportionally to that gain.  Batches of up to `bs` blocks are
//! emitted at a time so the sender is never blocked; after a full schedule of
//! `C` blocks (the client cache size) the per-schedule allocation state
//! resets, mirroring the ring buffer overwriting itself (§5.3.1).
//!
//! Three refinements from / beyond the paper are implemented and individually
//! toggleable so their effect can be measured:
//!
//! * **Meta-request optimization** (§5.3.1): the (usually huge) set of
//!   requests with identical residual probability is never materialized;
//!   it is represented by a single meta-entry whose weight is the sum of its
//!   members', and a member is drawn uniformly when the meta-entry wins.
//! * **Client-cache tracking**: the scheduler simulates the client's
//!   deterministic FIFO ring (§3.3) so it knows which block index to send
//!   next for each request and never re-pushes a block that is still
//!   resident.  Disabling it reproduces the bare Listing 1 behaviour where
//!   per-schedule counts restart from zero.  A per-schedule eviction log
//!   lets re-predictions roll the simulated ring back *exactly* — including
//!   restoring entries that the rolled-back deliveries had evicted — so the
//!   simulation re-converges with the client's real ring (§5.3.2).
//! * **Incremental sampling** ([`crate::sampling`]): per-request gain
//!   weights live in Fenwick sum trees instead of being rebuilt, sorted,
//!   and prefix-scanned for every block, with the lazy variant grouping
//!   materialized requests whose tails evolve by the same per-slot
//!   multiplier into shared buckets, each carrying one scalar factor.
//!
//! # Per-block sampling cost
//!
//! With `T` touched requests (up to the schedule length `C`), `m`
//! materialized requests (`m ≤ T`, typically ≪ `T`), `b` distinct tail
//! shapes (`b ≤ m`; `b = 1` for homogeneous-tail predictions), and `n`
//! requests in the catalog:
//!
//! | [`SamplerVariant`] | per-block cost |
//! |------|----------------|
//! | [`Scan`](SamplerVariant::Scan), meta off | `O(n)` (Figure 16's unoptimized baseline) |
//! | [`Scan`](SamplerVariant::Scan), meta on  | `O(T log T)` — sort + prefix scan per draw |
//! | [`Eager`](SamplerVariant::Eager) | `O(m log m + log T)` — every materialized weight rewritten per slot |
//! | [`Lazy`](SamplerVariant::Lazy) | `O(b log m + log T)` — one scalar per shape bucket per slot |
//!
//! The incremental variants exploit the shared-residual-tail structure of
//! [`HorizonModel`]: every touched-but-unmaterialized request shares one
//! scalar tail factor, and the untouched remainder is one meta-entry per
//! utility class (exact per-class first-block gains, see
//! [`UtilityModel::class_catalog`]).  The lazy variant additionally
//! exploits the model's [tail-shape
//! partition](crate::scheduler::TailShapePartition): materialized requests
//! with proportional tails share one bucket factor, so advancing the slot
//! index touches `O(b)` scalars plus the small irregular exact-refresh set
//! instead of rewriting all `m` materialized weights.  Over a full schedule
//! this turns `O(C² log C)` of sampling work into `O(C (b log m + log C))` —
//! per-block cost flat in `m` for homogeneous-tail workloads, the same
//! "cost must not grow with catalog size" argument §5.3.1 makes for its 13×
//! meta-request speedup.  The scan and eager paths are retained behind
//! [`GreedySchedulerConfig::sampler`] as the measured baselines, and all
//! three variants walk the same segment layout and consume the RNG
//! identically, so a fixed seed yields block-for-block identical schedules
//! across variants (enforced by a 256-case parity proptest below).
//!
//! Three further hot-path properties:
//!
//! * **Diff-based prediction updates**: the client re-sends its whole
//!   predicted distribution on every interaction, so `update_prediction` is
//!   the hot path once per-block cost is flat.  Successive predictions
//!   usually share most materialized requests, so the update is applied as
//!   a diff ([`HorizonModel::apply_update`]): unchanged requests keep their
//!   tails, bucket membership, and Fenwick entries; shape-preserving
//!   changes are `O(1)` coefficient rescales; only the structurally changed
//!   set is recomputed, reclassified, and mirrored into the sampler as
//!   point updates (tombstoned removals + appends).  Oversized diffs,
//!   changed horizon parameters, and bucket-cap pressure fall back to the
//!   full rebuild ([`GreedySchedulerConfig::prediction_diff`] disables the
//!   path entirely for the ablation baseline).
//! * **Wrap carry-over**: when a schedule completes (`t` reaches `C`) the
//!   horizon model is unchanged and tails are reusable at `t = 0`, so
//!   [`reset_schedule`](GreedyScheduler::next_batch) carries the explicit
//!   shape buckets and the shared-tail group across the wrap instead of
//!   rebuilding the sampler from scratch — with cache tracking on, a wrap
//!   costs `O(b)` factor resets plus compaction of any requests whose only
//!   claim to the touched set was a since-cleared allocation.
//! * **Sender-ahead slot gaps**: a `sender_position` beyond the scheduler's
//!   `t` (the sender drained its queue past the planner) is represented as
//!   explicit empty slots in the slot-aligned schedule log, so a later
//!   rollback below the gap pops exactly the right entries; per-update gap
//!   creation is rate-limited ([`GreedySchedulerConfig::max_gap_fraction`])
//!   so an adversarial sender repeatedly claiming positions near `C`
//!   cannot force a schedule wrap per update.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[cfg(feature = "audit")]
use crate::audit::{AuditCheck, AuditConfig, AuditReport, AuditViolation, SamplerAuditor};
use crate::block::ResponseCatalog;
use crate::distribution::PredictionSummary;
use crate::sampling::{GainSampler, SampledGroup, SamplerVariant};
use crate::scheduler::{HorizonModel, Schedule};
use crate::types::{BlockRef, Duration, RequestId};
use crate::utility::{UtilityClassCatalog, UtilityModel};

/// Configuration of the greedy scheduler.
#[derive(Debug, Clone)]
pub struct GreedySchedulerConfig {
    /// Client cache size in blocks — the scheduling horizon `C`.
    pub cache_blocks: usize,
    /// Maximum number of blocks scheduled per iteration before checking for a
    /// fresh prediction (`bs`, default 100).
    pub batch_size: usize,
    /// Future discount γ ∈ [0, 1] (Eq. 1).  The default of 0.8 per slot keeps
    /// a confident short-term prediction from being swamped by the
    /// near-uniform residual mass that accumulates when the scheduling
    /// horizon (`C` slots) extends far past the predictor's own horizon;
    /// experiment configs that sweep γ pass their own value.
    pub gamma: f64,
    /// Time to place one block on the network at the current bandwidth
    /// estimate; used to convert slot indices into prediction offsets.
    pub slot_duration: Duration,
    /// Enables the meta-request optimization (§5.3.1).
    pub use_meta_request: bool,
    /// Simulate the client's FIFO ring so block indices continue across
    /// schedules and resident blocks are not re-pushed.
    pub track_client_cache: bool,
    /// Which sampling implementation performs the per-block proportional
    /// draw: the legacy per-block scan (the Figure 16 baseline), the eager
    /// Fenwick sampler (every materialized weight rewritten per slot), or
    /// the default lazy shape-bucket sampler.  All variants draw identical
    /// schedules under a fixed seed; only the per-block cost differs (see
    /// the module docs).
    pub sampler: SamplerVariant,
    /// Apply prediction updates as diffs against the previous prediction
    /// ([`HorizonModel::apply_update`]) instead of rebuilding the model and
    /// sampler from scratch.  Falls back to a full rebuild automatically
    /// when the diff is too large; disable only to measure the rebuild
    /// baseline.
    pub prediction_diff: bool,
    /// Cap on sender-ahead gap-slot creation per prediction update, as a
    /// fraction of the schedule horizon.  A buggy or adversarial sender
    /// repeatedly claiming positions near `C` would otherwise force a
    /// schedule wrap per update; positions beyond the cap are clamped and
    /// counted in [`GreedyScheduler::rejected_gap_slots`].
    pub max_gap_fraction: f64,
    /// RNG seed for the proportional sampling, for reproducibility.
    pub seed: u64,
}

impl GreedySchedulerConfig {
    /// Maximum sender-ahead gap slots one prediction update may create (at
    /// least 1, at most the horizon).
    pub fn max_gap_slots(&self) -> usize {
        ((self.cache_blocks as f64 * self.max_gap_fraction).ceil() as usize)
            .clamp(1, self.cache_blocks)
    }
}

impl Default for GreedySchedulerConfig {
    fn default() -> Self {
        GreedySchedulerConfig {
            cache_blocks: 1024,
            batch_size: 100,
            gamma: 0.80,
            slot_duration: Duration::from_millis(1),
            use_meta_request: true,
            track_client_cache: true,
            sampler: SamplerVariant::Lazy,
            prediction_diff: true,
            max_gap_fraction: 0.5,
            seed: 0x5eed,
        }
    }
}

/// Catalog- and utility-derived scheduler state that is identical for every
/// scheduler built over the same `(UtilityModel, ResponseCatalog)` pair: the
/// utility-class catalog, per-class first-block gains, and per-request block
/// counts.  Multi-session servers share one instance via `Arc` (see
/// [`SessionManager`](crate::session::SessionManager)) instead of
/// re-deriving `O(n)` state per client.
#[derive(Debug)]
pub struct GreedyContext {
    /// The utility model the context was derived from, kept so
    /// [`GreedyScheduler::with_context`] can reject a context paired with a
    /// different model (same-sized catalogs would otherwise be silently
    /// mis-priced).
    utility: UtilityModel,
    /// Per-utility-class view of the catalog (one class per distinct gain
    /// table): exact first-block gains for the per-class meta-entries.
    classes: UtilityClassCatalog,
    /// Exact first-block gain of each utility class, in class order.
    meta_gains: Vec<f64>,
    /// Per-request block counts, copied out of the catalog into one dense
    /// array: the per-block gain computation reads a 4-byte entry instead
    /// of chasing the catalog's per-request layout structs.
    num_blocks: Vec<u32>,
}

impl GreedyContext {
    /// Derives the shared context for a utility model over a catalog.
    pub fn new(utility: &UtilityModel, catalog: &ResponseCatalog) -> Self {
        let num_requests = catalog.num_requests();
        let num_blocks: Vec<u32> = (0..num_requests)
            .map(|i| catalog.num_blocks(RequestId::from(i)))
            .collect();
        let classes = utility.class_catalog(num_requests);
        let meta_gains: Vec<f64> = classes.classes().map(|c| c.first_gain()).collect();
        GreedyContext {
            utility: utility.clone(),
            classes,
            meta_gains,
            num_blocks,
        }
    }

    /// Number of requests the context was derived for.
    pub fn num_requests(&self) -> usize {
        self.num_blocks.len()
    }
}

/// The greedy scheduler of §5.3.
pub struct GreedyScheduler {
    cfg: GreedySchedulerConfig,
    utility: UtilityModel,
    /// The probability model, behind an `Arc` so sessions with bit-identical
    /// predictions can share one instance via a [`ModelCache`]
    /// (`crate::scheduler::ModelCache`).  Reads go through the `Arc`; the
    /// diff path mutates via [`Arc::make_mut`], which *is* the
    /// copy-on-write split when the model is shared.
    model: Arc<HorizonModel>,
    /// Shared dedup registry; `None` outside multi-session deployments.
    /// Full rebuilds resolve through it by build-input fingerprint; full
    /// diff updates resolve through it by *chain key* (base key + summary
    /// fingerprint), so sessions with identical update histories share one
    /// model at every step — see [`crate::scheduler::dedup`].
    model_cache: Option<Arc<crate::scheduler::ModelCache>>,
    /// The derivation key of `model` in the attached cache; `None` when the
    /// model is private (no cache, sparse-updated, or pre-attach history),
    /// which routes the next full update through a canonical rebuild.
    model_key: Option<crate::scheduler::dedup::ModelKey>,
    rng: StdRng,
    /// Blocks allocated per request during the current schedule (Listing 1's
    /// `B`), kept sparse because only touched requests matter.
    allocated: HashMap<RequestId, u32>,
    /// Position within the current schedule (Listing 1's `t`).
    t: usize,
    /// Slot-aligned log of the current schedule: entry `k` is the block
    /// scheduled for slot `k`, or `None` for a slot the sender consumed
    /// while running ahead of the scheduler.  Invariant:
    /// `current_schedule.len() == t` (debug-asserted), which is what makes
    /// rollbacks across sender-ahead gaps pop the right entries (§5.3.2).
    current_schedule: Vec<Option<BlockRef>>,
    /// For each slot of `current_schedule`, the ring entry its delivery
    /// evicted (`None` when the ring still had room, or for a gap slot).
    /// Rolling a slot back restores its evicted entry, keeping the simulated
    /// ring exactly equal to the client's (which never saw the rolled-back
    /// block and therefore never evicted anything).  Maintained only with
    /// `track_client_cache`, where it stays slot-aligned with
    /// `current_schedule`.
    eviction_log: Vec<Option<BlockRef>>,
    /// Exact simulation of the client's ring-buffer contents (block refs in
    /// arrival order) when `track_client_cache` is on.
    ring: VecDeque<BlockRef>,
    /// Per-request resident block indices (a view over `ring`): tracking the
    /// exact indices lets the scheduler repair prefix gaps after evictions,
    /// since renderable quality depends on the contiguous prefix (§3.3).
    resident: HashMap<RequestId, BTreeSet<u32>>,
    /// Requests currently excluded from the meta group because they have
    /// explicit probability, allocations, or resident blocks — dense flags
    /// indexed by request, so the per-block membership checks are single
    /// byte loads instead of hash probes into a table that outgrows the
    /// cache at large `m`.
    touched: Vec<bool>,
    /// Canonical draw order of the shared-tail segment: the
    /// touched-but-unmaterialized requests (or, with the meta-request
    /// optimization off, *every* unmaterialized request) in
    /// rebuild-sorted-then-touch order.  The scan variant iterates this
    /// directly; the incremental sampler's shared group mirrors it slot for
    /// slot, which is what makes the variants draw identically.
    shared_order: Vec<RequestId>,
    /// Shared catalog/utility-derived state (classes, meta gains, block
    /// counts) — one `Arc` per `(utility, catalog)` pair across sessions.
    ctx: Arc<GreedyContext>,
    /// Touched-request count per utility class; the complement (against the
    /// class size) is each meta-entry's untouched member count.
    touched_per_class: Vec<usize>,
    /// Incrementally maintained gain weights (the `Eager` / `Lazy`
    /// variants); kept in sync by `rebuild_sampler` /
    /// `refresh_after_allocation` / the wrap carry-over / the diff path.
    sampler: GainSampler,
    /// Number of prediction updates received (for instrumentation).
    updates: u64,
    /// Prediction updates applied through the diff path (the rest fell back
    /// to a full rebuild).
    diff_updates: u64,
    /// Diff-path updates that additionally used a precomputed changed-set
    /// ([`Self::update_prediction_sparse`]) — no signature scan at all.
    sparse_updates: u64,
    /// Total blocks scheduled since creation (for instrumentation).
    scheduled_blocks: u64,
    /// Schedule slots skipped because the sender reported a position ahead
    /// of the scheduler (for instrumentation).
    gap_slots: u64,
    /// Sender-ahead gap slots rejected by the per-update cap
    /// ([`GreedySchedulerConfig::max_gap_fraction`]).
    gap_slots_rejected: u64,
    /// Attached runtime invariant auditor (`None` until
    /// [`GreedyScheduler::audit_attach`]); absent entirely without the
    /// `audit` feature, so the disabled cost is zero.
    #[cfg(feature = "audit")]
    auditor: Option<SamplerAuditor>,
}

impl GreedyScheduler {
    /// Creates a scheduler with a uniform prior over all requests.
    pub fn new(
        cfg: GreedySchedulerConfig,
        utility: UtilityModel,
        catalog: Arc<ResponseCatalog>,
    ) -> Self {
        let ctx = Arc::new(GreedyContext::new(&utility, &catalog));
        Self::with_context(cfg, utility, catalog, ctx)
    }

    /// Creates a scheduler reusing a shared [`GreedyContext`] (derived from
    /// the same utility model and catalog) instead of computing its own —
    /// the multi-session path, where N sessions over one catalog share one
    /// `O(n)` context.
    pub fn with_context(
        cfg: GreedySchedulerConfig,
        utility: UtilityModel,
        catalog: Arc<ResponseCatalog>,
        ctx: Arc<GreedyContext>,
    ) -> Self {
        assert!(cfg.cache_blocks > 0, "cache must hold at least one block");
        assert!(cfg.batch_size > 0, "batch size must be positive");
        let num_requests = catalog.num_requests();
        assert_eq!(
            ctx.num_requests(),
            num_requests,
            "shared context derived for a different catalog"
        );
        assert!(
            ctx.utility.same_tables(&utility),
            "shared context derived for a different utility model"
        );
        let model = Arc::new(HorizonModel::uniform(
            num_requests,
            cfg.cache_blocks,
            cfg.slot_duration,
            cfg.gamma,
        ));
        let rng = StdRng::seed_from_u64(cfg.seed);
        let touched_per_class = vec![0; ctx.classes.num_classes()];
        let mut s = GreedyScheduler {
            cfg,
            utility,
            model,
            model_cache: None,
            model_key: None,
            rng,
            allocated: HashMap::new(),
            t: 0,
            current_schedule: Vec::new(),
            eviction_log: Vec::new(),
            ring: VecDeque::new(),
            resident: HashMap::new(),
            touched: vec![false; num_requests],
            shared_order: Vec::new(),
            ctx,
            touched_per_class,
            sampler: GainSampler::new(),
            updates: 0,
            diff_updates: 0,
            sparse_updates: 0,
            scheduled_blocks: 0,
            gap_slots: 0,
            gap_slots_rejected: 0,
            #[cfg(feature = "audit")]
            auditor: None,
        };
        s.rebuild_touched();
        s
    }

    /// The shared catalog/utility context backing this scheduler.
    pub fn context(&self) -> &Arc<GreedyContext> {
        &self.ctx
    }

    /// Attaches a shared [`ModelCache`](crate::scheduler::ModelCache): full
    /// model rebuilds from now on resolve through it, so sessions fed
    /// bit-identical predictions share one `HorizonModel`.  When the
    /// scheduler is still pristine (no prediction applied) its uniform prior
    /// is itself canonical and is registered immediately, deduplicating even
    /// sessions that never receive a prediction.
    pub fn attach_model_cache(&mut self, cache: Arc<crate::scheduler::ModelCache>) {
        if self.updates == 0 {
            let (model, key) = cache.resolve_uniform_keyed(
                self.model.num_requests(),
                self.cfg.cache_blocks,
                self.cfg.slot_duration,
                self.cfg.gamma,
            );
            self.model = model;
            self.model_key = Some(key);
        }
        self.model_cache = Some(cache);
    }

    /// The shared probability model (diagnostic: lets tests observe dedup
    /// sharing and copy-on-write splits via [`Arc::ptr_eq`]).
    #[doc(hidden)]
    pub fn model_arc(&self) -> &Arc<HorizonModel> {
        &self.model
    }

    /// The configuration in use.
    pub fn config(&self) -> &GreedySchedulerConfig {
        &self.cfg
    }

    /// Number of prediction updates applied so far.
    pub fn prediction_updates(&self) -> u64 {
        self.updates
    }

    /// Total number of blocks scheduled so far.
    pub fn scheduled_blocks(&self) -> u64 {
        self.scheduled_blocks
    }

    /// Position within the current schedule (`t` in Listing 1).
    pub fn position(&self) -> usize {
        self.t
    }

    /// Schedule slots consumed by a sender running ahead of the scheduler
    /// (see [`GreedyScheduler::update_prediction`]); real deployments keep
    /// this at zero.
    pub fn gap_slots(&self) -> u64 {
        self.gap_slots
    }

    /// Sender-ahead gap slots *rejected* by the per-update creation cap
    /// ([`GreedySchedulerConfig::max_gap_fraction`]): claimed positions the
    /// scheduler refused to materialize as empty slots.
    pub fn rejected_gap_slots(&self) -> u64 {
        self.gap_slots_rejected
    }

    /// Prediction updates applied through the diff path (the remainder of
    /// [`GreedyScheduler::prediction_updates`] fell back to a full rebuild).
    pub fn diff_applied_updates(&self) -> u64 {
        self.diff_updates
    }

    /// Diff-path updates that used a precomputed changed-set (the
    /// prediction-delta path); always ≤
    /// [`diff_applied_updates`](Self::diff_applied_updates).
    pub fn sparse_applied_updates(&self) -> u64 {
        self.sparse_updates
    }

    /// The scan variant's draw layout (requests in walk order with weights)
    /// and the sampler's mirrored layout.  Diagnostic only.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn debug_layouts(&self) -> (Vec<(RequestId, f64)>, Vec<(RequestId, f64)>) {
        let scale = self.model.residual_tail(self.t);
        let part = self.model.shape_partition();
        let mut scan = Vec::new();
        for b in &part.buckets {
            for &r in &b.members {
                scan.push((r, self.gain_for(r)));
            }
        }
        for &r in &part.irregular {
            scan.push((r, self.gain_for(r)));
        }
        for &r in &self.shared_order {
            scan.push((r, self.marginal_gain(r) * scale));
        }
        (scan, self.sampler.debug_layout())
    }

    /// Compares the incrementally maintained sampler weights against a
    /// from-scratch recomputation of every candidate weight (the scan
    /// variant's view), returning the mismatches.  Diagnostic only.
    #[doc(hidden)]
    pub fn debug_weight_divergence(&self) -> Vec<(RequestId, f64, f64)> {
        if !self.cfg.sampler.is_incremental() {
            return Vec::new();
        }
        let scale = self.model.residual_tail(self.t);
        let mut out = Vec::new();
        let mut check = |r: RequestId, want: f64, got: Option<f64>| {
            let got = got.unwrap_or(f64::NAN);
            let tol = 1e-9 * want.abs().max(1e-9);
            if (got - want).abs() > tol {
                out.push((r, want, got));
            }
        };
        let part = self.model.shape_partition();
        for b in &part.buckets {
            for &r in &b.members {
                check(r, self.gain_for(r), self.sampler.debug_weight(r));
            }
        }
        for &r in &part.irregular {
            check(r, self.gain_for(r), self.sampler.debug_weight(r));
        }
        for &r in &self.shared_order {
            check(
                r,
                self.marginal_gain(r) * scale,
                self.sampler.debug_weight(r),
            );
        }
        out
    }

    /// Updates the bandwidth-derived slot duration.  Takes effect on the next
    /// prediction update (the current materialized horizon is kept).
    pub fn set_slot_duration(&mut self, slot: Duration) {
        self.cfg.slot_duration = slot;
    }

    /// Applies a fresh prediction from the client.
    ///
    /// Per §5.3.2, scheduling work already handed to the sender is immutable:
    /// the caller passes `sender_position`, the number of blocks of the
    /// current schedule that have already been placed on the network.  Slots
    /// scheduled beyond that position are rolled back and re-planned under
    /// the new probabilities; slots before it are untouched.
    ///
    /// A `sender_position` *beyond* the scheduler's own position means the
    /// sender drained its queue past the planner — real senders can only
    /// transmit scheduled blocks, so deployments never report this, but the
    /// skipped slots are tolerated and represented as explicit empty entries
    /// in the slot-aligned schedule log.  A later rollback below the gap
    /// therefore pops exactly one log entry per slot (the alignment
    /// invariant is debug-asserted), instead of mispairing blocks with
    /// slots.
    pub fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize) {
        self.update_prediction_inner(summary, None, sender_position);
    }

    /// Sparse prediction update: `changes` carries the precomputed
    /// changed-set and slot-plan scalars from the prediction-delta shadow
    /// (see [`crate::delta`]), so the model diff plans in `O(Δ · slices)`
    /// via [`HorizonModel::apply_update_sparse`] instead of scanning every
    /// materialized signature.  Rollback, fallback, and sampler mirroring
    /// are identical to [`update_prediction`](Self::update_prediction).
    pub fn update_prediction_sparse(
        &mut self,
        summary: &PredictionSummary,
        changes: &crate::delta::PredictionChanges,
        sender_position: usize,
    ) {
        self.update_prediction_inner(summary, Some(changes), sender_position);
    }

    fn update_prediction_inner(
        &mut self,
        summary: &PredictionSummary,
        sparse: Option<&crate::delta::PredictionChanges>,
        sender_position: usize,
    ) {
        self.updates += 1;
        let sender_position = sender_position.min(self.cfg.cache_blocks);
        // Rate-limit sender-ahead gap creation: a sender repeatedly claiming
        // positions near `C` would force a schedule wrap per update, so each
        // update may open at most `max_gap_slots` new gaps; the excess is
        // rejected (and counted) rather than materialized.
        let sender_position = if sender_position > self.t {
            let allowed = (self.t + self.cfg.max_gap_slots()).min(self.cfg.cache_blocks);
            if sender_position > allowed {
                self.gap_slots_rejected += (sender_position - allowed) as u64;
                allowed
            } else {
                sender_position
            }
        } else {
            sender_position
        };
        self.check_slot_aligned();
        // Requests whose allocations or simulated residency the rollback
        // touches; their gains must be re-derived even when the prediction
        // diff leaves them untouched.
        let mut rolled: Vec<RequestId> = Vec::new();
        if sender_position < self.t {
            // Roll back the not-yet-sent tail of the current schedule.
            while self.t > sender_position {
                match self.current_schedule.pop() {
                    Some(Some(block)) => {
                        if let Some(c) = self.allocated.get_mut(&block.request) {
                            *c = c.saturating_sub(1);
                            if *c == 0 {
                                self.allocated.remove(&block.request);
                            }
                        }
                        let evicted = if self.cfg.track_client_cache {
                            self.eviction_log.pop().flatten()
                        } else {
                            None
                        };
                        rolled.push(block.request);
                        if let Some(old) = evicted {
                            rolled.push(old.request);
                        }
                        self.undo_ring_delivery(block, evicted);
                    }
                    Some(None) => {
                        // A sender-ahead gap slot: nothing was scheduled,
                        // delivered, or evicted there.
                        if self.cfg.track_client_cache {
                            self.eviction_log.pop();
                        }
                    }
                    None => {
                        let noted = self.audit_note_misalignment(
                            self.t,
                            "rollback found no schedule-log entry for slot t",
                        );
                        debug_assert!(noted, "no schedule-log entry for slot t");
                        break;
                    }
                }
                self.t -= 1;
            }
        } else {
            // The sender ran ahead of the scheduler (it drained its queue);
            // represent the skipped slots explicitly so the log stays
            // aligned with the slot index.
            while self.t < sender_position {
                self.current_schedule.push(None);
                if self.cfg.track_client_cache {
                    self.eviction_log.push(None);
                }
                self.t += 1;
                self.gap_slots += 1;
            }
        }
        self.check_slot_aligned();
        // Diff the new prediction against the previous one and apply point
        // updates; fall back to the full rebuild when the model can't (too
        // large a diff, changed horizon parameters, bucket-cap pressure).
        let diffable = self.cfg.prediction_diff
            && self.model.horizon() == self.cfg.cache_blocks
            && self.model.slot_duration() == self.cfg.slot_duration
            && self.model.gamma().to_bits() == self.cfg.gamma.to_bits();
        let diff: Option<Arc<crate::scheduler::ModelDiff>> = if diffable {
            match (self.model_cache.clone(), self.model_key, sparse) {
                // Cache attached, keyed base, full update: resolve by chain
                // key so identical-history sessions keep sharing storage.
                // `apply_update` is a pure function of (base content,
                // summary), so a hit's adopted instance is bit-identical to
                // what this session would have computed — determinism never
                // depends on which other sessions happen to be live.
                (Some(cache), Some(base_key), None) => {
                    let key = crate::scheduler::dedup::chain_key(&base_key, summary);
                    match cache.lookup_diffed(&key) {
                        Some((model, diff)) => {
                            self.model = model;
                            self.model_key = Some(key);
                            Some(diff)
                        }
                        None => {
                            // `make_mut` is the copy-on-write split: a
                            // scheduler diverging from a shared model clones
                            // it privately before the diff lands.
                            match Arc::make_mut(&mut self.model).apply_update(summary) {
                                Some(diff) => {
                                    let (model, diff) = cache.register_diffed(
                                        key,
                                        self.model.clone(),
                                        Arc::new(diff),
                                    );
                                    self.model = model;
                                    self.model_key = Some(key);
                                    Some(diff)
                                }
                                None => {
                                    self.model_key = None;
                                    None
                                }
                            }
                        }
                    }
                }
                // No cache, unkeyed model, or sparse (delta-encoded) update:
                // private in-place diff.  Sparse application is not keyed —
                // its change list comes off the wire and is not derivable
                // from the summary alone — so the model drops out of the
                // share chain until its next full rebuild.
                _ => {
                    self.model_key = None;
                    let model = Arc::make_mut(&mut self.model);
                    let applied = match sparse {
                        Some(changes) => model.apply_update_sparse(summary, changes),
                        None => model.apply_update(summary),
                    };
                    applied.map(Arc::new)
                }
            }
        } else {
            None
        };
        match diff {
            Some(diff) => {
                self.diff_updates += 1;
                self.sparse_updates += u64::from(sparse.is_some());
                rolled.sort_unstable();
                rolled.dedup();
                self.apply_model_diff(&diff, &rolled);
                #[cfg(feature = "audit")]
                self.audit_on_update(summary, true);
            }
            None => {
                self.model = match &self.model_cache {
                    Some(cache) => {
                        let (model, key) = cache.resolve_build_keyed(
                            summary,
                            self.cfg.cache_blocks,
                            self.cfg.slot_duration,
                            self.cfg.gamma,
                        );
                        self.model_key = Some(key);
                        model
                    }
                    None => Arc::new(HorizonModel::build(
                        summary,
                        self.cfg.cache_blocks,
                        self.cfg.slot_duration,
                        self.cfg.gamma,
                    )),
                };
                self.rebuild_touched();
                #[cfg(feature = "audit")]
                self.audit_on_update(summary, false);
            }
        }
    }

    /// Mirrors a [`ModelDiff`] into the scheduler's touched/shared
    /// bookkeeping and (for the incremental variants) the sampler's weight
    /// structure, with point updates only — the whole point of diffing.
    /// `rolled` lists the requests whose allocations/residency the preceding
    /// rollback changed, ascending and deduplicated.
    fn apply_model_diff(&mut self, diff: &crate::scheduler::ModelDiff, rolled: &[RequestId]) {
        use crate::scheduler::ExplicitPlacement;
        let incremental = self.cfg.sampler.is_incremental();
        if incremental {
            for _ in 0..diff.buckets_added {
                self.sampler.push_bucket();
            }
            for &r in &diff.removed {
                self.sampler.remove_explicit(r);
            }
            for &(r, p) in &diff.placed {
                match p {
                    ExplicitPlacement::Bucket(b) => self.sampler.append_bucket_member(b, r),
                    ExplicitPlacement::Irregular => self.sampler.append_irregular(r),
                }
            }
        }
        // Touched-set and shared-segment membership.  With the meta-request
        // optimization on, the shared segment holds exactly the touched
        // unmaterialized requests; with it off, *every* unmaterialized
        // request (so joins always leave it and departures always enter it).
        let mut drop_from_shared: Vec<RequestId> = Vec::new();
        let mut add_to_shared: Vec<RequestId> = Vec::new();
        for &r in &diff.joined {
            let newly = self.mark_touched(r);
            if !newly || !self.cfg.use_meta_request {
                drop_from_shared.push(r);
            }
        }
        for &r in &diff.departed {
            let keep = self.allocated.contains_key(&r)
                || (self.cfg.track_client_cache && self.resident.contains_key(&r));
            if !keep {
                self.untouch(r);
            }
            if keep || !self.cfg.use_meta_request {
                add_to_shared.push(r);
            }
        }
        // Rolled-back requests can cross the touched boundary in either
        // direction: one whose only claim was a now-undone allocation
        // returns to its meta class, while one whose evicted blocks the
        // rollback *restored* becomes resident — hence touched — again.
        for &r in rolled {
            if self.model.is_materialized(r) {
                continue;
            }
            let keep = self.allocated.contains_key(&r)
                || (self.cfg.track_client_cache && self.resident.contains_key(&r));
            if keep && !self.touched[r.index()] {
                self.mark_touched(r);
                if self.cfg.use_meta_request {
                    add_to_shared.push(r);
                }
            } else if !keep && self.touched[r.index()] {
                self.untouch(r);
                if self.cfg.use_meta_request {
                    drop_from_shared.push(r);
                }
            }
        }
        if !drop_from_shared.is_empty() {
            let dead: HashSet<RequestId> = drop_from_shared.iter().copied().collect();
            self.shared_order.retain(|r| !dead.contains(r));
            if incremental {
                self.sampler.compact_shared(|r| !dead.contains(&r));
            }
        }
        for &r in &add_to_shared {
            self.shared_order.push(r);
            if incremental {
                let g = self.marginal_gain(r);
                self.sampler.set_shared_gain(r, g);
            }
        }
        if !incremental {
            return;
        }
        match self.cfg.sampler {
            SamplerVariant::Lazy => {
                // Point updates for the changed explicit entries, then the
                // O(b + |irr|) slot refresh.
                for &(r, _) in &diff.placed {
                    self.refresh_explicit_entry(r);
                }
                for &r in &diff.rescaled {
                    self.refresh_explicit_entry(r);
                }
                for &r in rolled {
                    if self.sampler.is_explicit(r) {
                        self.refresh_explicit_entry(r);
                    }
                }
                self.refresh_lazy_slot();
            }
            // The eager baseline rewrites every materialized weight anyway.
            SamplerVariant::Eager => self.refresh_explicit_full(),
            SamplerVariant::Scan => unreachable!("scan variant keeps no sampler state"),
        }
        // Rolled-back shared members: their gain part changed.
        for &r in rolled {
            if !self.sampler.is_explicit(r)
                && (self.touched[r.index()] || !self.cfg.use_meta_request)
            {
                let g = self.marginal_gain(r);
                self.sampler.set_shared_gain(r, g);
            }
        }
        self.sampler
            .set_shared_scale(self.model.residual_tail(self.t));
        self.sync_meta_counts();
    }

    /// Clears `r`'s touched flag (no-op if already untouched), maintaining
    /// the per-class tallies.
    fn untouch(&mut self, r: RequestId) {
        if self.touched[r.index()] {
            self.touched[r.index()] = false;
            self.touched_per_class[self.ctx.classes.class_of(r)] -= 1;
        }
    }

    /// Re-derives one explicit (materialized) entry's cached coefficient and
    /// stored value from the current model — the point update behind diff
    /// placements and rescales.
    fn refresh_explicit_entry(&mut self, r: RequestId) {
        if self.cfg.sampler == SamplerVariant::Lazy && !self.sampler.is_irregular(r) {
            self.sampler.set_explicit_coef(r, self.model.tail(r, 0));
        }
        let v = self.explicit_value(r);
        self.sampler.set_explicit_value(r, v);
    }

    /// Schedule-log invariant gate: routed into the auditor's counted
    /// `SlotAlignment` check when one is attached (reporting instead of
    /// aborting), debug-asserted otherwise.
    fn check_slot_aligned(&mut self) {
        #[cfg(feature = "audit")]
        if let Some(mut aud) = self.auditor.take() {
            self.audit_check_slot_alignment(&mut aud.report);
            self.auditor = Some(aud);
            return;
        }
        self.debug_assert_slot_aligned();
    }

    /// Records a slot-alignment fault with the attached auditor, returning
    /// whether one was attached to receive it (callers debug-assert on
    /// `false`, preserving the abort-in-debug behaviour when unaudited).
    #[cfg(feature = "audit")]
    fn audit_note_misalignment(&mut self, slot: usize, what: &str) -> bool {
        match self.auditor.as_mut() {
            Some(aud) => {
                aud.report.record(AuditViolation {
                    check: AuditCheck::SlotAlignment,
                    slot: Some(slot),
                    request: None,
                    detail: what.to_string(),
                });
                true
            }
            None => false,
        }
    }

    #[cfg(not(feature = "audit"))]
    fn audit_note_misalignment(&mut self, _slot: usize, _what: &str) -> bool {
        false
    }

    /// Debug-only check of the schedule-log invariants: one log entry per
    /// consumed slot, and (with cache tracking) one eviction-log entry per
    /// schedule-log entry.
    fn debug_assert_slot_aligned(&self) {
        debug_assert_eq!(
            self.current_schedule.len(),
            self.t,
            "schedule log must stay slot-aligned"
        );
        if self.cfg.track_client_cache {
            debug_assert_eq!(
                self.eviction_log.len(),
                self.t,
                "eviction log must stay slot-aligned"
            );
        }
    }

    /// Reverses one `deliver_to_ring`: removes the rolled-back block and
    /// restores the entry (if any) its delivery had evicted.  The client
    /// never received the rolled-back block, so its real ring still holds
    /// the older entry; without the restore the simulation silently loses
    /// it forever and the two rings diverge.
    fn undo_ring_delivery(&mut self, block: BlockRef, evicted: Option<BlockRef>) {
        if !self.cfg.track_client_cache {
            return;
        }
        debug_assert_eq!(
            self.ring.back(),
            Some(&block),
            "rollback must pop deliveries in reverse order"
        );
        if self.ring.back() == Some(&block) {
            self.ring.pop_back();
            if let Some(set) = self.resident.get_mut(&block.request) {
                set.remove(&block.index);
                if set.is_empty() {
                    self.resident.remove(&block.request);
                }
            }
        }
        if let Some(old) = evicted {
            self.ring.push_front(old);
            self.resident
                .entry(old.request)
                .or_default()
                .insert(old.index);
        }
    }

    /// Marks `r` touched, maintaining the count and per-class tallies.
    /// Returns whether `r` was previously untouched.
    fn mark_touched(&mut self, r: RequestId) -> bool {
        if self.touched[r.index()] {
            return false;
        }
        self.touched[r.index()] = true;
        self.touched_per_class[self.ctx.classes.class_of(r)] += 1;
        true
    }

    fn rebuild_touched(&mut self) {
        self.touched.fill(false);
        self.touched_per_class.fill(0);
        let mut touched_ids: Vec<RequestId> = self.model.materialized().collect();
        // lint:allow(hash-iter) -- collected into touched_ids, which is canonically re-sorted below
        touched_ids.extend(self.allocated.keys().copied());
        if self.cfg.track_client_cache {
            // lint:allow(hash-iter) -- collected into touched_ids, which is canonically re-sorted below
            touched_ids.extend(self.resident.keys().copied());
        }
        touched_ids.retain(|&r| self.mark_touched(r));
        // Canonical shared-segment order: sorted at rebuild (hash-map
        // iteration order is not deterministic), appended in touch order
        // thereafter.  With the meta-request optimization off, *every*
        // unmaterialized request sits in the shared segment permanently (the
        // unoptimized Figure 16 / §5.3.1 baseline), so membership never
        // shifts mid-schedule.
        self.shared_order.clear();
        if self.cfg.use_meta_request {
            self.shared_order.extend(
                touched_ids
                    .iter()
                    .copied()
                    .filter(|&r| !self.model.is_materialized(r)),
            );
        } else {
            self.shared_order.extend(
                (0..self.model.num_requests())
                    .map(RequestId::from)
                    .filter(|&r| !self.model.is_materialized(r)),
            );
        }
        self.shared_order.sort_unstable();
        self.rebuild_sampler();
    }

    /// Rebuilds the incremental weight structure from scratch: `O(T log T)`
    /// with the meta-request optimization on, `O(n log n)` with it off
    /// (every unmaterialized request gets an explicit shared-tail entry).
    /// Called only when the whole state shifts (prediction update); per-block
    /// maintenance goes through `refresh_after_allocation` and schedule
    /// wraps through the carry-over in `reset_schedule`.
    fn rebuild_sampler(&mut self) {
        if !self.cfg.sampler.is_incremental() {
            return;
        }
        self.sampler.rebuild(
            self.model.shape_partition(),
            &self.ctx.meta_gains,
            self.model.num_requests(),
        );
        if self.cfg.sampler == SamplerVariant::Lazy {
            // Cache every bucket member's slot-invariant coefficient so
            // per-block gain updates never touch the model's tail vectors.
            for b in 0..self.sampler.num_buckets() {
                for i in 0..self.model.shape_partition().buckets[b].members.len() {
                    let r = self.model.shape_partition().buckets[b].members[i];
                    let coef = self.model.tail(r, 0);
                    self.sampler.set_explicit_coef(r, coef);
                }
            }
        }
        self.refresh_explicit_full();
        self.sampler
            .set_shared_scale(self.model.residual_tail(self.t));
        for i in 0..self.shared_order.len() {
            let r = self.shared_order[i];
            let g = self.marginal_gain(r);
            self.sampler.set_shared_gain(r, g);
        }
        self.sync_meta_counts();
    }

    /// The per-slot storage rescale `γ^t`: stored slot-dependent weights are
    /// divided by it (with the matching scale applied at draw time), so
    /// magnitudes stay O(1) across the schedule no matter how deep the
    /// `γ^t` tails decay — the Fenwick delta-update residue can never dwarf
    /// the live values, replacing the exact `rebuild_sums` the eager path
    /// used to need after every rewrite.  Degenerate discounts (γ of 0 or 1,
    /// or an underflowed power — where the tails themselves are exactly 0)
    /// fall back to no rescale.
    fn slot_scale(&self) -> f64 {
        let g = self.cfg.gamma;
        if g > 0.0 && g < 1.0 {
            let s = g.powi(self.t as i32);
            if s > 0.0 {
                return s;
            }
        }
        1.0
    }

    /// The value stored in the explicit layout for materialized request `r`:
    /// the slot-invariant `g · tail(0)` for lazily-scaled bucket members,
    /// the rescaled current weight `g · tail(t) · γ^{-t}` otherwise
    /// (irregular members, and everything under the eager variant).
    fn explicit_value(&self, r: RequestId) -> f64 {
        let g = self.marginal_gain(r);
        if self.cfg.sampler == SamplerVariant::Lazy && !self.sampler.is_irregular(r) {
            g * self.model.tail(r, 0)
        } else {
            g * self.model.tail(r, self.t) / self.slot_scale()
        }
    }

    /// Rewrites every explicit (materialized) weight and bucket factor for
    /// the current slot — `O(m log m)`.  Used at rebuild time, by the eager
    /// per-slot refresh, and by wrap resets that cannot reuse the stored
    /// values.
    fn refresh_explicit_full(&mut self) {
        let lazy = self.cfg.sampler == SamplerVariant::Lazy;
        let scale = self.slot_scale();
        for b in 0..self.sampler.num_buckets() {
            let factor = if lazy {
                self.model.shape_factor(b, self.t)
            } else {
                scale
            };
            self.sampler.set_bucket_factor(b, factor);
            for i in 0..self.model.shape_partition().buckets[b].members.len() {
                let r = self.model.shape_partition().buckets[b].members[i];
                let v = self.explicit_value(r);
                self.sampler.set_explicit_value(r, v);
            }
        }
        self.sampler.set_irregular_scale(scale);
        for i in 0..self.model.shape_partition().irregular.len() {
            let r = self.model.shape_partition().irregular[i];
            let v = self.explicit_value(r);
            self.sampler.set_explicit_value(r, v);
        }
    }

    /// The lazy variant's per-slot refresh: one factor per shape bucket
    /// plus an exact rewrite of the (small) irregular set — `O(b + |irr|
    /// log m)`, never touching the bucketed member weights.
    fn refresh_lazy_slot(&mut self) {
        for b in 0..self.sampler.num_buckets() {
            let factor = self.model.shape_factor(b, self.t);
            self.sampler.set_bucket_factor(b, factor);
        }
        self.sampler.set_irregular_scale(self.slot_scale());
        for i in 0..self.model.shape_partition().irregular.len() {
            let r = self.model.shape_partition().irregular[i];
            let v = self.explicit_value(r);
            self.sampler.set_explicit_value(r, v);
        }
    }

    /// Pushes the per-class untouched counts into the sampler's
    /// meta-entries.
    fn sync_meta_counts(&mut self) {
        for c in 0..self.ctx.meta_gains.len() {
            let untouched = if self.cfg.use_meta_request {
                self.ctx.classes.class(c).len() - self.touched_per_class[c]
            } else {
                0
            };
            self.sampler.set_meta_untouched(c, untouched);
        }
    }

    /// Re-derives one request's weight after its residency or allocation
    /// changed.  Materialized requests carry their (possibly slot-invariant)
    /// value in the explicit layout; everything else carries only the gain
    /// part under the shared residual-tail scale.
    ///
    /// The lazy bucket path multiplies the sampler's cached coefficient —
    /// `g · tail(0)` with `tail(0)` a local load — instead of chasing the
    /// model's per-request tail vectors, whose working set at large `m`
    /// dwarfs the cache.
    fn refresh_request_weight(&mut self, r: RequestId) {
        if self.sampler.is_explicit(r) {
            if self.cfg.sampler == SamplerVariant::Lazy && !self.sampler.is_irregular(r) {
                let g = self.marginal_gain(r);
                self.sampler.set_explicit_gain(r, g);
            } else {
                let v = self.explicit_value(r);
                self.sampler.set_explicit_value(r, v);
            }
        } else {
            let g = self.marginal_gain(r);
            self.sampler.set_shared_gain(r, g);
        }
    }

    /// Incremental bookkeeping after allocating one block to `q`: the slot
    /// index advanced, `q`'s gain moved, an eviction may have changed
    /// another request's resident prefix, and `q` may have left its meta
    /// class.
    ///
    /// Advancing the slot costs `O(b)` bucket-factor updates plus the small
    /// irregular exact-refresh set under the lazy variant (`O(b log m +
    /// log T)` total — flat in `m` for homogeneous-tail workloads), or a
    /// full `O(m log m)` rewrite of the materialized weights under the
    /// eager variant.
    fn refresh_after_allocation(
        &mut self,
        q: RequestId,
        evicted: Option<BlockRef>,
        newly_touched: bool,
    ) {
        self.sampler
            .set_shared_scale(self.model.residual_tail(self.t));
        match self.cfg.sampler {
            SamplerVariant::Lazy => self.refresh_lazy_slot(),
            // The PR 2 baseline: rewrite every materialized weight (the
            // factors stay pinned at 1).
            SamplerVariant::Eager => self.refresh_explicit_full(),
            SamplerVariant::Scan => unreachable!("scan variant keeps no sampler state"),
        }
        self.refresh_request_weight(q);
        if let Some(old) = evicted {
            if old.request != q {
                self.refresh_request_weight(old.request);
            }
        }
        if newly_touched && self.cfg.use_meta_request {
            let c = self.ctx.classes.class_of(q);
            self.sampler.set_meta_untouched(
                c,
                self.ctx.classes.class(c).len() - self.touched_per_class[c],
            );
        }
    }

    /// Blocks of `request` the scheduler believes the client currently holds
    /// (as a renderable contiguous prefix) or will hold once the pending
    /// schedule is delivered.
    ///
    /// With cache tracking enabled the simulated ring already includes the
    /// blocks allocated in the current schedule (they are "delivered" to the
    /// simulation as they are scheduled), so it is the single source of truth;
    /// otherwise only the per-schedule allocation counts (bare Listing 1).
    /// The prefix — not the raw count — is used so that a response whose
    /// early blocks were evicted gets its prefix repaired before its tail is
    /// extended.
    fn effective_blocks(&self, request: RequestId) -> u32 {
        if self.cfg.track_client_cache {
            self.resident
                .get(&request)
                .map(resident_prefix_len)
                .unwrap_or(0)
        } else {
            self.allocated.get(&request).copied().unwrap_or(0)
        }
    }

    /// Marginal utility gain `g(B_i + 1)` of the next block for `request`
    /// (the probability-independent factor of its weight).
    fn marginal_gain(&self, request: RequestId) -> f64 {
        let have = self.effective_blocks(request);
        let nb = self.ctx.num_blocks[request.index()];
        if have >= nb {
            return 0.0;
        }
        self.utility.table(request.index()).next_gain(have)
    }

    /// Expected utility gain of giving one more block to `request` at the
    /// current schedule position.
    fn gain_for(&self, request: RequestId) -> f64 {
        self.marginal_gain(request) * self.model.tail(request, self.t)
    }

    /// Draws one request proportionally to utility gain; returns `None` when
    /// every request is saturated or has zero gain.
    fn sample_request(&mut self) -> Option<RequestId> {
        if self.cfg.sampler.is_incremental() {
            self.sample_request_incremental()
        } else {
            self.sample_request_scan()
        }
    }

    /// `O(b log m + log T)` (lazy) / `O(log m + log T)` (eager) proportional
    /// draw from the Fenwick weight structure.  The segment layouts are
    /// deterministic (partition-ordered buckets, reproducible slot order for
    /// the shared group, class-ordered meta-entries), so a fixed seed yields
    /// a deterministic schedule — the *same* schedule the scan variant
    /// draws, since both walk the identical layout.
    fn sample_request_incremental(&mut self) -> Option<RequestId> {
        let total = self.sampler.total();
        if total <= 0.0 {
            return None;
        }
        let x = self.rng.gen::<f64>() * total;
        match self.sampler.locate(x) {
            Some(SampledGroup::Request(r)) => Some(r),
            Some(SampledGroup::Meta(c)) => self.sample_untouched_in_class(c),
            None => None,
        }
    }

    /// The legacy per-block scan (the Figure 16 baseline): recomputes and
    /// prefix-scans every candidate weight on each draw, walking the same
    /// canonical segment layout as the incremental variants (shape buckets →
    /// irregular → shared order → per-class meta-entries).
    fn sample_request_scan(&mut self) -> Option<RequestId> {
        #[derive(Clone, Copy)]
        enum Entry {
            Request(RequestId),
            Meta(usize),
        }
        let scale = self.model.residual_tail(self.t);
        let part = self.model.shape_partition();
        let mut entries: Vec<(Entry, f64)> =
            Vec::with_capacity(part.materialized_count() + self.shared_order.len() + 1);
        let mut total = 0.0;
        {
            let mut push = |e: Entry, w: f64| {
                if w > 0.0 {
                    total += w;
                    entries.push((e, w));
                }
            };
            for b in &part.buckets {
                for &r in &b.members {
                    push(Entry::Request(r), self.gain_for(r));
                }
            }
            for &r in &part.irregular {
                push(Entry::Request(r), self.gain_for(r));
            }
            for &r in &self.shared_order {
                push(Entry::Request(r), self.marginal_gain(r) * scale);
            }
            if self.cfg.use_meta_request {
                for (c, &g1) in self.ctx.meta_gains.iter().enumerate() {
                    let untouched = self.ctx.classes.class(c).len() - self.touched_per_class[c];
                    push(Entry::Meta(c), untouched as f64 * g1 * scale);
                }
            }
        }

        if total <= 0.0 {
            return None;
        }
        let mut x = self.rng.gen::<f64>() * total;
        let mut chosen = None;
        for &(e, w) in &entries {
            chosen = Some(e);
            x -= w;
            if x <= 0.0 {
                break;
            }
        }
        match chosen? {
            Entry::Request(r) => Some(r),
            Entry::Meta(c) => self.sample_untouched_in_class(c),
        }
    }

    /// Uniformly samples an untouched request of utility class `c`.
    fn sample_untouched_in_class(&mut self, c: usize) -> Option<RequestId> {
        let class = self.ctx.classes.class(c);
        let len = class.len();
        if len == self.touched_per_class[c] {
            return None;
        }
        // Rejection sampling: the touched subset of a class is tiny compared
        // to the class in every realistic configuration, so this terminates
        // almost immediately.  A deterministic fallback scan guards
        // pathological cases.
        for _ in 0..64 {
            let candidate = class.member(self.rng.gen_range(0..len));
            if !self.touched[candidate.index()] {
                return Some(candidate);
            }
        }
        class.members().find(|r| !self.touched[r.index()])
    }

    /// Schedules up to `count` blocks.
    ///
    /// Returns the blocks in push order.  Resets the per-schedule allocation
    /// state after a full schedule of `C` blocks, per Listing 1 lines 21–23.
    /// Callers that want Listing 1's "check for a new distribution every `bs`
    /// blocks" behaviour use [`GreedyScheduler::next_default_batch`].
    pub fn next_batch(&mut self, count: usize) -> Schedule {
        let want = count;
        let mut out = Vec::with_capacity(want);
        while out.len() < want {
            if self.t >= self.cfg.cache_blocks {
                // Full schedule allocated: reset (ring has overwritten itself).
                self.reset_schedule();
            }
            let Some(q) = self.sample_request() else {
                break;
            };
            let have = self.effective_blocks(q);
            let block = BlockRef::new(q, have);
            *self.allocated.entry(q).or_insert(0) += 1;
            let newly_touched = self.mark_touched(q);
            if newly_touched {
                // Only a meta draw reaches an untouched request, and
                // materialized requests are always touched.
                debug_assert!(!self.model.is_materialized(q));
                if self.cfg.use_meta_request {
                    self.shared_order.push(q);
                }
            }
            self.t += 1;
            self.scheduled_blocks += 1;
            self.current_schedule.push(Some(block));
            let evicted = self.deliver_to_ring(block);
            out.push(block);
            if self.cfg.sampler.is_incremental() {
                self.refresh_after_allocation(q, evicted, newly_touched);
            }
            #[cfg(feature = "audit")]
            self.audit_on_block();
        }
        out
    }

    /// Schedules one full batch of `bs` blocks (the per-iteration unit of
    /// Listing 1).
    pub fn next_default_batch(&mut self) -> Schedule {
        self.next_batch(self.cfg.batch_size)
    }

    /// Delivers `block` to the simulated client ring, returning the entry it
    /// evicted (if the ring was full) and logging that eviction for exact
    /// rollback.
    fn deliver_to_ring(&mut self, block: BlockRef) -> Option<BlockRef> {
        if !self.cfg.track_client_cache {
            return None;
        }
        self.ring.push_back(block);
        self.resident
            .entry(block.request)
            .or_default()
            .insert(block.index);
        let mut evicted = None;
        if self.ring.len() > self.cfg.cache_blocks {
            if let Some(old) = self.ring.pop_front() {
                if let Some(set) = self.resident.get_mut(&old.request) {
                    set.remove(&old.index);
                    if set.is_empty() {
                        self.resident.remove(&old.request);
                    }
                }
                evicted = Some(old);
            }
        }
        self.eviction_log.push(evicted);
        evicted
    }

    /// Resets the per-schedule allocation state after a full schedule of `C`
    /// blocks, carrying the sampler's explicit shape buckets and shared-tail
    /// group across the wrap instead of rebuilding from scratch.
    ///
    /// The horizon model is unchanged by a wrap, so bucket membership and
    /// (with cache tracking, where gains derive from the untouched resident
    /// prefixes) the stored bucket values are all reusable at `t = 0` — the
    /// lazy variant's wrap costs `O(b)` factor resets plus the irregular
    /// exact-refresh set.  The only membership change is requests whose sole
    /// claim to the touched set was a since-cleared allocation: they return
    /// to their meta class, and the shared segment is compacted (preserving
    /// survivor order, identically in `shared_order` and the sampler, so all
    /// variants keep drawing the same layout).
    fn reset_schedule(&mut self) {
        self.t = 0;
        if self.cfg.use_meta_request {
            // Requests touched only through the cleared allocations return
            // to their meta class.  (With meta off, every unmaterialized
            // request stays in the shared segment permanently.)  Only
            // requests the finished schedule allocated to — or whose blocks
            // it evicted — can depart, so the scan is bounded by the
            // schedule length, never by the touched-set size.
            // lint:allow(hash-iter) -- snapshot is sorted and deduped two lines below
            let mut candidates: Vec<RequestId> = self.allocated.keys().copied().collect();
            candidates.extend(self.eviction_log.iter().flatten().map(|b| b.request));
            candidates.sort_unstable();
            candidates.dedup();
            let mut departed = false;
            for r in candidates {
                if !self.touched[r.index()] {
                    continue;
                }
                let keep = self.model.is_materialized(r)
                    || (self.cfg.track_client_cache && self.resident.contains_key(&r));
                if !keep {
                    self.touched[r.index()] = false;
                    self.touched_per_class[self.ctx.classes.class_of(r)] -= 1;
                    departed = true;
                }
            }
            if departed {
                let touched = &self.touched;
                self.shared_order.retain(|r| touched[r.index()]);
                if self.cfg.sampler.is_incremental() {
                    self.sampler.compact_shared(|r| touched[r.index()]);
                }
            }
        }
        self.allocated.clear();
        self.current_schedule.clear();
        self.eviction_log.clear();
        if self.cfg.sampler.is_incremental() {
            if self.cfg.track_client_cache && self.cfg.sampler == SamplerVariant::Lazy {
                // Gains derive from the (unchanged) resident prefixes, so
                // the stored slot-invariant bucket values are still exact:
                // reset the factors to s(0) (`t` is already 0) and re-derive
                // only the irregular exact-refresh weights.
                self.refresh_lazy_slot();
            } else {
                // Eager weights embed the old slot index, and without cache
                // tracking the cleared allocations reset every gain.
                self.refresh_explicit_full();
            }
            if !self.cfg.track_client_cache {
                for i in 0..self.shared_order.len() {
                    let r = self.shared_order[i];
                    let g = self.marginal_gain(r);
                    self.sampler.set_shared_gain(r, g);
                }
            }
            self.sampler.set_shared_scale(self.model.residual_tail(0));
            self.sync_meta_counts();
        }
    }

    /// The scheduler's current belief about the client's per-request resident
    /// block counts (empty unless cache tracking is enabled).
    pub fn simulated_cache(&self) -> HashMap<RequestId, u32> {
        // lint:allow(hash-iter) -- order-insensitive: collected straight into another hash map
        self.resident
            .iter()
            .map(|(&r, set)| (r, set.len() as u32))
            .collect()
    }

    /// The simulated client ring contents in arrival order, oldest first
    /// (empty unless cache tracking is enabled).
    ///
    /// Exposed for tests and debugging: the rollback property tests replay
    /// random schedule / rollback / eviction sequences and assert this
    /// exactly matches a ground-truth replay of the client's FIFO ring.
    pub fn simulated_ring(&self) -> Vec<BlockRef> {
        self.ring.iter().copied().collect()
    }
}

impl GreedyScheduler {
    /// Expected utility (Eq. 2) of the blocks scheduled so far in the current
    /// schedule, starting from the cache allocation `initial`.  Sender-ahead
    /// gap slots contribute nothing but keep later blocks at their true
    /// (lower-tail) slot indices.
    pub fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        crate::scheduler::schedule_expected_utility_slots(
            &self.current_schedule,
            &self.model,
            &self.utility,
            initial,
        )
    }
}

#[cfg(feature = "audit")]
impl GreedyScheduler {
    /// Attaches a [`SamplerAuditor`]: from now on the scheduler
    /// shadow-verifies its invariants at `cfg`'s sampling frequencies and
    /// accumulates a violation report instead of debug-aborting.  Replaces
    /// any previously attached auditor (and its report).
    pub fn audit_attach(&mut self, cfg: AuditConfig) {
        self.auditor = Some(SamplerAuditor::new(cfg));
    }

    /// The accumulated audit report, when an auditor is attached.
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.auditor.as_ref().map(|a| a.report.clone())
    }

    /// Test-only fault injection: drops the newest eviction-log entry,
    /// deliberately desynchronizing the log from the slot index so the
    /// promoted alignment checks (and their rollback behaviour) can be
    /// exercised.
    #[doc(hidden)]
    pub fn audit_inject_eviction_log_truncation(&mut self) {
        self.eviction_log.pop();
    }

    /// Per-block hook: ticks the auditor and runs the structural checks at
    /// the configured frequency.
    fn audit_on_block(&mut self) {
        let Some(mut aud) = self.auditor.take() else {
            return;
        };
        if aud.tick_block() {
            self.audit_run_checks(&mut aud.report, None);
        }
        self.auditor = Some(aud);
    }

    /// Post-update hook: like [`GreedyScheduler::audit_on_block`], but when
    /// the update went through the diff path it additionally shadow-rebuilds
    /// the model from `summary` and compares signatures.
    fn audit_on_update(&mut self, summary: &PredictionSummary, diff_applied: bool) {
        let Some(mut aud) = self.auditor.take() else {
            return;
        };
        let run_general = aud.tick_update();
        let run_diff = diff_applied && aud.tick_diff();
        if run_general || run_diff {
            let shadow = run_diff.then_some(summary);
            self.audit_run_checks(&mut aud.report, shadow);
        }
        self.auditor = Some(aud);
    }

    fn audit_run_checks(&self, report: &mut AuditReport, shadow: Option<&PredictionSummary>) {
        self.audit_check_fenwick(report);
        self.audit_check_bucket_coefficients(report);
        self.audit_check_slot_alignment(report);
        if let Some(summary) = shadow {
            self.audit_check_diff_signature(report, summary);
        }
    }

    /// Every Fenwick sum node re-summed against its covered values, plus the
    /// positive-entry counters (the phantom-total defense).
    fn audit_check_fenwick(&self, report: &mut AuditReport) {
        report.begin(AuditCheck::FenwickSums);
        if !self.cfg.sampler.is_incremental() {
            return;
        }
        for (label, tree) in self.sampler.audit_fenwick_trees() {
            for (node, stored, expected) in tree.audit_bad_nodes() {
                report.record(AuditViolation {
                    check: AuditCheck::FenwickSums,
                    slot: Some(self.t),
                    request: None,
                    detail: format!(
                        "{label} sum node {node}: stored {stored:e}, recomputed {expected:e}"
                    ),
                });
            }
            if let Some((stored, actual)) = tree.audit_positive_count_drift() {
                report.record(AuditViolation {
                    check: AuditCheck::FenwickSums,
                    slot: Some(self.t),
                    request: None,
                    detail: format!(
                        "{label} positive-entry counter drift: stored {stored}, actual {actual}"
                    ),
                });
            }
        }
    }

    /// Every incrementally maintained draw weight re-derived from the
    /// model's tails, plus (lazy variant) each bucket's scalar factor and
    /// cached per-member coefficient against the shape vector.
    fn audit_check_bucket_coefficients(&self, report: &mut AuditReport) {
        report.begin(AuditCheck::BucketCoefficients);
        if !self.cfg.sampler.is_incremental() {
            return;
        }
        for (r, want, got) in self.debug_weight_divergence() {
            report.record(AuditViolation {
                check: AuditCheck::BucketCoefficients,
                slot: Some(self.t),
                request: Some(r),
                detail: format!("stored draw weight {got:e}, recomputed {want:e}"),
            });
        }
        if self.cfg.sampler != SamplerVariant::Lazy {
            return;
        }
        let part = self.model.shape_partition();
        for (b, bucket) in part.buckets.iter().enumerate() {
            let want = self.model.shape_factor(b, self.t);
            let got = self.sampler.audit_bucket_factor(b);
            if (got - want).abs() > 1e-9 * want.abs().max(1e-9) {
                report.record(AuditViolation {
                    check: AuditCheck::BucketCoefficients,
                    slot: Some(self.t),
                    request: None,
                    detail: format!(
                        "bucket {b} factor: stored {got:e}, shape vector says {want:e}"
                    ),
                });
            }
            for &r in &bucket.members {
                let Some(coef) = self.sampler.audit_bucket_coef(r) else {
                    continue;
                };
                let want = self.model.tail(r, 0);
                if (coef - want).abs() > 1e-9 * want.abs().max(1e-9) {
                    report.record(AuditViolation {
                        check: AuditCheck::BucketCoefficients,
                        slot: Some(self.t),
                        request: Some(r),
                        detail: format!(
                            "cached coefficient {coef:e} diverges from tail(0) = {want:e}"
                        ),
                    });
                }
            }
        }
    }

    /// The promoted slot-alignment invariants: log lengths vs. the slot
    /// index, gap pairing (an empty schedule slot never evicts), and the
    /// simulated ring's capacity bound.
    fn audit_check_slot_alignment(&self, report: &mut AuditReport) {
        report.begin(AuditCheck::SlotAlignment);
        if self.current_schedule.len() != self.t {
            report.record(AuditViolation {
                check: AuditCheck::SlotAlignment,
                slot: Some(self.t),
                request: None,
                detail: format!(
                    "schedule log holds {} entries at slot index t = {}",
                    self.current_schedule.len(),
                    self.t
                ),
            });
        }
        if !self.cfg.track_client_cache {
            return;
        }
        if self.eviction_log.len() != self.t {
            report.record(AuditViolation {
                check: AuditCheck::SlotAlignment,
                slot: Some(self.t),
                request: None,
                detail: format!(
                    "eviction log holds {} entries at slot index t = {}",
                    self.eviction_log.len(),
                    self.t
                ),
            });
        }
        for (k, (sched, evicted)) in self
            .current_schedule
            .iter()
            .zip(self.eviction_log.iter())
            .enumerate()
        {
            if sched.is_none() && evicted.is_some() {
                report.record(AuditViolation {
                    check: AuditCheck::SlotAlignment,
                    slot: Some(k),
                    request: evicted.map(|b| b.request),
                    detail: "sender-ahead gap slot paired with an eviction entry".to_string(),
                });
            }
        }
        if self.ring.len() > self.cfg.cache_blocks {
            report.record(AuditViolation {
                check: AuditCheck::SlotAlignment,
                slot: Some(self.t),
                request: None,
                detail: format!(
                    "simulated ring holds {} blocks, cache capacity is {}",
                    self.ring.len(),
                    self.cfg.cache_blocks
                ),
            });
        }
    }

    /// Diff-path signature agreement: rebuilds a shadow model from the same
    /// summary the diff path consumed and compares materialized sets, tails
    /// at sampled slots, and the residual tail.
    fn audit_check_diff_signature(&self, report: &mut AuditReport, summary: &PredictionSummary) {
        report.begin(AuditCheck::DiffSignature);
        let shadow = HorizonModel::build(
            summary,
            self.cfg.cache_blocks,
            self.cfg.slot_duration,
            self.cfg.gamma,
        );
        let mut diffed: Vec<RequestId> = self.model.materialized().collect();
        diffed.sort_unstable();
        let mut rebuilt: Vec<RequestId> = shadow.materialized().collect();
        rebuilt.sort_unstable();
        if diffed != rebuilt {
            report.record(AuditViolation {
                check: AuditCheck::DiffSignature,
                slot: Some(self.t),
                request: None,
                detail: format!(
                    "materialized sets diverge: diff path holds {}, rebuild holds {}",
                    diffed.len(),
                    rebuilt.len()
                ),
            });
            return;
        }
        let probe_slots = [0, self.t.min(self.cfg.cache_blocks.saturating_sub(1))];
        for &r in &diffed {
            for &slot in &probe_slots {
                let got = self.model.tail(r, slot);
                let want = shadow.tail(r, slot);
                if (got - want).abs() > 1e-8 * want.abs().max(1e-12) {
                    report.record(AuditViolation {
                        check: AuditCheck::DiffSignature,
                        slot: Some(slot),
                        request: Some(r),
                        detail: format!("diffed tail {got:e}, rebuilt tail {want:e}"),
                    });
                    break;
                }
            }
        }
        for &slot in &probe_slots {
            let got = self.model.residual_tail(slot);
            let want = shadow.residual_tail(slot);
            if (got - want).abs() > 1e-8 * want.abs().max(1e-12) {
                report.record(AuditViolation {
                    check: AuditCheck::DiffSignature,
                    slot: Some(slot),
                    request: None,
                    detail: format!("diffed residual tail {got:e}, rebuilt {want:e}"),
                });
            }
        }
    }
}

impl crate::scheduler::Scheduler for GreedyScheduler {
    fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize) {
        GreedyScheduler::update_prediction(self, summary, sender_position);
    }

    fn update_prediction_sparse(
        &mut self,
        summary: &PredictionSummary,
        changes: &crate::delta::PredictionChanges,
        sender_position: usize,
    ) {
        GreedyScheduler::update_prediction_sparse(self, summary, changes, sender_position);
    }

    #[cfg(feature = "audit")]
    fn audit_attach(&mut self, cfg: AuditConfig) {
        GreedyScheduler::audit_attach(self, cfg);
    }

    #[cfg(feature = "audit")]
    fn audit_report(&self) -> Option<AuditReport> {
        GreedyScheduler::audit_report(self)
    }

    fn next_batch(&mut self, count: usize) -> Schedule {
        GreedyScheduler::next_batch(self, count)
    }

    fn set_slot_duration(&mut self, slot: Duration) {
        GreedyScheduler::set_slot_duration(self, slot);
    }

    fn simulated_cache(&self) -> HashMap<RequestId, u32> {
        GreedyScheduler::simulated_cache(self)
    }

    fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        GreedyScheduler::expected_utility(self, initial)
    }

    fn horizon(&self) -> usize {
        self.cfg.cache_blocks
    }

    fn prediction_updates(&self) -> u64 {
        self.updates
    }

    fn diff_applied_updates(&self) -> u64 {
        self.diff_updates
    }

    fn rejected_gap_slots(&self) -> u64 {
        self.gap_slots_rejected
    }

    fn sampler_entries(&self) -> usize {
        self.sampler.live_entries()
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Length of the contiguous prefix (starting at block 0) in a resident set.
fn resident_prefix_len(set: &BTreeSet<u32>) -> u32 {
    let mut len = 0;
    for &idx in set {
        if idx == len {
            len += 1;
        } else {
            break;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Time;
    use crate::utility::{GainTable, LinearUtility, PiecewiseUtility, PowerUtility};

    fn mk(n: usize, blocks: u32, cache_blocks: usize, meta: bool) -> GreedyScheduler {
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks,
            batch_size: 100,
            use_meta_request: meta,
            ..Default::default()
        };
        GreedyScheduler::new(
            cfg,
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog,
        )
    }

    #[test]
    fn fills_batches_and_respects_block_limits() {
        let mut s = mk(4, 2, 8, true);
        let batch = s.next_batch(8);
        assert_eq!(batch.len(), 8);
        // 4 requests × 2 blocks each = 8 blocks total; all must be distinct.
        let mut seen = HashSet::new();
        for b in &batch {
            assert!(seen.insert(*b), "block {b} scheduled twice");
            assert!(b.index < 2);
        }
        assert_eq!(s.scheduled_blocks(), 8);
    }

    #[test]
    fn concentrates_on_predicted_request() {
        let mut s = mk(100, 10, 50, true);
        let pred = PredictionSummary::point(100, RequestId(7), Time::ZERO);
        s.update_prediction(&pred, 0);
        let batch = s.next_batch(50);
        let for_7 = batch.iter().filter(|b| b.request == RequestId(7)).count();
        // With probability 1 on request 7, the vast majority of blocks go to
        // it (it only has 10 blocks, so exactly 10 here).
        assert_eq!(for_7, 10);
        // Block indices for request 7 are the full prefix 0..10.
        let mut idx: Vec<u32> = batch
            .iter()
            .filter(|b| b.request == RequestId(7))
            .map(|b| b.index)
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_prior_hedges_widely() {
        let mut s = mk(1000, 10, 200, true);
        let batch = s.next_batch(200);
        assert_eq!(batch.len(), 200);
        let distinct: HashSet<RequestId> = batch.iter().map(|b| b.request).collect();
        // With a uniform prior and linear utility, hedging should cover many
        // distinct requests (mostly first blocks).
        assert!(
            distinct.len() > 100,
            "only {} distinct requests",
            distinct.len()
        );
    }

    #[test]
    fn concave_utility_spreads_more_than_linear() {
        let n = 50;
        let blocks = 20;
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 100,
            ..Default::default()
        };
        let mut linear = GreedyScheduler::new(
            cfg.clone(),
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog.clone(),
        );
        let mut concave = GreedyScheduler::new(
            cfg,
            UtilityModel::homogeneous(&PowerUtility::new(0.3), blocks),
            catalog,
        );
        let pred = PredictionSummary::point(n, RequestId(0), Time::ZERO);
        linear.update_prediction(&pred, 0);
        concave.update_prediction(&pred, 0);
        let lb = linear.next_batch(100);
        let cb = concave.next_batch(100);
        let l_distinct: HashSet<_> = lb.iter().map(|b| b.request).collect();
        let c_distinct: HashSet<_> = cb.iter().map(|b| b.request).collect();
        // Concave utility saturates the likely request's marginal gain faster,
        // so it hedges across at least as many other requests.
        assert!(c_distinct.len() >= l_distinct.len());
    }

    #[test]
    fn tracks_client_cache_across_schedules() {
        // Cache comfortably larger than one response: the prefix continues
        // across batches instead of restarting at block 0.
        let mut s = mk(2, 8, 16, true);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        // First batch: 4 blocks, all for request 1 (indices 0..4).
        let b1 = s.next_batch(4);
        assert!(b1.iter().all(|b| b.request == RequestId(1)));
        // The next batch continues the prefix instead of restarting at 0.
        let b2 = s.next_batch(4);
        let idx: Vec<u32> = b2
            .iter()
            .filter(|b| b.request == RequestId(1))
            .map(|b| b.index)
            .collect();
        assert!(idx.iter().all(|&i| i >= 4), "indices restarted: {idx:?}");
        assert!(s.simulated_cache().contains_key(&RequestId(1)));
    }

    #[test]
    fn repairs_evicted_prefix_blocks() {
        // Cache (4 blocks) smaller than one response (8 blocks): pushing the
        // tail evicts the head, so the scheduler must circle back and repair
        // the renderable prefix rather than pushing ever-higher indices.
        let mut s = mk(2, 8, 4, true);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        let _ = s.next_batch(4); // indices 0..4 pushed, ring full
        let b2 = s.next_batch(4);
        // The first block of the second batch (index 4) evicts block 0, so a
        // later slot must re-push block 0.
        assert!(
            b2.iter().any(|b| b.index == 0),
            "prefix never repaired: {b2:?}"
        );
    }

    #[test]
    fn without_cache_tracking_indices_restart() {
        // Disable tracking: pure Listing 1 semantics.
        let catalog = Arc::new(ResponseCatalog::uniform(2, 8, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 4,
            track_client_cache: false,
            ..Default::default()
        };
        let mut s =
            GreedyScheduler::new(cfg, UtilityModel::homogeneous(&LinearUtility, 8), catalog);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        let _b1 = s.next_batch(4);
        let b2 = s.next_batch(4);
        assert!(
            b2.iter().any(|b| b.index == 0),
            "expected restart at block 0"
        );
    }

    #[test]
    fn sender_position_is_respected_on_update() {
        let mut s = mk(10, 4, 20, true);
        let _ = s.next_batch(10);
        assert_eq!(s.position(), 10);
        // New prediction arrives while the sender has already pushed 12 blocks
        // of this schedule: scheduling resumes at slot 12.
        let pred = PredictionSummary::point(10, RequestId(3), Time::ZERO);
        let resident_before = s.simulated_cache().get(&RequestId(3)).copied().unwrap_or(0);
        s.update_prediction(&pred, 12);
        assert_eq!(s.position(), 12);
        let batch = s.next_batch(100);
        // All probability mass sits on request 3, so the batch completes its
        // prefix (whatever the uniform warm-up batch already delivered) before
        // anything else — and nothing else has positive gain.
        let need = (4 - resident_before) as usize;
        assert!(batch.len() >= need, "batch too short: {batch:?}");
        assert!(
            batch.iter().take(need).all(|b| b.request == RequestId(3)),
            "request 3's prefix not completed first: {batch:?}"
        );
        assert_eq!(
            s.simulated_cache().get(&RequestId(3)).copied().unwrap_or(0),
            4,
            "request 3 should be fully resident after the update"
        );
    }

    #[test]
    fn exhausts_all_blocks_then_stops() {
        let mut s = mk(2, 2, 16, true);
        let batch = s.next_batch(16);
        // Only 4 distinct blocks exist; with cache tracking the scheduler
        // refuses to schedule duplicates within the ring's lifetime.
        assert_eq!(batch.len(), 4);
        assert!(s.next_batch(4).is_empty());
    }

    #[test]
    fn meta_and_materialized_paths_agree_statistically() {
        // With and without the meta-request optimization, the same prediction
        // should lead to a similar spread of scheduled requests.
        let mut with_meta = mk(200, 4, 100, true);
        let mut without_meta = mk(200, 4, 100, false);
        let pred = PredictionSummary::point(200, RequestId(5), Time::ZERO);
        with_meta.update_prediction(&pred, 0);
        without_meta.update_prediction(&pred, 0);
        let a = with_meta.next_batch(100);
        let b = without_meta.next_batch(100);
        let a5 = a.iter().filter(|x| x.request == RequestId(5)).count();
        let b5 = b.iter().filter(|x| x.request == RequestId(5)).count();
        assert_eq!(a5, 4);
        assert_eq!(b5, 4);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mk_seeded = || {
            let catalog = Arc::new(ResponseCatalog::uniform(50, 5, 100));
            GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: 60,
                    seed: 42,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, 5),
                catalog,
            )
        };
        let mut a = mk_seeded();
        let mut b = mk_seeded();
        assert_eq!(a.next_batch(60), b.next_batch(60));
    }

    #[test]
    fn legacy_scan_path_still_schedules() {
        let catalog = Arc::new(ResponseCatalog::uniform(4, 2, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 8,
            sampler: SamplerVariant::Scan,
            ..Default::default()
        };
        let mut s =
            GreedyScheduler::new(cfg, UtilityModel::homogeneous(&LinearUtility, 2), catalog);
        let batch = s.next_batch(8);
        assert_eq!(batch.len(), 8);
        let mut seen = HashSet::new();
        for b in &batch {
            assert!(seen.insert(*b), "block {b} scheduled twice");
        }
    }

    const ALL_VARIANTS: [SamplerVariant; 3] = [
        SamplerVariant::Scan,
        SamplerVariant::Eager,
        SamplerVariant::Lazy,
    ];

    /// Builds one scheduler per seed, applies `pred`, and returns how often
    /// the first sampled block went to `watch` and how often it went to a
    /// request that was untouched (not materialized) at draw time.
    fn first_draw_stats(
        catalog: &Arc<ResponseCatalog>,
        cache: usize,
        variant: SamplerVariant,
        pred: &PredictionSummary,
        watch: RequestId,
        utility: &UtilityModel,
        seeds: u64,
    ) -> (f64, f64) {
        let materialized: HashSet<RequestId> = pred.materialized_requests().into_iter().collect();
        let mut watched = 0usize;
        let mut untouched = 0usize;
        for seed in 0..seeds {
            let mut s = GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: cache,
                    sampler: variant,
                    seed,
                    ..Default::default()
                },
                utility.clone(),
                catalog.clone(),
            );
            s.update_prediction(pred, 0);
            let batch = s.next_batch(1);
            let Some(first) = batch.first() else { continue };
            if first.request == watch {
                watched += 1;
            }
            if !materialized.contains(&first.request) {
                untouched += 1;
            }
        }
        (
            watched as f64 / seeds as f64,
            untouched as f64 / seeds as f64,
        )
    }

    fn sparse_pred(n: usize, entries: Vec<(RequestId, f64)>, residual: f64) -> PredictionSummary {
        let dist = crate::distribution::SparseDistribution::from_entries(n, entries, residual);
        let slices = PredictionSummary::default_deltas()
            .into_iter()
            .map(|delta| crate::distribution::HorizonSlice {
                delta,
                dist: dist.clone(),
            })
            .collect();
        PredictionSummary::new(n, slices, Time::ZERO)
    }

    #[test]
    fn all_variants_first_draw_distributions_match() {
        // Statistical parity: for the same prediction, the stationary
        // first-draw distribution of every sampler variant must match the
        // legacy scan's within a seed-controlled tolerance (all paths draw
        // from the identical weight decomposition; only the cost differs).
        let n = 100;
        let catalog = Arc::new(ResponseCatalog::uniform(n, 4, 1000));
        let utility = UtilityModel::homogeneous(&LinearUtility, 4);
        let pred = sparse_pred(n, vec![(RequestId(5), 0.4), (RequestId(9), 0.2)], 0.4);
        let seeds = 400;
        let (scan_watch, scan_meta) = first_draw_stats(
            &catalog,
            50,
            SamplerVariant::Scan,
            &pred,
            RequestId(5),
            &utility,
            seeds,
        );
        for variant in [SamplerVariant::Eager, SamplerVariant::Lazy] {
            let (watch, meta) =
                first_draw_stats(&catalog, 50, variant, &pred, RequestId(5), &utility, seeds);
            assert!(
                (watch - scan_watch).abs() < 0.1,
                "request-5 share diverged: {variant:?} {watch} vs scan {scan_watch}"
            );
            assert!(
                (meta - scan_meta).abs() < 0.1,
                "untouched share diverged: {variant:?} {meta} vs scan {scan_meta}"
            );
            // Sanity: the materialized request actually dominates the residual.
            assert!(watch > 0.3, "request-5 share only {watch} ({variant:?})");
        }
    }

    #[test]
    fn all_variants_agree_on_point_prediction() {
        // Under a point prediction the draw is deterministic regardless of
        // sampler: every path must allocate exactly the predicted request's
        // blocks, in prefix order.
        for variant in ALL_VARIANTS {
            let catalog = Arc::new(ResponseCatalog::uniform(50, 6, 1000));
            let mut s = GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: 40,
                    sampler: variant,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, 6),
                catalog,
            );
            s.update_prediction(&PredictionSummary::point(50, RequestId(3), Time::ZERO), 0);
            let batch = s.next_batch(40);
            let expected: Vec<BlockRef> = (0..6).map(|j| BlockRef::new(RequestId(3), j)).collect();
            assert_eq!(batch, expected, "variant={variant:?}");
        }
    }

    #[test]
    fn heterogeneous_meta_hedge_not_starved() {
        // Regression for the PR 2 meta-weight bug: the untouched meta-group's
        // per-member gain used `utility.table(0).next_gain(0)`.  With a
        // heterogeneous model whose table 0 has a tiny first-block gain, that
        // under-weighted every untouched request ~50×, starving the hedge.
        // Per-class meta-entries make the hedge exact for every class.
        let n = 40;
        let tiny_first = PiecewiseUtility::from_points(vec![(0.5, 0.01)], "tiny-first");
        let mut tables = vec![GainTable::new(&tiny_first, 2)]; // g(1) = 0.01
        tables.extend((1..n).map(|_| GainTable::new(&LinearUtility, 2))); // g(1) = 0.5
        let utility = UtilityModel::per_request(tables);
        // Half the mass on materialized request 1, half residual across the
        // other 39: untouched and request 1 should split the first draw
        // roughly evenly (38 · 0.5 · residual/request ≈ 0.5 · p₁ here).
        let pred = sparse_pred(n, vec![(RequestId(1), 0.5)], 0.5);
        let catalog = Arc::new(ResponseCatalog::uniform(n, 2, 1000));
        for variant in ALL_VARIANTS {
            let (watch, untouched_share) =
                first_draw_stats(&catalog, 30, variant, &pred, RequestId(1), &utility, 300);
            assert!(
                untouched_share > 0.25,
                "untouched share {untouched_share} (request-1 share {watch}) — \
                 meta group under-weighted (variant={variant:?})"
            );
        }
    }

    #[test]
    fn meta_hedge_is_exact_per_class() {
        // Two untouched utility classes of equal size under a uniform
        // residual: class A's first-block gain is 10× class B's, so the
        // first draw should land on class-A requests ~10× as often.  The
        // catalog-wide bound of PR 2 weighted both classes identically (and
        // over-weighted B 10×); per-class meta-entries restore the exact
        // ratio.
        let n = 40;
        let small = PiecewiseUtility::from_points(vec![(0.5, 0.05)], "small-first"); // g(1) = 0.05
        let tables: Vec<GainTable> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    GainTable::new(&LinearUtility, 2) // g(1) = 0.5
                } else {
                    GainTable::new(&small, 2)
                }
            })
            .collect();
        let utility = UtilityModel::per_request(tables);
        let pred = PredictionSummary::uniform(n, Time::ZERO);
        let catalog = Arc::new(ResponseCatalog::uniform(n, 2, 1000));
        for variant in ALL_VARIANTS {
            let mut class_a = 0usize;
            let seeds = 600;
            for seed in 0..seeds {
                let mut s = GreedyScheduler::new(
                    GreedySchedulerConfig {
                        cache_blocks: 20,
                        sampler: variant,
                        seed,
                        ..Default::default()
                    },
                    utility.clone(),
                    catalog.clone(),
                );
                s.update_prediction(&pred, 0);
                if let Some(first) = s.next_batch(1).first() {
                    if first.request.index() % 2 == 0 {
                        class_a += 1;
                    }
                }
            }
            let share = class_a as f64 / seeds as f64;
            // Exact hedge: 0.5 / (0.5 + 0.05) ≈ 0.909.  The catalog-wide
            // bound gave 0.5.
            assert!(
                share > 0.85,
                "class-A share {share}, expected ~0.91 (variant={variant:?})"
            );
        }
    }

    #[test]
    fn rollback_across_eviction_restores_ring() {
        // Headline regression: rolling back a block whose delivery evicted an
        // older ring entry must restore that entry, or the simulated cache
        // diverges from the client's forever.
        let mut s = mk(2, 4, 3, true);
        let pred = PredictionSummary::point(2, RequestId(0), Time::ZERO);
        s.update_prediction(&pred, 0);
        // Fill the schedule (and the ring) with request 0's prefix 0..3.
        let b1 = s.next_batch(3);
        assert_eq!(
            b1,
            (0..3)
                .map(|j| BlockRef::new(RequestId(0), j))
                .collect::<Vec<_>>()
        );
        // Next block wraps the schedule and delivers block 3, evicting
        // block 0 from the full ring.
        let b2 = s.next_batch(1);
        assert_eq!(b2, vec![BlockRef::new(RequestId(0), 3)]);
        assert_eq!(
            s.simulated_ring(),
            vec![
                BlockRef::new(RequestId(0), 1),
                BlockRef::new(RequestId(0), 2),
                BlockRef::new(RequestId(0), 3),
            ]
        );
        // The sender never transmitted block 3; a re-prediction rolls it
        // back.  The eviction must be undone: block 0 returns to the ring.
        s.update_prediction(&pred, 0);
        assert_eq!(
            s.simulated_ring(),
            vec![
                BlockRef::new(RequestId(0), 0),
                BlockRef::new(RequestId(0), 1),
                BlockRef::new(RequestId(0), 2),
            ],
            "evicted entry not restored on rollback"
        );
        assert_eq!(s.simulated_cache().get(&RequestId(0)), Some(&3));
        // And scheduling resumes from the repaired prefix: block 3 again,
        // not a spurious re-push of block 0.
        let b3 = s.next_batch(1);
        assert_eq!(b3, vec![BlockRef::new(RequestId(0), 3)]);
    }

    #[test]
    fn rollback_below_sender_ahead_gap_pops_right_entries() {
        // Satellite regression (ROADMAP): the sender reports a position
        // beyond the scheduler's `t`, then a later prediction rolls back
        // below the gap.  The gap slots are represented explicitly, so the
        // rollback pops exactly one log entry per slot and the simulated
        // ring stays exact.
        let mut s = mk(4, 4, 12, true);
        let pred0 = PredictionSummary::point(4, RequestId(0), Time::ZERO);
        s.update_prediction(&pred0, 0);
        let b1 = s.next_batch(3); // slots 0..3: request 0's prefix
        assert_eq!(
            b1,
            (0..3)
                .map(|j| BlockRef::new(RequestId(0), j))
                .collect::<Vec<_>>()
        );
        // The sender claims it is at slot 6: slots 3..6 become gaps.
        let pred1 = PredictionSummary::point(4, RequestId(1), Time::ZERO);
        s.update_prediction(&pred1, 6);
        assert_eq!(s.position(), 6);
        assert_eq!(s.gap_slots(), 3);
        let b2 = s.next_batch(2); // slots 6..8: request 1's prefix
        assert_eq!(
            b2,
            (0..2)
                .map(|j| BlockRef::new(RequestId(1), j))
                .collect::<Vec<_>>()
        );
        // Roll back below the gap: everything from slot 1 on is undone —
        // two real blocks for request 1 and three empty gap slots, leaving
        // exactly request 0's first block.
        s.update_prediction(&pred0, 1);
        assert_eq!(s.position(), 1);
        assert_eq!(s.simulated_ring(), vec![BlockRef::new(RequestId(0), 0)]);
        // Scheduling resumes coherently at slot 1.
        let b3 = s.next_batch(3);
        assert_eq!(
            b3,
            (1..4)
                .map(|j| BlockRef::new(RequestId(0), j))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sender_ahead_gap_creation_is_rate_limited() {
        // Satellite regression (ROADMAP): a sender repeatedly claiming
        // positions near `C` must not force a schedule wrap per update.
        // With the default cap of half the horizon, each update opens at
        // most `C/2` gaps; the excess is rejected and counted.
        let mut s = mk(10, 4, 20, true); // max_gap_slots = 10
        let pred = PredictionSummary::point(10, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 20);
        assert_eq!(s.position(), 10, "gap creation must be clamped");
        assert_eq!(s.gap_slots(), 10);
        assert_eq!(s.rejected_gap_slots(), 10);
        // From t=10 the same claim fits the budget: no further rejections.
        s.update_prediction(&pred, 20);
        assert_eq!(s.position(), 20);
        assert_eq!(s.gap_slots(), 20);
        assert_eq!(s.rejected_gap_slots(), 10);
        // A fraction of 1.0 disables the limit (the pre-cap behaviour).
        let catalog = Arc::new(ResponseCatalog::uniform(10, 4, 1000));
        let mut s = GreedyScheduler::new(
            GreedySchedulerConfig {
                cache_blocks: 20,
                max_gap_fraction: 1.0,
                ..Default::default()
            },
            UtilityModel::homogeneous(&LinearUtility, 4),
            catalog,
        );
        s.update_prediction(&pred, 20);
        assert_eq!(s.position(), 20);
        assert_eq!(s.rejected_gap_slots(), 0);
    }

    #[test]
    fn overlapping_predictions_take_the_diff_path() {
        let mut s = mk(50, 4, 30, true);
        let p1 = sparse_pred(50, vec![(RequestId(5), 0.4), (RequestId(9), 0.2)], 0.4);
        s.update_prediction(&p1, 0);
        let _ = s.next_batch(10);
        // Overlapping re-prediction: reweight 5, drop 9, join 11.
        let p2 = sparse_pred(50, vec![(RequestId(5), 0.3), (RequestId(11), 0.3)], 0.4);
        s.update_prediction(&p2, 4);
        assert_eq!(s.diff_applied_updates(), 2, "both updates should diff");
        // An incompatible slice layout falls back to the full rebuild.
        let slices = vec![crate::distribution::HorizonSlice {
            delta: Duration::from_millis(10),
            dist: crate::distribution::SparseDistribution::point(50, RequestId(2)),
        }];
        s.update_prediction(&PredictionSummary::new(50, slices, Time::ZERO), 0);
        assert_eq!(s.diff_applied_updates(), 2);
        assert_eq!(s.prediction_updates(), 3);
        // Disabling the knob forces rebuilds.
        let catalog = Arc::new(ResponseCatalog::uniform(50, 4, 1000));
        let mut off = GreedyScheduler::new(
            GreedySchedulerConfig {
                cache_blocks: 30,
                prediction_diff: false,
                ..Default::default()
            },
            UtilityModel::homogeneous(&LinearUtility, 4),
            catalog,
        );
        off.update_prediction(&p1, 0);
        off.update_prediction(&p2, 0);
        assert_eq!(off.diff_applied_updates(), 0);
    }

    #[test]
    fn diff_updates_match_full_rebuild_state() {
        // Drive a diff-enabled and a rebuild-every-time scheduler through
        // the same overlapping update sequence (with scheduling and
        // rollbacks in between) and compare the *semantic* sampling state:
        // every candidate weight as the scan walk derives it.  (The two may
        // legally emit different blocks — the diffed layout appends where a
        // rebuild re-sorts — so block-level equality is checked separately
        // against the scan variant by the parity proptest.)
        let n = 40;
        let mk_one = |diff: bool| {
            let catalog = Arc::new(ResponseCatalog::uniform(n, 4, 1000));
            GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: 24,
                    prediction_diff: diff,
                    seed: 11,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&PowerUtility::new(0.5), 4),
                catalog,
            )
        };
        let updates = [
            sparse_pred(n, vec![(RequestId(3), 0.4), (RequestId(7), 0.2)], 0.4),
            sparse_pred(
                n,
                vec![
                    (RequestId(3), 0.3),
                    (RequestId(7), 0.1),
                    (RequestId(12), 0.2),
                ],
                0.4,
            ),
            sparse_pred(n, vec![(RequestId(12), 0.5), (RequestId(20), 0.1)], 0.4),
            sparse_pred(n, vec![(RequestId(12), 0.45), (RequestId(20), 0.2)], 0.35),
        ];
        let mut with_diff = mk_one(true);
        let mut rebuild = mk_one(false);
        for (i, pred) in updates.iter().enumerate() {
            // Updates-only (identical observable state on both sides):
            // compare every candidate weight.
            with_diff.update_prediction(pred, 0);
            rebuild.update_prediction(pred, 0);
            assert!(
                with_diff.debug_weight_divergence().is_empty(),
                "diffed sampler inconsistent after update {i}: {:?}",
                with_diff.debug_weight_divergence()
            );
            for r in (0..n).map(RequestId::from) {
                let scale_d = with_diff.model.residual_tail(with_diff.t);
                let scale_r = rebuild.model.residual_tail(rebuild.t);
                let wd = if with_diff.model.is_materialized(r) {
                    with_diff.gain_for(r)
                } else {
                    with_diff.marginal_gain(r) * scale_d
                };
                let wr = if rebuild.model.is_materialized(r) {
                    rebuild.gain_for(r)
                } else {
                    rebuild.marginal_gain(r) * scale_r
                };
                assert!(
                    (wd - wr).abs() <= 1e-9 * wr.abs().max(1e-9),
                    "weight({r:?}) diverged after update {i}: diff {wd} vs rebuild {wr}"
                );
            }
        }
        assert_eq!(with_diff.diff_applied_updates(), 4);
        assert_eq!(rebuild.diff_applied_updates(), 0);
        // With scheduling and rollbacks interleaved, the diffed sampler must
        // stay internally consistent with its own model.
        let mut s = mk_one(true);
        for (i, pred) in updates.iter().enumerate() {
            let _ = s.next_batch(10);
            s.update_prediction(pred, i % (s.position() + 1));
            assert!(
                s.debug_weight_divergence().is_empty(),
                "inconsistent after interleaved update {i}: {:?}",
                s.debug_weight_divergence()
            );
        }
    }

    #[test]
    fn gap_slots_lower_expected_utility_of_later_blocks() {
        // The slot-aligned schedule log keeps post-gap blocks at their true
        // slot indices, where the discounted tails are smaller.
        let mk_one = || {
            let catalog = Arc::new(ResponseCatalog::uniform(4, 8, 1000));
            GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: 32,
                    gamma: 0.9,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, 8),
                catalog,
            )
        };
        let pred = PredictionSummary::point(4, RequestId(2), Time::ZERO);
        let initial = HashMap::new();
        let mut dense = mk_one();
        dense.update_prediction(&pred, 0);
        let _ = dense.next_batch(4);
        let mut gapped = mk_one();
        gapped.update_prediction(&pred, 0);
        let _ = gapped.next_batch(1);
        gapped.update_prediction(&pred, 8); // 7 gap slots
        let _ = gapped.next_batch(3);
        assert!(gapped.gap_slots() > 0);
        assert!(
            gapped.expected_utility(&initial) < dense.expected_utility(&initial),
            "gap slots must push later blocks to lower-tail slots"
        );
    }

    #[test]
    fn wrap_carry_over_preserves_schedule_equivalence() {
        // Forced wraps with a materialized prediction: the lazy variant
        // carries its buckets and shared group across `reset_schedule`
        // while the scan variant recomputes everything per draw — the
        // schedules must stay block-for-block identical (same seed) across
        // several wraps, for both cache-tracking settings.
        for tracking in [true, false] {
            let mk_variant = |variant| {
                let catalog = Arc::new(ResponseCatalog::uniform(30, 6, 1000));
                GreedyScheduler::new(
                    GreedySchedulerConfig {
                        cache_blocks: 8, // wraps every 8 blocks
                        sampler: variant,
                        track_client_cache: tracking,
                        seed: 7,
                        ..Default::default()
                    },
                    UtilityModel::homogeneous(&PowerUtility::new(0.5), 6),
                    catalog,
                )
            };
            let pred = sparse_pred(30, vec![(RequestId(3), 0.3), (RequestId(9), 0.2)], 0.5);
            let mut schedules = Vec::new();
            for variant in ALL_VARIANTS {
                let mut s = mk_variant(variant);
                s.update_prediction(&pred, 0);
                // 5 batches of 8 = 40 blocks = 5 schedule wraps.
                let mut all = Vec::new();
                for _ in 0..5 {
                    all.extend(s.next_batch(8));
                }
                schedules.push((variant, all));
            }
            let (_, ref baseline) = schedules[0];
            for (variant, sched) in &schedules[1..] {
                assert_eq!(
                    sched, baseline,
                    "variant {variant:?} diverged from scan across wraps (tracking={tracking})"
                );
            }
        }
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        /// Ground-truth replay of the client's FIFO ring: the client
        /// receives exactly the committed schedules plus the surviving
        /// (non-rolled-back) prefix of the current one, in order, through a
        /// capacity-`C` FIFO.  Slots the sender consumed while running
        /// ahead of the scheduler carry no block (`None`).
        struct ClientReplay {
            cap: usize,
            history: Vec<BlockRef>,
            /// Slot-aligned current schedule (`current.len() == t`).
            current: Vec<Option<BlockRef>>,
            t: usize,
        }

        impl ClientReplay {
            fn new(cap: usize) -> Self {
                ClientReplay {
                    cap,
                    history: Vec::new(),
                    current: Vec::new(),
                    t: 0,
                }
            }

            fn commit(&mut self) {
                self.history.extend(self.current.drain(..).flatten());
                self.t = 0;
            }

            fn on_batch(&mut self, requested: usize, batch: &[BlockRef]) {
                for &b in batch {
                    if self.t >= self.cap {
                        self.commit();
                    }
                    self.current.push(Some(b));
                    self.t += 1;
                }
                // A short batch means the scheduler ran one more loop
                // iteration (which resets at the schedule boundary) before
                // failing to sample.
                if batch.len() < requested && self.t >= self.cap {
                    self.commit();
                }
            }

            fn on_update(&mut self, sender_position: usize) {
                let pos = sender_position.min(self.cap);
                if pos < self.t {
                    self.current.truncate(pos);
                } else {
                    // Sender-ahead gap: empty slots up to its position.
                    while self.current.len() < pos {
                        self.current.push(None);
                    }
                }
                self.t = pos;
            }

            fn ring(&self) -> Vec<BlockRef> {
                let all: Vec<BlockRef> = self
                    .history
                    .iter()
                    .copied()
                    .chain(self.current.iter().copied().flatten())
                    .collect();
                let start = all.len().saturating_sub(self.cap);
                all[start..].to_vec()
            }
        }

        fn replay_ops(
            n: usize,
            blocks: u32,
            cache: usize,
            seed: u64,
            variant: SamplerVariant,
            ops: &[(u8, usize, usize)],
        ) {
            let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
            let mut s = GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: cache,
                    seed,
                    sampler: variant,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, blocks),
                catalog,
            );
            let mut client = ClientReplay::new(cache);
            for &(kind, a, b) in ops {
                match kind {
                    0 | 1 => {
                        let k = a % 5 + 1;
                        let batch = s.next_batch(k);
                        client.on_batch(k, &batch);
                    }
                    2 => {
                        // A real sender reports a position within the
                        // scheduled tail: a rollback.
                        let pos = b % (s.position() + 1);
                        let pred = PredictionSummary::point(n, RequestId::from(a % n), Time::ZERO);
                        s.update_prediction(&pred, pos);
                        client.on_update(pos);
                    }
                    3 => {
                        let pos = b % (s.position() + 1);
                        let pred = PredictionSummary::uniform(n, Time::ZERO);
                        s.update_prediction(&pred, pos);
                        client.on_update(pos);
                    }
                    _ => {
                        // A buggy / adversarial sender claims to be ahead of
                        // the scheduler: the skipped slots become explicit
                        // gaps, clamped to the horizon and rate-limited per
                        // update like the scheduler does — the client replay
                        // mirrors the *effective* position the scheduler
                        // settled on.
                        let pos = (s.position() + b % 4).min(cache);
                        let pred = PredictionSummary::point(n, RequestId::from(a % n), Time::ZERO);
                        s.update_prediction(&pred, pos);
                        client.on_update(s.position());
                    }
                }
                prop_assert_eq!(
                    s.simulated_ring(),
                    client.ring(),
                    "ring diverged after op ({}, {}, {}) [variant={:?}]",
                    kind,
                    a,
                    b,
                    variant
                );
                // Resident counts are a view over the ring.
                let mut counts: HashMap<RequestId, u32> = HashMap::new();
                for blk in client.ring() {
                    *counts.entry(blk.request).or_insert(0) += 1;
                }
                prop_assert_eq!(s.simulated_cache(), counts);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The greedy scheduler never emits duplicate blocks while the ring
            /// still holds them, never exceeds per-request block counts, and
            /// always makes progress while capacity remains — on every sampling
            /// path.
            #[test]
            fn schedule_is_well_formed(
                n in 1usize..40,
                blocks in 1u32..8,
                cache in 1usize..64,
                seed in 0u64..1000
            ) {
                for variant in ALL_VARIANTS {
                    let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
                    let cfg = GreedySchedulerConfig {
                        cache_blocks: cache,
                        seed,
                        sampler: variant,
                        ..Default::default()
                    };
                    let mut s = GreedyScheduler::new(
                        cfg,
                        UtilityModel::homogeneous(&LinearUtility, blocks),
                        catalog,
                    );
                    let batch = s.next_batch(cache);
                    let expected = cache.min(n * blocks as usize);
                    prop_assert_eq!(batch.len(), expected);
                    let mut seen = HashSet::new();
                    for b in &batch {
                        prop_assert!(b.request.index() < n);
                        prop_assert!(b.index < blocks);
                        prop_assert!(seen.insert(*b), "duplicate block {}", b);
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Replaying any random schedule / rollback / sender-ahead-gap /
            /// eviction sequence, the scheduler's simulated ring exactly
            /// equals a ground-truth replay of the client's FIFO ring —
            /// including rollbacks of blocks whose delivery evicted older
            /// entries and rollbacks below sender-ahead gaps.
            #[test]
            fn simulated_ring_matches_client_replay(
                n in 1usize..8,
                blocks in 1u32..5,
                cache in 1usize..10,
                seed in 0u64..10_000,
                ops in collection::vec((0u8..6, 0usize..64, 0usize..64), 1..20)
            ) {
                for variant in ALL_VARIANTS {
                    replay_ops(n, blocks, cache, seed, variant, &ops);
                }
            }
        }

        /// A heterogeneous utility model mixing three distinct gain tables
        /// (three utility classes).
        fn heterogeneous_utility(n: usize, blocks: u32) -> UtilityModel {
            let concave = PowerUtility::new(0.5);
            let steep = PowerUtility::new(0.25);
            let tables: Vec<GainTable> = (0..n)
                .map(|i| match i % 3 {
                    0 => GainTable::new(&LinearUtility, blocks),
                    1 => GainTable::new(&concave, blocks),
                    _ => GainTable::new(&steep, blocks),
                })
                .collect();
            UtilityModel::per_request(tables)
        }

        /// Runs one scheduler of the given variant through the op sequence.
        /// `examples/parity_check.rs` is a 400k-case standalone mirror of
        /// this harness (same op grammar and generators) — extend both
        /// together.
        ///
        /// returning every emitted block (batch boundaries preserved via
        /// sentinel separation is unnecessary — batches are deterministic in
        /// length given parity, which is exactly what the caller asserts).
        #[allow(clippy::too_many_arguments)]
        fn drive_variant(
            variant: SamplerVariant,
            n: usize,
            blocks: u32,
            cache: usize,
            seed: u64,
            meta: bool,
            utility: &UtilityModel,
            ops: &[(u8, usize, usize)],
        ) -> (Vec<BlockRef>, Vec<BlockRef>) {
            let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
            let mut s = GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: cache,
                    seed,
                    sampler: variant,
                    use_meta_request: meta,
                    ..Default::default()
                },
                utility.clone(),
                catalog,
            );
            let mut emitted = Vec::new();
            // Drifting prediction state for the overlapping-update ops
            // (kinds 6–7): successive summaries share most entries, so the
            // scheduler's diff path — not the full rebuild — is exercised.
            let mut evolving: Vec<(usize, f64)> = vec![(0, 0.3), (1 % n, 0.2)];
            for &(kind, a, b) in ops {
                match kind {
                    // Batches large relative to the cache horizon force
                    // schedule wraps mid-batch.
                    0..=2 => emitted.extend(s.next_batch(a % (2 * cache) + 1)),
                    3 => {
                        // Sparse heterogeneous prediction: two materialized
                        // requests plus a residual.
                        let p1 = (a % 9 + 1) as f64 / 20.0;
                        let p2 = (b % 7 + 1) as f64 / 30.0;
                        let pred = sparse_pred(
                            n,
                            vec![(RequestId::from(a % n), p1), (RequestId::from(b % n), p2)],
                            1.0 - p1 - p2,
                        );
                        let pos = b % (s.position() + 1);
                        s.update_prediction(&pred, pos);
                    }
                    4 => {
                        // Time-varying prediction: early mass on one request,
                        // late mass on another — distinct tail shapes, so
                        // the lazy variant exercises multiple buckets.
                        let slices = vec![
                            crate::distribution::HorizonSlice {
                                delta: Duration::from_millis(10),
                                dist: crate::distribution::SparseDistribution::from_entries(
                                    n,
                                    vec![(RequestId::from(a % n), 0.8)],
                                    0.2,
                                ),
                            },
                            crate::distribution::HorizonSlice {
                                delta: Duration::from_millis(400),
                                dist: crate::distribution::SparseDistribution::from_entries(
                                    n,
                                    vec![(RequestId::from(b % n), 0.7)],
                                    0.3,
                                ),
                            },
                        ];
                        let pred = PredictionSummary::new(n, slices, Time::ZERO);
                        let pos = a % (s.position() + 1);
                        s.update_prediction(&pred, pos);
                    }
                    5 => {
                        // Sender-ahead gap, then keep scheduling below it
                        // later via the rollback ops above.
                        let pos = (s.position() + b % 3).min(cache);
                        let pred = PredictionSummary::uniform(n, Time::ZERO);
                        s.update_prediction(&pred, pos);
                    }
                    6 => {
                        // Overlapping re-prediction: mutate ONE entry of the
                        // drifting prediction (add / remove / reweight) and
                        // re-send — the add/remove/reweight grammar of the
                        // diff path.
                        match a % 3 {
                            0 => {
                                let r = b % n;
                                let p = (b % 9 + 1) as f64 / 30.0;
                                match evolving.iter_mut().find(|e| e.0 == r) {
                                    Some(e) => e.1 = p,
                                    None => evolving.push((r, p)),
                                }
                            }
                            1 if evolving.len() > 1 => {
                                evolving.remove(b % evolving.len());
                            }
                            _ => {
                                let i = b % evolving.len();
                                evolving[i].1 *= (a % 5 + 1) as f64 / 3.0;
                            }
                        }
                        let entries: Vec<(RequestId, f64)> = evolving
                            .iter()
                            .map(|&(r, p)| (RequestId::from(r), p))
                            .collect();
                        let mass: f64 = evolving.iter().map(|e| e.1).sum();
                        let pred = sparse_pred(n, entries, (1.0 - mass).max(0.1));
                        let pos = a % (s.position() + 1);
                        s.update_prediction(&pred, pos);
                    }
                    _ => {
                        // Overlapping *shape-changing* re-prediction over
                        // the same slice offsets: early mass follows `a`,
                        // late mass follows the drifting entries, so
                        // successive updates move requests between shape
                        // buckets through the diff path.
                        let early = crate::distribution::SparseDistribution::from_entries(
                            n,
                            vec![(RequestId::from(a % n), 0.6)],
                            0.4,
                        );
                        let entries: Vec<(RequestId, f64)> = evolving
                            .iter()
                            .map(|&(r, p)| (RequestId::from(r), p))
                            .collect();
                        let mass: f64 = evolving.iter().map(|e| e.1).sum();
                        let late = crate::distribution::SparseDistribution::from_entries(
                            n,
                            entries,
                            (1.0 - mass).max(0.1),
                        );
                        let slices = PredictionSummary::default_deltas()
                            .into_iter()
                            .enumerate()
                            .map(|(i, delta)| crate::distribution::HorizonSlice {
                                delta,
                                dist: if i < 2 { early.clone() } else { late.clone() },
                            })
                            .collect();
                        let pred = PredictionSummary::new(n, slices, Time::ZERO);
                        let pos = b % (s.position() + 1);
                        s.update_prediction(&pred, pos);
                    }
                }
            }
            // The incremental weight structure must agree with a
            // from-scratch recomputation of every candidate weight after any
            // op sequence — the diff path may never leave stale state.
            assert!(
                s.debug_weight_divergence().is_empty(),
                "sampler diverged from model ({:?}): {:?}",
                variant,
                s.debug_weight_divergence()
            );
            (emitted, s.simulated_ring())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Block-for-block parity across all three sampler variants:
            /// randomized heterogeneous-utility catalogs, forced schedule
            /// wraps (cache far smaller than the block universe), sparse and
            /// time-varying predictions (multiple tail-shape buckets),
            /// rollbacks, sender-ahead gaps, and *sequences of overlapping
            /// prediction updates* (add / remove / reweight / shape-change,
            /// exercising the diff path) — under a fixed seed the legacy
            /// scan, the eager PR 2 sampler, and the lazy-bucket sampler
            /// must emit identical schedules and identical simulated rings.
            #[test]
            fn sampler_variants_emit_identical_schedules(
                n in 2usize..14,
                blocks in 1u32..6,
                cache in 2usize..20,
                seed in 0u64..10_000,
                ops in collection::vec((0u8..8, 0usize..64, 0usize..64), 1..14)
            ) {
                let utility = heterogeneous_utility(n, blocks);
                for meta in [true, false] {
                    let (scan_blocks, scan_ring) = drive_variant(
                        SamplerVariant::Scan, n, blocks, cache, seed, meta, &utility, &ops,
                    );
                    for variant in [SamplerVariant::Eager, SamplerVariant::Lazy] {
                        let (v_blocks, v_ring) = drive_variant(
                            variant, n, blocks, cache, seed, meta, &utility, &ops,
                        );
                        prop_assert_eq!(
                            &v_blocks,
                            &scan_blocks,
                            "{:?} diverged from scan (meta={})",
                            variant,
                            meta
                        );
                        prop_assert_eq!(&v_ring, &scan_ring, "ring diverged ({:?})", variant);
                    }
                }
            }
        }
    }
}
