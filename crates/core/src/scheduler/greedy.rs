//! The greedy scheduler (Listing 1 of the paper).
//!
//! Each scheduling step computes, for every request, the expected utility
//! gain of giving it one more block — `P_{i,t} · g(B_i + 1)` — and samples a
//! request proportionally to that gain.  Batches of up to `bs` blocks are
//! emitted at a time so the sender is never blocked; after a full schedule of
//! `C` blocks (the client cache size) the per-schedule allocation state
//! resets, mirroring the ring buffer overwriting itself (§5.3.1).
//!
//! Two refinements from the paper are implemented and individually toggleable
//! so their effect can be measured:
//!
//! * **Meta-request optimization** (§5.3.1): the (usually huge) set of
//!   requests with identical residual probability is never materialized;
//!   it is represented by a single meta-entry whose weight is the sum of its
//!   members', and a member is drawn uniformly when the meta-entry wins.
//! * **Client-cache tracking**: the scheduler simulates the client's
//!   deterministic FIFO ring (§3.3) so it knows which block index to send
//!   next for each request and never re-pushes a block that is still
//!   resident.  Disabling it reproduces the bare Listing 1 behaviour where
//!   per-schedule counts restart from zero.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::ResponseCatalog;
use crate::distribution::PredictionSummary;
use crate::scheduler::{HorizonModel, Schedule};
use crate::types::{BlockRef, Duration, RequestId};
use crate::utility::UtilityModel;

/// Configuration of the greedy scheduler.
#[derive(Debug, Clone)]
pub struct GreedySchedulerConfig {
    /// Client cache size in blocks — the scheduling horizon `C`.
    pub cache_blocks: usize,
    /// Maximum number of blocks scheduled per iteration before checking for a
    /// fresh prediction (`bs`, default 100).
    pub batch_size: usize,
    /// Future discount γ ∈ [0, 1] (Eq. 1).  The default of 0.8 per slot keeps
    /// a confident short-term prediction from being swamped by the
    /// near-uniform residual mass that accumulates when the scheduling
    /// horizon (`C` slots) extends far past the predictor's own horizon;
    /// experiment configs that sweep γ pass their own value.
    pub gamma: f64,
    /// Time to place one block on the network at the current bandwidth
    /// estimate; used to convert slot indices into prediction offsets.
    pub slot_duration: Duration,
    /// Enables the meta-request optimization (§5.3.1).
    pub use_meta_request: bool,
    /// Simulate the client's FIFO ring so block indices continue across
    /// schedules and resident blocks are not re-pushed.
    pub track_client_cache: bool,
    /// RNG seed for the proportional sampling, for reproducibility.
    pub seed: u64,
}

impl Default for GreedySchedulerConfig {
    fn default() -> Self {
        GreedySchedulerConfig {
            cache_blocks: 1024,
            batch_size: 100,
            gamma: 0.80,
            slot_duration: Duration::from_millis(1),
            use_meta_request: true,
            track_client_cache: true,
            seed: 0x5eed,
        }
    }
}

/// The greedy scheduler of §5.3.
pub struct GreedyScheduler {
    cfg: GreedySchedulerConfig,
    utility: UtilityModel,
    catalog: Arc<ResponseCatalog>,
    model: HorizonModel,
    rng: StdRng,
    /// Blocks allocated per request during the current schedule (Listing 1's
    /// `B`), kept sparse because only touched requests matter.
    allocated: HashMap<RequestId, u32>,
    /// Position within the current schedule (Listing 1's `t`).
    t: usize,
    /// Blocks scheduled in the current schedule, in slot order; needed to roll
    /// back not-yet-sent slots when a new prediction arrives (§5.3.2).
    current_schedule: Vec<BlockRef>,
    /// Exact simulation of the client's ring-buffer contents (block refs in
    /// arrival order) when `track_client_cache` is on.
    ring: VecDeque<BlockRef>,
    /// Per-request resident block indices (a view over `ring`): tracking the
    /// exact indices lets the scheduler repair prefix gaps after evictions,
    /// since renderable quality depends on the contiguous prefix (§3.3).
    resident: HashMap<RequestId, BTreeSet<u32>>,
    /// Requests currently excluded from the meta group because they have
    /// explicit probability, allocations, or resident blocks.
    touched: HashSet<RequestId>,
    /// Number of prediction updates received (for instrumentation).
    updates: u64,
    /// Total blocks scheduled since creation (for instrumentation).
    scheduled_blocks: u64,
}

impl GreedyScheduler {
    /// Creates a scheduler with a uniform prior over all requests.
    pub fn new(
        cfg: GreedySchedulerConfig,
        utility: UtilityModel,
        catalog: Arc<ResponseCatalog>,
    ) -> Self {
        assert!(cfg.cache_blocks > 0, "cache must hold at least one block");
        assert!(cfg.batch_size > 0, "batch size must be positive");
        let model = HorizonModel::uniform(
            catalog.num_requests(),
            cfg.cache_blocks,
            cfg.slot_duration,
            cfg.gamma,
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut s = GreedyScheduler {
            cfg,
            utility,
            catalog,
            model,
            rng,
            allocated: HashMap::new(),
            t: 0,
            current_schedule: Vec::new(),
            ring: VecDeque::new(),
            resident: HashMap::new(),
            touched: HashSet::new(),
            updates: 0,
            scheduled_blocks: 0,
        };
        s.rebuild_touched();
        s
    }

    /// The configuration in use.
    pub fn config(&self) -> &GreedySchedulerConfig {
        &self.cfg
    }

    /// Number of prediction updates applied so far.
    pub fn prediction_updates(&self) -> u64 {
        self.updates
    }

    /// Total number of blocks scheduled so far.
    pub fn scheduled_blocks(&self) -> u64 {
        self.scheduled_blocks
    }

    /// Position within the current schedule (`t` in Listing 1).
    pub fn position(&self) -> usize {
        self.t
    }

    /// Updates the bandwidth-derived slot duration.  Takes effect on the next
    /// prediction update (the current materialized horizon is kept).
    pub fn set_slot_duration(&mut self, slot: Duration) {
        self.cfg.slot_duration = slot;
    }

    /// Applies a fresh prediction from the client.
    ///
    /// Per §5.3.2, scheduling work already handed to the sender is immutable:
    /// the caller passes `sender_position`, the number of blocks of the
    /// current schedule that have already been placed on the network.  Slots
    /// scheduled beyond that position are rolled back and re-planned under
    /// the new probabilities; slots before it are untouched.
    pub fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize) {
        self.model = HorizonModel::build(
            summary,
            self.cfg.cache_blocks,
            self.cfg.slot_duration,
            self.cfg.gamma,
        );
        self.updates += 1;
        let sender_position = sender_position.min(self.cfg.cache_blocks);
        if sender_position < self.t {
            // Roll back the not-yet-sent tail of the current schedule.
            while self.t > sender_position {
                if let Some(block) = self.current_schedule.pop() {
                    if let Some(c) = self.allocated.get_mut(&block.request) {
                        *c = c.saturating_sub(1);
                        if *c == 0 {
                            self.allocated.remove(&block.request);
                        }
                    }
                    self.undo_ring_delivery(block);
                }
                self.t -= 1;
            }
        } else {
            // The sender is ahead of the scheduler (it drained its queue);
            // skip the intervening slots.
            self.t = sender_position;
        }
        self.rebuild_touched();
    }

    fn undo_ring_delivery(&mut self, block: BlockRef) {
        if !self.cfg.track_client_cache {
            return;
        }
        if self.ring.back() == Some(&block) {
            self.ring.pop_back();
            if let Some(set) = self.resident.get_mut(&block.request) {
                set.remove(&block.index);
                if set.is_empty() {
                    self.resident.remove(&block.request);
                }
            }
        }
    }

    fn rebuild_touched(&mut self) {
        self.touched.clear();
        for r in self.model.materialized() {
            self.touched.insert(r);
        }
        for &r in self.allocated.keys() {
            self.touched.insert(r);
        }
        if self.cfg.track_client_cache {
            for &r in self.resident.keys() {
                self.touched.insert(r);
            }
        }
    }

    /// Blocks of `request` the scheduler believes the client currently holds
    /// (as a renderable contiguous prefix) or will hold once the pending
    /// schedule is delivered.
    ///
    /// With cache tracking enabled the simulated ring already includes the
    /// blocks allocated in the current schedule (they are "delivered" to the
    /// simulation as they are scheduled), so it is the single source of truth;
    /// otherwise only the per-schedule allocation counts (bare Listing 1).
    /// The prefix — not the raw count — is used so that a response whose
    /// early blocks were evicted gets its prefix repaired before its tail is
    /// extended.
    fn effective_blocks(&self, request: RequestId) -> u32 {
        if self.cfg.track_client_cache {
            self.resident
                .get(&request)
                .map(resident_prefix_len)
                .unwrap_or(0)
        } else {
            self.allocated.get(&request).copied().unwrap_or(0)
        }
    }

    /// Expected utility gain of giving one more block to `request` at the
    /// current schedule position.
    fn gain_for(&self, request: RequestId) -> f64 {
        let have = self.effective_blocks(request);
        let nb = self.catalog.num_blocks(request);
        if have >= nb {
            return 0.0;
        }
        let g = self.utility.table(request.index()).next_gain(have);
        g * self.model.tail(request, self.t)
    }

    /// Draws one request proportionally to utility gain; returns `None` when
    /// every request is saturated or has zero gain.
    fn sample_request(&mut self) -> Option<RequestId> {
        // Weights of the touched (materialized / allocated / resident)
        // requests.  Sorted so the cumulative-sum sampling below is fully
        // deterministic under a fixed seed (HashSet iteration order is not).
        let mut touched: Vec<RequestId> = self.touched.iter().copied().collect();
        touched.sort_unstable();
        let mut weights: Vec<(RequestId, f64)> = Vec::with_capacity(touched.len() + 1);
        let mut total = 0.0;
        for r in touched {
            let w = self.gain_for(r);
            if w > 0.0 {
                total += w;
                weights.push((r, w));
            }
        }

        // Meta-request: all untouched requests share the residual tail and a
        // zero allocation, so their joint weight is count * residual_gain.
        let untouched = self.model.num_requests() - self.touched.len();
        let mut meta_weight = 0.0;
        if self.cfg.use_meta_request && untouched > 0 {
            let g1 = self.meta_gain();
            meta_weight = g1 * untouched as f64;
            total += meta_weight;
        } else if !self.cfg.use_meta_request {
            // Materialize every untouched request explicitly (the unoptimized
            // baseline measured in Figure 16 / §5.3.1's 13× comparison).
            for i in 0..self.model.num_requests() {
                let r = RequestId::from(i);
                if self.touched.contains(&r) {
                    continue;
                }
                let w = self.gain_for(r);
                if w > 0.0 {
                    total += w;
                    weights.push((r, w));
                }
            }
        }

        if total <= 0.0 {
            return None;
        }
        let mut x = self.rng.gen::<f64>() * total;
        for (r, w) in &weights {
            x -= w;
            if x <= 0.0 {
                return Some(*r);
            }
        }
        if meta_weight > 0.0 {
            return self.sample_untouched();
        }
        weights.last().map(|&(r, _)| r)
    }

    /// Marginal gain of the first block of a fresh (untouched) request.
    fn meta_gain(&self) -> f64 {
        // Untouched requests all have zero blocks; use the maximum first-block
        // gain over the catalog via request 0's table when homogeneous.  For
        // heterogeneous models this is approximate but still a valid weight.
        let g1 = self.utility.table(0).next_gain(0);
        g1 * self.model.residual_tail(self.t)
    }

    /// Uniformly samples a request not currently touched.
    fn sample_untouched(&mut self) -> Option<RequestId> {
        let n = self.model.num_requests();
        let untouched = n - self.touched.len();
        if untouched == 0 {
            return None;
        }
        // Rejection sampling: the touched set is tiny compared to n in every
        // realistic configuration, so this terminates almost immediately.  A
        // deterministic fallback scan guards pathological cases.
        for _ in 0..64 {
            let candidate = RequestId::from(self.rng.gen_range(0..n));
            if !self.touched.contains(&candidate) {
                return Some(candidate);
            }
        }
        (0..n)
            .map(RequestId::from)
            .find(|r| !self.touched.contains(r))
    }

    /// Schedules up to `count` blocks.
    ///
    /// Returns the blocks in push order.  Resets the per-schedule allocation
    /// state after a full schedule of `C` blocks, per Listing 1 lines 21–23.
    /// Callers that want Listing 1's "check for a new distribution every `bs`
    /// blocks" behaviour use [`GreedyScheduler::next_default_batch`].
    pub fn next_batch(&mut self, count: usize) -> Schedule {
        let want = count;
        let mut out = Vec::with_capacity(want);
        while out.len() < want {
            if self.t >= self.cfg.cache_blocks {
                // Full schedule allocated: reset (ring has overwritten itself).
                self.reset_schedule();
            }
            let Some(q) = self.sample_request() else {
                break;
            };
            let have = self.effective_blocks(q);
            let block = BlockRef::new(q, have);
            *self.allocated.entry(q).or_insert(0) += 1;
            self.touched.insert(q);
            self.t += 1;
            self.scheduled_blocks += 1;
            self.current_schedule.push(block);
            self.deliver_to_ring(block);
            out.push(block);
        }
        out
    }

    /// Schedules one full batch of `bs` blocks (the per-iteration unit of
    /// Listing 1).
    pub fn next_default_batch(&mut self) -> Schedule {
        self.next_batch(self.cfg.batch_size)
    }

    fn deliver_to_ring(&mut self, block: BlockRef) {
        if !self.cfg.track_client_cache {
            return;
        }
        self.ring.push_back(block);
        self.resident
            .entry(block.request)
            .or_default()
            .insert(block.index);
        if self.ring.len() > self.cfg.cache_blocks {
            if let Some(old) = self.ring.pop_front() {
                if let Some(set) = self.resident.get_mut(&old.request) {
                    set.remove(&old.index);
                    if set.is_empty() {
                        self.resident.remove(&old.request);
                    }
                }
            }
        }
    }

    fn reset_schedule(&mut self) {
        self.t = 0;
        self.allocated.clear();
        self.current_schedule.clear();
        self.rebuild_touched();
    }

    /// The scheduler's current belief about the client's per-request resident
    /// block counts (empty unless cache tracking is enabled).
    pub fn simulated_cache(&self) -> HashMap<RequestId, u32> {
        self.resident
            .iter()
            .map(|(&r, set)| (r, set.len() as u32))
            .collect()
    }
}

impl GreedyScheduler {
    /// Expected utility (Eq. 2) of the blocks scheduled so far in the current
    /// schedule, starting from the cache allocation `initial`.
    pub fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        crate::scheduler::schedule_expected_utility(
            &self.current_schedule,
            &self.model,
            &self.utility,
            initial,
        )
    }
}

impl crate::scheduler::Scheduler for GreedyScheduler {
    fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize) {
        GreedyScheduler::update_prediction(self, summary, sender_position);
    }

    fn next_batch(&mut self, count: usize) -> Schedule {
        GreedyScheduler::next_batch(self, count)
    }

    fn set_slot_duration(&mut self, slot: Duration) {
        GreedyScheduler::set_slot_duration(self, slot);
    }

    fn simulated_cache(&self) -> HashMap<RequestId, u32> {
        GreedyScheduler::simulated_cache(self)
    }

    fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
        GreedyScheduler::expected_utility(self, initial)
    }

    fn horizon(&self) -> usize {
        self.cfg.cache_blocks
    }

    fn prediction_updates(&self) -> u64 {
        self.updates
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Length of the contiguous prefix (starting at block 0) in a resident set.
fn resident_prefix_len(set: &BTreeSet<u32>) -> u32 {
    let mut len = 0;
    for &idx in set {
        if idx == len {
            len += 1;
        } else {
            break;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Time;
    use crate::utility::{LinearUtility, PowerUtility};

    fn mk(n: usize, blocks: u32, cache_blocks: usize, meta: bool) -> GreedyScheduler {
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks,
            batch_size: 100,
            use_meta_request: meta,
            ..Default::default()
        };
        GreedyScheduler::new(
            cfg,
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog,
        )
    }

    #[test]
    fn fills_batches_and_respects_block_limits() {
        let mut s = mk(4, 2, 8, true);
        let batch = s.next_batch(8);
        assert_eq!(batch.len(), 8);
        // 4 requests × 2 blocks each = 8 blocks total; all must be distinct.
        let mut seen = HashSet::new();
        for b in &batch {
            assert!(seen.insert(*b), "block {b} scheduled twice");
            assert!(b.index < 2);
        }
        assert_eq!(s.scheduled_blocks(), 8);
    }

    #[test]
    fn concentrates_on_predicted_request() {
        let mut s = mk(100, 10, 50, true);
        let pred = PredictionSummary::point(100, RequestId(7), Time::ZERO);
        s.update_prediction(&pred, 0);
        let batch = s.next_batch(50);
        let for_7 = batch.iter().filter(|b| b.request == RequestId(7)).count();
        // With probability 1 on request 7, the vast majority of blocks go to
        // it (it only has 10 blocks, so exactly 10 here).
        assert_eq!(for_7, 10);
        // Block indices for request 7 are the full prefix 0..10.
        let mut idx: Vec<u32> = batch
            .iter()
            .filter(|b| b.request == RequestId(7))
            .map(|b| b.index)
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_prior_hedges_widely() {
        let mut s = mk(1000, 10, 200, true);
        let batch = s.next_batch(200);
        assert_eq!(batch.len(), 200);
        let distinct: HashSet<RequestId> = batch.iter().map(|b| b.request).collect();
        // With a uniform prior and linear utility, hedging should cover many
        // distinct requests (mostly first blocks).
        assert!(
            distinct.len() > 100,
            "only {} distinct requests",
            distinct.len()
        );
    }

    #[test]
    fn concave_utility_spreads_more_than_linear() {
        let n = 50;
        let blocks = 20;
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 100,
            ..Default::default()
        };
        let mut linear = GreedyScheduler::new(
            cfg.clone(),
            UtilityModel::homogeneous(&LinearUtility, blocks),
            catalog.clone(),
        );
        let mut concave = GreedyScheduler::new(
            cfg,
            UtilityModel::homogeneous(&PowerUtility::new(0.3), blocks),
            catalog,
        );
        let pred = PredictionSummary::point(n, RequestId(0), Time::ZERO);
        linear.update_prediction(&pred, 0);
        concave.update_prediction(&pred, 0);
        let lb = linear.next_batch(100);
        let cb = concave.next_batch(100);
        let l_distinct: HashSet<_> = lb.iter().map(|b| b.request).collect();
        let c_distinct: HashSet<_> = cb.iter().map(|b| b.request).collect();
        // Concave utility saturates the likely request's marginal gain faster,
        // so it hedges across at least as many other requests.
        assert!(c_distinct.len() >= l_distinct.len());
    }

    #[test]
    fn tracks_client_cache_across_schedules() {
        // Cache comfortably larger than one response: the prefix continues
        // across batches instead of restarting at block 0.
        let mut s = mk(2, 8, 16, true);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        // First batch: 4 blocks, all for request 1 (indices 0..4).
        let b1 = s.next_batch(4);
        assert!(b1.iter().all(|b| b.request == RequestId(1)));
        // The next batch continues the prefix instead of restarting at 0.
        let b2 = s.next_batch(4);
        let idx: Vec<u32> = b2
            .iter()
            .filter(|b| b.request == RequestId(1))
            .map(|b| b.index)
            .collect();
        assert!(idx.iter().all(|&i| i >= 4), "indices restarted: {idx:?}");
        assert!(s.simulated_cache().contains_key(&RequestId(1)));
    }

    #[test]
    fn repairs_evicted_prefix_blocks() {
        // Cache (4 blocks) smaller than one response (8 blocks): pushing the
        // tail evicts the head, so the scheduler must circle back and repair
        // the renderable prefix rather than pushing ever-higher indices.
        let mut s = mk(2, 8, 4, true);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        let _ = s.next_batch(4); // indices 0..4 pushed, ring full
        let b2 = s.next_batch(4);
        // The first block of the second batch (index 4) evicts block 0, so a
        // later slot must re-push block 0.
        assert!(
            b2.iter().any(|b| b.index == 0),
            "prefix never repaired: {b2:?}"
        );
    }

    #[test]
    fn without_cache_tracking_indices_restart() {
        // Disable tracking: pure Listing 1 semantics.
        let catalog = Arc::new(ResponseCatalog::uniform(2, 8, 1000));
        let cfg = GreedySchedulerConfig {
            cache_blocks: 4,
            track_client_cache: false,
            ..Default::default()
        };
        let mut s =
            GreedyScheduler::new(cfg, UtilityModel::homogeneous(&LinearUtility, 8), catalog);
        let pred = PredictionSummary::point(2, RequestId(1), Time::ZERO);
        s.update_prediction(&pred, 0);
        let _b1 = s.next_batch(4);
        let b2 = s.next_batch(4);
        assert!(
            b2.iter().any(|b| b.index == 0),
            "expected restart at block 0"
        );
    }

    #[test]
    fn sender_position_is_respected_on_update() {
        let mut s = mk(10, 4, 20, true);
        let _ = s.next_batch(10);
        assert_eq!(s.position(), 10);
        // New prediction arrives while the sender has already pushed 12 blocks
        // of this schedule: scheduling resumes at slot 12.
        let pred = PredictionSummary::point(10, RequestId(3), Time::ZERO);
        let resident_before = s.simulated_cache().get(&RequestId(3)).copied().unwrap_or(0);
        s.update_prediction(&pred, 12);
        assert_eq!(s.position(), 12);
        let batch = s.next_batch(100);
        // All probability mass sits on request 3, so the batch completes its
        // prefix (whatever the uniform warm-up batch already delivered) before
        // anything else — and nothing else has positive gain.
        let need = (4 - resident_before) as usize;
        assert!(batch.len() >= need, "batch too short: {batch:?}");
        assert!(
            batch.iter().take(need).all(|b| b.request == RequestId(3)),
            "request 3's prefix not completed first: {batch:?}"
        );
        assert_eq!(
            s.simulated_cache().get(&RequestId(3)).copied().unwrap_or(0),
            4,
            "request 3 should be fully resident after the update"
        );
    }

    #[test]
    fn exhausts_all_blocks_then_stops() {
        let mut s = mk(2, 2, 16, true);
        let batch = s.next_batch(16);
        // Only 4 distinct blocks exist; with cache tracking the scheduler
        // refuses to schedule duplicates within the ring's lifetime.
        assert_eq!(batch.len(), 4);
        assert!(s.next_batch(4).is_empty());
    }

    #[test]
    fn meta_and_materialized_paths_agree_statistically() {
        // With and without the meta-request optimization, the same prediction
        // should lead to a similar spread of scheduled requests.
        let mut with_meta = mk(200, 4, 100, true);
        let mut without_meta = mk(200, 4, 100, false);
        let pred = PredictionSummary::point(200, RequestId(5), Time::ZERO);
        with_meta.update_prediction(&pred, 0);
        without_meta.update_prediction(&pred, 0);
        let a = with_meta.next_batch(100);
        let b = without_meta.next_batch(100);
        let a5 = a.iter().filter(|x| x.request == RequestId(5)).count();
        let b5 = b.iter().filter(|x| x.request == RequestId(5)).count();
        assert_eq!(a5, 4);
        assert_eq!(b5, 4);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mk_seeded = || {
            let catalog = Arc::new(ResponseCatalog::uniform(50, 5, 100));
            GreedyScheduler::new(
                GreedySchedulerConfig {
                    cache_blocks: 60,
                    seed: 42,
                    ..Default::default()
                },
                UtilityModel::homogeneous(&LinearUtility, 5),
                catalog,
            )
        };
        let mut a = mk_seeded();
        let mut b = mk_seeded();
        assert_eq!(a.next_batch(60), b.next_batch(60));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The greedy scheduler never emits duplicate blocks while the ring
            /// still holds them, never exceeds per-request block counts, and
            /// always makes progress while capacity remains.
            #[test]
            fn schedule_is_well_formed(
                n in 1usize..40,
                blocks in 1u32..8,
                cache in 1usize..64,
                seed in 0u64..1000
            ) {
                let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
                let cfg = GreedySchedulerConfig {
                    cache_blocks: cache,
                    seed,
                    ..Default::default()
                };
                let mut s = GreedyScheduler::new(
                    cfg,
                    UtilityModel::homogeneous(&LinearUtility, blocks),
                    catalog,
                );
                let batch = s.next_batch(cache);
                let expected = cache.min(n * blocks as usize);
                prop_assert_eq!(batch.len(), expected);
                let mut seen = HashSet::new();
                for b in &batch {
                    prop_assert!(b.request.index() < n);
                    prop_assert!(b.index < blocks);
                    prop_assert!(seen.insert(*b), "duplicate block {}", b);
                }
            }
        }
    }
}
