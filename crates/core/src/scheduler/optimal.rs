//! Optimal finite-horizon scheduler (the paper's ILP, §5.2).
//!
//! The linearized objective of Eq. 3 assigns binary variables `f^k_{i,j}`
//! (block `j` of request `i` is sent during slot `k`) with coefficient
//! `U^k_{i,j} = g_i(j) · Σ_{t=k}^{C} γ^{t-1} P(q_i | t)`, subject to one block
//! per slot and each block sent at most once.  With unit per-slot bandwidth
//! this is exactly a **maximum-weight bipartite assignment** between blocks
//! and slots, which we solve optimally with the Jonker–Volgenant / Hungarian
//! algorithm instead of handing a 0.5-billion-variable program to Gurobi
//! (the paper's §A.1 micro-benchmarks use ≤ 15 requests, ≤ 30 cache slots,
//! ≤ 15 blocks, which this solver handles exactly).
//!
//! A [`BruteForceScheduler`] enumerates all schedules for tiny instances and
//! is used by the tests to certify the assignment solver's optimality.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use crate::block::ResponseCatalog;
use crate::distribution::PredictionSummary;
use crate::scheduler::{schedule_expected_utility, HorizonModel, Schedule, Scheduler};
use crate::types::{BlockRef, Duration, RequestId};
use crate::utility::UtilityModel;

/// Default horizon used when an exact scheduler is driven through the
/// [`Scheduler`] trait without an explicit [`with_horizon`] call.  Exact
/// solvers are only practical on small instances (§A.1 caps at 30 slots), so
/// the default is deliberately modest.
///
/// [`with_horizon`]: OptimalScheduler::with_horizon
const DEFAULT_EXACT_HORIZON: usize = 32;

/// Re-planning state shared by the exact schedulers when they are driven
/// incrementally through the [`Scheduler`] trait: the current probability
/// model, the planned-but-unconsumed tail of the schedule, and the blocks
/// already handed out (the simulated client cache).
struct ReplanState {
    horizon: usize,
    slot_duration: Duration,
    gamma: f64,
    model: HorizonModel,
    pending: VecDeque<BlockRef>,
    planned: bool,
    delivered: HashMap<RequestId, u32>,
    /// Blocks handed to the sender since the last prediction update, in pop
    /// order.  On the next update, the tail the sender did *not* actually
    /// send is rolled back out of `delivered` so it can be re-planned
    /// (§5.3.2 — the sender's queued-but-unsent blocks are discarded by the
    /// session when a prediction arrives).
    issued: Vec<BlockRef>,
    /// How many of `issued` the sender has confirmed via
    /// [`Scheduler::note_sent`].  Unlike the sender's schedule position
    /// (which wraps at the horizon and is therefore ambiguous after a full
    /// schedule drain), this count is exact.
    confirmed: usize,
    updates: u64,
    /// Updates absorbed as a model diff ([`HorizonModel::apply_update`])
    /// instead of a from-scratch rebuild.  The *plan* is still recomputed
    /// every update — exact solvers have no incremental plan — but the
    /// `O(m · horizon)` model materialization is skipped.
    diff_updates: u64,
}

impl ReplanState {
    fn new(n: usize, horizon: usize) -> Self {
        let slot_duration = Duration::from_millis(1);
        let gamma = 1.0;
        ReplanState {
            horizon,
            slot_duration,
            gamma,
            model: HorizonModel::uniform(n.max(1), horizon, slot_duration, gamma),
            pending: VecDeque::new(),
            planned: false,
            delivered: HashMap::new(),
            issued: Vec::new(),
            confirmed: 0,
            updates: 0,
            diff_updates: 0,
        }
    }

    /// Brings the model up to date with `summary`: a diff against the
    /// current model when the parameters still match (the common case — the
    /// horizon is fixed and the slot duration only changes with the
    /// bandwidth estimate), a full rebuild otherwise.
    fn refresh_model(&mut self, summary: &PredictionSummary) {
        let diffable = self.model.horizon() == self.horizon
            && self.model.slot_duration() == self.slot_duration
            && self.model.gamma().to_bits() == self.gamma.to_bits()
            && self.model.apply_update(summary).is_some();
        if diffable {
            self.diff_updates += 1;
        } else {
            self.model = HorizonModel::build(summary, self.horizon, self.slot_duration, self.gamma);
        }
        self.updates += 1;
    }

    /// Records a sender confirmation (see [`Scheduler::note_sent`]).
    fn note_sent(&mut self) {
        self.confirmed = (self.confirmed + 1).min(self.issued.len());
    }

    /// Rolls `delivered` back to what the sender actually placed on the
    /// wire: blocks issued since the last update but never confirmed were
    /// dropped by the session's queue and must become eligible for
    /// re-planning again.
    fn rollback_unsent(&mut self) {
        while self.issued.len() > self.confirmed {
            let Some(b) = self.issued.pop() else { break };
            if let Some(d) = self.delivered.get_mut(&b.request) {
                if *d == b.index + 1 {
                    *d = b.index;
                    if *d == 0 {
                        self.delivered.remove(&b.request);
                    }
                }
            }
        }
        // The confirmed prefix is committed for good; start a fresh window.
        self.issued.clear();
        self.confirmed = 0;
    }

    /// Replaces the pending tail with `plan`, dropping blocks the client
    /// already holds (their prefix continues where delivery stopped).
    fn adopt(&mut self, plan: Schedule) {
        self.pending = plan
            .into_iter()
            .filter(|b| b.index >= self.delivered.get(&b.request).copied().unwrap_or(0))
            .collect();
        self.planned = true;
    }

    fn pop_batch(&mut self, count: usize) -> Schedule {
        let mut out = Vec::with_capacity(count.min(self.pending.len()));
        while out.len() < count {
            let Some(b) = self.pending.pop_front() else {
                break;
            };
            let have = self.delivered.entry(b.request).or_insert(0);
            *have = (*have).max(b.index + 1);
            self.issued.push(b);
            out.push(b);
        }
        out
    }

    fn expected_utility(&self, utility: &UtilityModel, initial: &HashMap<RequestId, u32>) -> f64 {
        let pending: Vec<BlockRef> = self.pending.iter().copied().collect();
        schedule_expected_utility(&pending, &self.model, utility, initial)
    }
}

/// Exact solver for the linearized finite-horizon scheduling objective.
pub struct OptimalScheduler {
    utility: UtilityModel,
    catalog: Arc<ResponseCatalog>,
    state: ReplanState,
}

impl OptimalScheduler {
    /// Creates an optimal scheduler for the given utility model and catalog.
    pub fn new(utility: UtilityModel, catalog: Arc<ResponseCatalog>) -> Self {
        let state = ReplanState::new(catalog.num_requests(), DEFAULT_EXACT_HORIZON);
        OptimalScheduler {
            utility,
            catalog,
            state,
        }
    }

    /// Sets the horizon used when this scheduler is driven through the
    /// [`Scheduler`] trait (one-shot [`schedule`](Self::schedule) calls take
    /// the horizon from the model instead).
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        self.state = ReplanState::new(self.catalog.num_requests(), horizon);
        self
    }

    /// Computes the optimal schedule of exactly `min(C, total blocks)` blocks
    /// for the given horizon model, starting from an empty client cache.
    ///
    /// The returned schedule lists one block per slot in push order.
    pub fn schedule(&self, model: &HorizonModel) -> Schedule {
        let horizon = model.horizon();
        let n = self.catalog.num_requests().min(model.num_requests());

        // Enumerate candidate blocks.  The objective coefficient of block
        // (i, j) at slot k is g_i(j+1) * tail_i(k), and `tail` is
        // non-increasing in k, so blocks prefer early slots.
        let mut blocks: Vec<BlockRef> = Vec::new();
        for i in 0..n {
            let r = RequestId::from(i);
            for j in 0..self.catalog.num_blocks(r) {
                blocks.push(BlockRef::new(r, j));
            }
        }
        let slots = horizon.min(blocks.len());
        if slots == 0 {
            return Vec::new();
        }

        // Build the (slots × blocks) weight matrix.
        let mut weights = vec![vec![0.0f64; blocks.len()]; slots];
        for (k, row) in weights.iter_mut().enumerate() {
            for (bi, b) in blocks.iter().enumerate() {
                let gain = self.utility.table(b.request.index()).gain(b.index + 1);
                row[bi] = gain * model.tail(b.request, k);
            }
        }

        let assignment = max_weight_assignment(&weights);

        let mut schedule: Vec<BlockRef> = Vec::with_capacity(slots);
        for (k, &bi) in assignment.iter().enumerate() {
            match bi {
                Some(bi) => schedule.push(blocks[bi]),
                None => {
                    // Should not happen when blocks >= slots, but keep the
                    // schedule well-formed if it does.
                    debug_assert!(false, "slot {k} left unassigned");
                }
            }
        }

        // The assignment fixes *which* blocks go in *which* slots but, because
        // the objective ignores prefix ordering (exactly as the paper's ILP
        // does), the chosen blocks of one request may appear out of order.
        // Reordering blocks of the same request ascending by index within the
        // slots they occupy never decreases the objective (the earlier slot
        // has the larger tail and the lower index has the larger gain for
        // concave utilities) and makes the schedule renderable.
        reorder_prefixes(&mut schedule);
        schedule
    }

    /// Convenience: the expected utility (Eq. 2) of `schedule` under `model`,
    /// starting from an empty cache.
    pub fn evaluate(&self, schedule: &[BlockRef], model: &HorizonModel) -> f64 {
        schedule_expected_utility(schedule, model, &self.utility, &HashMap::new())
    }
}

/// Implements [`Scheduler`] for an exact planner carrying a `ReplanState` in
/// `self.state` and exposing `fn schedule(&self, &HorizonModel) -> Schedule`.
///
/// Exact solvers re-plan from scratch on every update: the sent prefix is
/// frozen (its blocks stay in `delivered` and never re-enter the plan),
/// while blocks that were queued but dropped by the session are rolled back
/// and become eligible again (§5.3.2).
macro_rules! impl_replan_scheduler {
    ($ty:ty, $name:literal) => {
        impl Scheduler for $ty {
            fn update_prediction(&mut self, summary: &PredictionSummary, _sender_position: usize) {
                // The wrapping sender position is ambiguous after a full
                // schedule drain; the exact schedulers rely on `note_sent`
                // confirmations instead.
                self.state.rollback_unsent();
                self.state.refresh_model(summary);
                let plan = self.schedule(&self.state.model);
                self.state.adopt(plan);
            }

            fn next_batch(&mut self, count: usize) -> Schedule {
                if !self.state.planned {
                    let plan = self.schedule(&self.state.model);
                    self.state.adopt(plan);
                }
                self.state.pop_batch(count)
            }

            fn note_sent(&mut self, _block: BlockRef) {
                self.state.note_sent();
            }

            fn set_slot_duration(&mut self, slot: Duration) {
                self.state.slot_duration = slot;
            }

            fn simulated_cache(&self) -> HashMap<RequestId, u32> {
                self.state.delivered.clone()
            }

            fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64 {
                self.state.expected_utility(&self.utility, initial)
            }

            fn horizon(&self) -> usize {
                self.state.horizon
            }

            fn prediction_updates(&self) -> u64 {
                self.state.updates
            }

            fn diff_applied_updates(&self) -> u64 {
                self.state.diff_updates
            }

            fn name(&self) -> &'static str {
                $name
            }
        }
    };
}

impl_replan_scheduler!(OptimalScheduler, "optimal");

/// Stable-reorders blocks so that, per request, block indices appear in
/// ascending order across the slots that request occupies.
fn reorder_prefixes(schedule: &mut [BlockRef]) {
    let mut by_request: BTreeMap<RequestId, Vec<usize>> = BTreeMap::new();
    for (pos, b) in schedule.iter().enumerate() {
        by_request.entry(b.request).or_default().push(pos);
    }
    for (req, positions) in by_request {
        let mut indices: Vec<u32> = positions.iter().map(|&p| schedule[p].index).collect();
        indices.sort_unstable();
        for (slot, idx) in positions.into_iter().zip(indices) {
            schedule[slot] = BlockRef::new(req, idx);
        }
    }
}

/// Maximum-weight assignment of `slots` rows to `blocks` columns.
///
/// Returns, for each row (slot), the chosen column (block) or `None`.
/// Implemented as the classic shortest-augmenting-path Hungarian algorithm on
/// the cost matrix `max_weight - w`, padded to allow unassigned columns when
/// there are more columns than rows.
pub fn max_weight_assignment(weights: &[Vec<f64>]) -> Vec<Option<usize>> {
    let rows = weights.len();
    if rows == 0 {
        return Vec::new();
    }
    let cols = weights[0].len();
    assert!(
        cols >= rows,
        "assignment requires at least as many blocks as slots ({cols} < {rows})"
    );

    // Convert to a minimization problem.
    let max_w = weights
        .iter()
        .flat_map(|r| r.iter().copied())
        .fold(0.0f64, f64::max);
    let cost = |r: usize, c: usize| max_w - weights[r][c];

    // Hungarian algorithm (Jonker-Volgenant style, 1-indexed internally).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; rows + 1];
    let mut v = vec![0.0; cols + 1];
    let mut p = vec![0usize; cols + 1]; // p[j] = row assigned to column j
    let mut way = vec![0usize; cols + 1];

    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![None; rows];
    for j in 1..=cols {
        if p[j] != 0 {
            result[p[j] - 1] = Some(j - 1);
        }
    }
    result
}

/// Exhaustive scheduler for tiny instances: enumerates every feasible
/// schedule (each slot gets a distinct block) and returns the one with the
/// highest expected utility.  Exponential; only usable for a handful of slots
/// and blocks, and only used to certify [`OptimalScheduler`] in tests.
pub struct BruteForceScheduler {
    utility: UtilityModel,
    catalog: Arc<ResponseCatalog>,
    state: ReplanState,
}

impl BruteForceScheduler {
    /// Creates a brute-force scheduler.
    pub fn new(utility: UtilityModel, catalog: Arc<ResponseCatalog>) -> Self {
        // Exhaustive search is exponential; keep the incremental-driving
        // horizon tiny (the one-shot `schedule` call takes the horizon from
        // the model it is given instead).
        let state = ReplanState::new(catalog.num_requests(), 4);
        BruteForceScheduler {
            utility,
            catalog,
            state,
        }
    }

    /// Sets the horizon used when driven through the [`Scheduler`] trait.
    /// Must stay tiny (≤ 6) or exhaustive search will not terminate in
    /// reasonable time.
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(
            (1..=6).contains(&horizon),
            "brute force horizon must be in 1..=6"
        );
        self.state = ReplanState::new(self.catalog.num_requests(), horizon);
        self
    }

    /// Finds the utility-maximizing schedule by exhaustive search.
    pub fn schedule(&self, model: &HorizonModel) -> Schedule {
        let mut blocks: Vec<BlockRef> = Vec::new();
        for i in 0..self.catalog.num_requests().min(model.num_requests()) {
            let r = RequestId::from(i);
            for j in 0..self.catalog.num_blocks(r) {
                blocks.push(BlockRef::new(r, j));
            }
        }
        let slots = model.horizon().min(blocks.len());
        assert!(
            blocks.len() <= 10 && slots <= 6,
            "brute force limited to tiny instances"
        );
        let mut best: (f64, Schedule) = (f64::NEG_INFINITY, Vec::new());
        let mut current = Vec::with_capacity(slots);
        let mut used = vec![false; blocks.len()];
        self.recurse(&blocks, slots, model, &mut current, &mut used, &mut best);
        best.1
    }

    fn recurse(
        &self,
        blocks: &[BlockRef],
        slots: usize,
        model: &HorizonModel,
        current: &mut Vec<BlockRef>,
        used: &mut Vec<bool>,
        best: &mut (f64, Schedule),
    ) {
        if current.len() == slots {
            let v = schedule_expected_utility(current, model, &self.utility, &HashMap::new());
            if v > best.0 {
                *best = (v, current.clone());
            }
            return;
        }
        for (i, b) in blocks.iter().enumerate() {
            if used[i] {
                continue;
            }
            used[i] = true;
            current.push(*b);
            self.recurse(blocks, slots, model, current, used, best);
            current.pop();
            used[i] = false;
        }
    }
}

impl_replan_scheduler!(BruteForceScheduler, "brute-force");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::PredictionSummary;
    use crate::types::{Duration, Time};
    use crate::utility::{LinearUtility, PowerUtility, UtilityModel};

    fn model_point(n: usize, r: u32, horizon: usize) -> HorizonModel {
        let s = PredictionSummary::point(n, RequestId(r), Time::ZERO);
        HorizonModel::build(&s, horizon, Duration::from_millis(10), 1.0)
    }

    #[test]
    fn assignment_simple_matrix() {
        // Two slots, three blocks; best total is 5 + 4 = 9 via (0->2, 1->0).
        let w = vec![vec![1.0, 2.0, 5.0], vec![4.0, 1.0, 5.0]];
        let a = max_weight_assignment(&w);
        let total: f64 = a.iter().enumerate().map(|(r, c)| w[r][c.unwrap()]).sum();
        assert!((total - 9.0).abs() < 1e-9);
        // Distinct columns.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn assignment_empty_and_square() {
        assert!(max_weight_assignment(&[]).is_empty());
        let w = vec![vec![3.0, 1.0], vec![1.0, 3.0]];
        let a = max_weight_assignment(&w);
        assert_eq!(a, vec![Some(0), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "at least as many blocks")]
    fn assignment_rejects_too_few_columns() {
        max_weight_assignment(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    fn optimal_prefers_probable_request() {
        let n = 4;
        let catalog = Arc::new(ResponseCatalog::uniform(n, 3, 100));
        let sched = OptimalScheduler::new(
            UtilityModel::homogeneous(&PowerUtility::new(0.5), 3),
            catalog,
        );
        let model = model_point(n, 2, 4);
        let s = sched.schedule(&model);
        assert_eq!(s.len(), 4);
        // All three blocks of the certain request must be scheduled, and its
        // first block must come first.
        let for2: Vec<_> = s.iter().filter(|b| b.request == RequestId(2)).collect();
        assert_eq!(for2.len(), 3);
        assert_eq!(s[0], BlockRef::new(RequestId(2), 0));
    }

    #[test]
    fn replans_absorb_same_structure_updates_as_diffs() {
        fn spread(n: usize, weights: &[(u32, f64)]) -> PredictionSummary {
            PredictionSummary::new(
                n,
                vec![crate::distribution::HorizonSlice {
                    delta: Duration::from_millis(50),
                    dist: crate::distribution::SparseDistribution::from_weights(
                        n,
                        weights
                            .iter()
                            .map(|&(r, w)| (RequestId(r), w))
                            .collect::<Vec<_>>(),
                    ),
                }],
                Time::ZERO,
            )
        }
        let n = 6;
        let catalog = Arc::new(ResponseCatalog::uniform(n, 3, 100));
        let utility = UtilityModel::homogeneous(&PowerUtility::new(0.5), 3);
        let mut incremental = OptimalScheduler::new(utility.clone(), catalog.clone());
        let mut fresh = OptimalScheduler::new(utility, catalog);

        let s1 = spread(n, &[(0, 0.55), (1, 0.3), (2, 0.15)]);
        let s2 = spread(n, &[(3, 0.55), (1, 0.3), (0, 0.15)]);
        Scheduler::update_prediction(&mut incremental, &s1, 0);
        Scheduler::update_prediction(&mut incremental, &s2, 0);
        Scheduler::update_prediction(&mut fresh, &s2, 0);
        assert!(
            incremental.diff_applied_updates() >= 1,
            "a same-structure re-prediction must be absorbed as a model diff"
        );
        // The diff-updated model must produce the same plan as a fresh
        // build from the final summary (no blocks issued in between, so
        // both plans start from an empty cache).
        assert_eq!(
            Scheduler::next_batch(&mut incremental, 2 * n),
            Scheduler::next_batch(&mut fresh, 2 * n),
            "diff-applied replan diverged from a from-scratch rebuild"
        );
    }

    #[test]
    fn optimal_matches_brute_force_on_tiny_instances() {
        for (n, blocks, horizon, target) in
            [(3usize, 2u32, 3usize, 0u32), (2, 3, 4, 1), (3, 3, 3, 2)]
        {
            let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
            let utility = UtilityModel::homogeneous(&PowerUtility::new(0.4), blocks);
            let opt = OptimalScheduler::new(utility.clone(), catalog.clone());
            let bf = BruteForceScheduler::new(utility, catalog);
            let model = model_point(n, target, horizon);
            let so = opt.schedule(&model);
            let sb = bf.schedule(&model);
            let vo = opt.evaluate(&so, &model);
            let vb = opt.evaluate(&sb, &model);
            assert!(
                vo >= vb - 1e-9,
                "assignment solver ({vo}) below brute force ({vb}) for n={n} blocks={blocks}"
            );
        }
    }

    #[test]
    fn optimal_beats_or_ties_greedy() {
        use crate::scheduler::greedy::{GreedyScheduler, GreedySchedulerConfig};
        let n = 6;
        let blocks = 4;
        let horizon = 8;
        let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
        let utility = UtilityModel::homogeneous(&PowerUtility::new(0.5), blocks);
        let model = {
            let s = PredictionSummary::new(
                n,
                vec![crate::distribution::HorizonSlice {
                    delta: Duration::from_millis(50),
                    dist: crate::distribution::SparseDistribution::from_weights(
                        n,
                        vec![
                            (RequestId(0), 0.6),
                            (RequestId(1), 0.3),
                            (RequestId(2), 0.1),
                        ],
                    ),
                }],
                Time::ZERO,
            );
            HorizonModel::build(&s, horizon, Duration::from_millis(10), 1.0)
        };
        let opt = OptimalScheduler::new(utility.clone(), catalog.clone());
        let so = opt.schedule(&model);
        let vo = opt.evaluate(&so, &model);

        let mut greedy = GreedyScheduler::new(
            GreedySchedulerConfig {
                cache_blocks: horizon,
                ..Default::default()
            },
            utility,
            catalog,
        );
        greedy.update_prediction(&PredictionSummary::uniform(n, Time::ZERO), 0);
        let sg = greedy.next_batch(horizon);
        let vg = opt.evaluate(&sg, &model);
        assert!(vo + 1e-9 >= vg, "optimal {vo} < greedy {vg}");
    }

    #[test]
    fn uniform_model_schedules_mostly_first_blocks() {
        let n = 10;
        let catalog = Arc::new(ResponseCatalog::uniform(n, 5, 100));
        let sched = OptimalScheduler::new(
            UtilityModel::homogeneous(&PowerUtility::new(0.3), 5),
            catalog,
        );
        let model = HorizonModel::uniform(n, 10, Duration::from_millis(10), 1.0);
        let s = sched.schedule(&model);
        assert_eq!(s.len(), 10);
        // Concave utility + uniform probability: the optimum is breadth-first,
        // i.e. every request's first block.
        let first_blocks = s.iter().filter(|b| b.index == 0).count();
        assert_eq!(first_blocks, 10);
    }

    #[test]
    fn evaluate_is_monotone_in_schedule_length() {
        let n = 4;
        let catalog = Arc::new(ResponseCatalog::uniform(n, 4, 100));
        let sched = OptimalScheduler::new(UtilityModel::homogeneous(&LinearUtility, 4), catalog);
        let model = model_point(n, 1, 8);
        let full = sched.schedule(&model);
        let prefix = full[..4.min(full.len())].to_vec();
        assert!(sched.evaluate(&full, &model) >= sched.evaluate(&prefix, &model));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The assignment-based schedule is always well-formed: one block per
            /// slot, no duplicates, and never worse than a trivial prefix
            /// schedule of the most likely request.
            #[test]
            fn optimal_schedule_well_formed(
                n in 1usize..6,
                blocks in 1u32..5,
                horizon in 1usize..8,
                target in 0u32..6
            ) {
                let target = target % n as u32;
                let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
                let utility = UtilityModel::homogeneous(&PowerUtility::new(0.5), blocks);
                let sched = OptimalScheduler::new(utility.clone(), catalog.clone());
                let model = model_point(n, target, horizon);
                let s = sched.schedule(&model);
                prop_assert_eq!(s.len(), horizon.min(n * blocks as usize));
                let mut seen = std::collections::HashSet::new();
                for b in &s {
                    prop_assert!(seen.insert(*b));
                }
                // Not worse than pushing the target's prefix.
                let trivial: Vec<BlockRef> = (0..blocks.min(horizon as u32))
                    .map(|j| BlockRef::new(RequestId(target), j))
                    .collect();
                prop_assert!(sched.evaluate(&s, &model) + 1e-9 >= sched.evaluate(&trivial, &model));
            }
        }
    }
}
