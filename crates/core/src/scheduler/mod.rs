//! Server-side scheduling: allocating network slots to response blocks.
//!
//! The scheduler takes a utility function and a probability distribution over
//! future requests and decides the sequence of blocks to push to the client so
//! that expected user-perceived utility is maximized over a finite horizon of
//! `C` blocks (the client cache size), per §5 of the paper.
//!
//! * [`HorizonModel`] materializes the probability terms the schedulers need:
//!   for each request, the (discounted) probability mass of it being requested
//!   during the *remainder* of the current schedule — the `P_{i,t}` matrix of
//!   Listing 1, stored sparsely so that a 10,000-request space only pays for
//!   the handful of requests with non-uniform probability.
//! * [`greedy::GreedyScheduler`] is the fast single-step sampler the paper
//!   deploys (§5.3).
//! * [`optimal::OptimalScheduler`] solves the linearized finite-horizon
//!   objective exactly (the role Gurobi plays in §5.2/§A.1) via a
//!   maximum-weight assignment.
//! * [`backend_limit`] post-processes schedules for backends with limited
//!   concurrency (§5.4).

pub mod backend_limit;
pub mod dedup;
pub mod greedy;
pub mod optimal;

use std::collections::HashMap;

use crate::distribution::PredictionSummary;
use crate::types::{BlockRef, Duration, RequestId};
use crate::utility::UtilityModel;

pub use crate::sampling::SamplerVariant;
pub use backend_limit::limit_distinct_requests;
pub use dedup::ModelCache;
pub use greedy::{GreedyContext, GreedyScheduler, GreedySchedulerConfig};
pub use optimal::{BruteForceScheduler, OptimalScheduler};

/// An ordered sequence of blocks for the sender to push, most urgent first.
pub type Schedule = Vec<BlockRef>;

/// The pluggable scheduling interface of the server (§5).
///
/// A scheduler turns a stream of prediction updates into an ordered stream of
/// blocks for the sender.  [`KhameleonServer`](crate::server::KhameleonServer)
/// and [`Session`](crate::session::Session) hold a `Box<dyn Scheduler>`, so
/// the greedy sampler of §5.3, the assignment-based optimal solver of §5.2,
/// the exhaustive [`BruteForceScheduler`], and user-supplied strategies are
/// interchangeable without touching the server plumbing.
///
/// The contract mirrors the sender-coordination protocol of §5.3.2:
///
/// * [`update_prediction`](Scheduler::update_prediction) receives the decoded
///   client prediction and the sender's position within the current schedule;
///   blocks before that position are immutable, the rest may be re-planned.
/// * [`next_batch`](Scheduler::next_batch) emits up to `count` more blocks of
///   the current schedule in push order, never repeating a block the
///   (simulated) client cache still holds.
/// * [`set_slot_duration`](Scheduler::set_slot_duration) re-calibrates the
///   slot length whenever the bandwidth estimate changes (§5.4).
pub trait Scheduler: Send {
    /// Applies a fresh decoded prediction.  `sender_position` is the number
    /// of blocks of the current schedule already placed on the network.
    fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize);

    /// Sparse variant of [`update_prediction`](Scheduler::update_prediction):
    /// the caller (the prediction-delta path, see [`crate::delta`]) already
    /// knows exactly which requests' per-slice probabilities changed and
    /// carries the summary scalars a slot plan needs, so a diff-capable
    /// scheduler can skip the `O(m · slices)` signature scan entirely.  The
    /// default ignores the hint and runs the full update; only schedulers
    /// with an incremental model ([`GreedyScheduler`]) override it.
    fn update_prediction_sparse(
        &mut self,
        summary: &PredictionSummary,
        changes: &crate::delta::PredictionChanges,
        sender_position: usize,
    ) {
        let _ = changes;
        self.update_prediction(summary, sender_position);
    }

    /// Emits up to `count` blocks in push order.  An empty result means no
    /// block currently has positive expected gain (everything useful is
    /// scheduled or resident).
    fn next_batch(&mut self, count: usize) -> Schedule;

    /// Confirms that `block` (previously emitted by
    /// [`next_batch`](Scheduler::next_batch)) was actually placed on the
    /// wire.  Blocks are confirmed in emission order; emitted blocks that
    /// are never confirmed were dropped by the sender and may be re-planned
    /// on the next prediction update.  Schedulers that only need the
    /// `sender_position` argument of
    /// [`update_prediction`](Scheduler::update_prediction) (like the greedy
    /// scheduler, whose sampling state is position-based) can ignore this.
    fn note_sent(&mut self, block: BlockRef) {
        let _ = block;
    }

    /// Updates the bandwidth-derived duration of one network slot.
    fn set_slot_duration(&mut self, slot: Duration);

    /// The scheduler's belief about the client's per-request resident block
    /// counts (empty when the scheduler does not track the client cache).
    fn simulated_cache(&self) -> HashMap<RequestId, u32>;

    /// Expected utility (Eq. 2) of the not-yet-consumed portion of the
    /// current schedule, starting from the cache allocation `initial`.
    fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64;

    /// The scheduling horizon `C` in blocks (the client cache size).
    fn horizon(&self) -> usize;

    /// Number of prediction updates applied so far.
    fn prediction_updates(&self) -> u64;

    /// Prediction updates applied through a model *diff*
    /// ([`HorizonModel::apply_update`]) rather than a full rebuild; the
    /// default covers schedulers with no diff path.  Aggregated across
    /// sessions by [`ShardStats`](crate::shard::ShardStats).
    fn diff_applied_updates(&self) -> u64 {
        0
    }

    /// Sender-ahead gap slots rejected by a per-update creation cap (zero
    /// for schedulers without the concept).  Aggregated across sessions by
    /// [`ShardStats`](crate::shard::ShardStats).
    fn rejected_gap_slots(&self) -> u64 {
        0
    }

    /// Live weight entries resident in the scheduler's sampler (zero for
    /// schedulers without an incremental sampler).  Aggregated across
    /// sessions by [`ShardStats`](crate::shard::ShardStats) as the
    /// session layer's per-session memory observable.
    fn sampler_entries(&self) -> usize {
        0
    }

    /// Short name used in logs and experiment reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }

    /// Attaches a runtime invariant auditor (see [`crate::audit`]).  The
    /// default is a no-op for schedulers without audit support;
    /// [`GreedyScheduler`] overrides it.
    #[cfg(feature = "audit")]
    fn audit_attach(&mut self, cfg: crate::audit::AuditConfig) {
        let _ = cfg;
    }

    /// The accumulated audit report, when an auditor is attached (`None`
    /// otherwise, and for schedulers without audit support).
    #[cfg(feature = "audit")]
    fn audit_report(&self) -> Option<crate::audit::AuditReport> {
        None
    }
}

/// Materialized probability model over a scheduling horizon of `horizon`
/// network slots, each lasting `slot_duration`.
///
/// `tail(i, t)` is the probability-mass term the schedulers multiply against
/// marginal utility gains: the (γ-discounted) probability that request `i`
/// is what the user wants during slots `t..horizon`.  Requests without an
/// explicit (materialized) entry all share the same tail, which is what makes
/// the greedy scheduler's meta-request optimization possible (§5.3.1).
///
/// Bucketed requests store only a scalar coefficient against their bucket's
/// shared shape vector (`tail_i(t) = coef_i · shape_b(t)`), so the model's
/// memory is `O(b · horizon + m)` instead of `O(m · horizon)` and a
/// magnitude-only prediction change is a single scalar update (see
/// [`HorizonModel::apply_update`]).  Only irregular requests keep a full
/// per-slot vector.
#[derive(Debug, Clone)]
pub struct HorizonModel {
    n: usize,
    horizon: usize,
    slot_duration: Duration,
    gamma: f64,
    /// Materialized per-request tails (scalar-vs-shape for bucket members,
    /// full vectors of length `horizon + 1` for irregular requests; index
    /// `horizon` is 0, simplifying loops).
    explicit: HashMap<RequestId, ExplicitTail>,
    /// Tail vector shared by every non-materialized request.
    residual: Vec<f64>,
    /// Materialized requests grouped by tail *shape* (see
    /// [`TailShapePartition`]), computed at build time and maintained under
    /// diff updates.
    partition: TailShapePartition,
    /// Materialized requests in ascending order (the diff walks old vs. new
    /// sorted sets in one merge pass).
    materialized_ids: Vec<RequestId>,
    /// Per-request prediction signature: equal signatures imply identical
    /// per-slot probabilities, hence identical tails.
    signatures: HashMap<RequestId, TailSignature>,
    /// The slice offsets of the summary this model was built from; a summary
    /// with different offsets cannot be diffed against this model.
    slice_deltas: Vec<Duration>,
}

/// Tail storage of one materialized request.
#[derive(Debug, Clone)]
enum ExplicitTail {
    /// Member of shape bucket `bucket`: `tail(t) = coef · shape[t]`.
    Scaled { bucket: u32, coef: f64 },
    /// Irregular request with an exact per-slot tail vector.
    Full(Vec<f64>),
}

/// A materialized request's identity under prediction diffing: its
/// probability at every slice of the summary (falling back to the slice's
/// residual-per-request, exactly like interpolation does) plus which slices
/// carry an explicit entry for it.  Two summaries assigning a request equal
/// signatures assign it identical per-slot probabilities (up to the global
/// renormalization noise of the interpolation, which is `O(ε)` for
/// normalized inputs).
#[derive(Debug, Clone, PartialEq)]
struct TailSignature {
    /// `prob(r)` at each slice, in slice order.
    probs: Vec<f64>,
    /// Bit `i` set when slice `i` has an explicit entry for the request.
    explicit_mask: u32,
}

/// Where a materialized request sits in the explicit layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplicitPlacement {
    /// Member of shape bucket `b`.
    Bucket(usize),
    /// Member of the irregular exact-refresh set.
    Irregular,
}

/// The result of one incremental prediction update
/// ([`HorizonModel::apply_update`]): exactly which requests entered, left,
/// moved within, or rescaled inside the explicit layout, so a sampler
/// mirroring the layout can apply point updates instead of rebuilding.
///
/// All request lists are ascending; `removed` covers every structural
/// removal (departures plus moves) and `placed` every structural insertion
/// (joins plus moves), in the order they were applied to the partition.
#[derive(Debug, Clone, Default)]
pub struct ModelDiff {
    /// Requests that left the materialized set entirely.
    pub departed: Vec<RequestId>,
    /// Requests that entered the materialized set.
    pub joined: Vec<RequestId>,
    /// Requests removed from their explicit spot (departures + moves).
    pub removed: Vec<RequestId>,
    /// Requests placed into an explicit spot (joins + moves).
    pub placed: Vec<(RequestId, ExplicitPlacement)>,
    /// Requests whose tail changed magnitude (or, for irregular members,
    /// values) without changing their spot in the layout.
    pub rescaled: Vec<RequestId>,
    /// Shape buckets appended to the partition by this update.
    pub buckets_added: usize,
}

impl ModelDiff {
    /// Number of structurally changed requests (everything except in-place
    /// rescales), each counted once: `departed` holds the removed-only
    /// requests and `placed` the joins plus moves.
    pub fn structural_changes(&self) -> usize {
        self.departed.len() + self.placed.len()
    }
}

/// Maximum number of distinct shape buckets materialized per model; requests
/// beyond this many distinct shapes fall back to the exact-refresh irregular
/// set.  Real predictors emit a handful of horizon slices, so distinct shapes
/// are rare; the cap only bounds adversarial inputs.
const MAX_SHAPE_BUCKETS: usize = 16;

/// Relative tolerance for declaring two normalized tails equal.  Genuinely
/// proportional tails agree to a few ulps; anything farther apart than this
/// is a real shape difference.
const SHAPE_EPS: f64 = 1e-9;

/// The materialized requests of a [`HorizonModel`], grouped by how their tail
/// `tail_i(t)` evolves as the slot index advances.
///
/// Requests in one [`ShapeBucket`] have elementwise-proportional tail
/// vectors: `tail_i(t) = tail_i(0) · s(t)` for a bucket-wide shape `s` with
/// `s(0) = 1`.  A sampler can therefore represent the whole bucket's
/// per-slot evolution with **one scalar factor** — advancing `t` multiplies
/// the bucket, it never rewrites members.  Requests whose tails are
/// proportional to no bucket shape (or that overflow the bucket cap) land in
/// `irregular` and must be refreshed exactly each slot.
///
/// At build time membership lists are ascending by request id (the
/// partition is built from the id-sorted materialized set); under diff
/// updates ([`HorizonModel::apply_update`]) joiners are appended, so lists
/// stay deterministic — a function of the update sequence — but not sorted.
/// Determinism of the layout, not sortedness, is what seed-reproducible
/// sampling requires.
#[derive(Debug, Clone, Default)]
pub struct TailShapePartition {
    /// Shape buckets, in order of first appearance.
    pub buckets: Vec<ShapeBucket>,
    /// Materialized requests needing exact per-slot refresh.
    pub irregular: Vec<RequestId>,
}

/// One group of materialized requests with elementwise-proportional tails.
#[derive(Debug, Clone)]
pub struct ShapeBucket {
    /// The bucket's representative: its first member at creation time.  The
    /// shape is *stored* (see [`ShapeBucket::shape`]), so the representative
    /// departing under a diff update does not invalidate the bucket.
    pub rep: RequestId,
    /// Members in insertion order (ascending at build time).
    pub members: Vec<RequestId>,
    /// The bucket's normalized tail shape `s(t) = tail(rep, t) /
    /// tail(rep, 0)` at creation (length `horizon + 1`, `s[0] = 1`; all
    /// zeros for the zero-tail bucket).
    pub shape: Vec<f64>,
}

impl TailShapePartition {
    /// Total number of bucketed members plus irregular requests.
    pub fn materialized_count(&self) -> usize {
        self.buckets.iter().map(|b| b.members.len()).sum::<usize>() + self.irregular.len()
    }

    fn build(ids: &[RequestId], tails: &HashMap<RequestId, Vec<f64>>, horizon: usize) -> Self {
        let mut buckets: Vec<ShapeBucket> = Vec::new();
        let mut irregular = Vec::new();
        'next: for &r in ids {
            let tail = &tails[&r];
            for b in &mut buckets {
                if tails_proportional(&tails[&b.rep], tail, horizon) {
                    b.members.push(r);
                    continue 'next;
                }
            }
            if buckets.len() < MAX_SHAPE_BUCKETS {
                buckets.push(ShapeBucket {
                    rep: r,
                    members: vec![r],
                    shape: normalized_shape(tail),
                });
            } else {
                irregular.push(r);
            }
        }
        TailShapePartition { buckets, irregular }
    }
}

/// Normalizes a tail vector into a shape (`shape[0] = 1`, or all zeros for a
/// zero tail).
fn normalized_shape(tail: &[f64]) -> Vec<f64> {
    let t0 = tail[0];
    if t0 <= 0.0 {
        vec![0.0; tail.len()]
    } else {
        tail.iter().map(|&v| v / t0).collect()
    }
}

/// Whether a tail vector matches a stored normalized bucket shape (same
/// tolerance as [`tails_proportional`]).
fn tail_matches_shape(tail: &[f64], shape: &[f64], horizon: usize) -> bool {
    let t0 = tail[0];
    if t0 <= 0.0 || shape[0] <= 0.0 {
        return t0 <= 0.0 && shape[0] <= 0.0;
    }
    (1..horizon).all(|t| (tail[t] / t0 - shape[t]).abs() <= SHAPE_EPS)
}

/// Whether two tail vectors are elementwise proportional (share a shape).
///
/// Tails are non-increasing and non-negative, so `tail[0]` is the maximum;
/// comparing the `tail[t] / tail[0]` ratios (both in `[0, 1]`) against an
/// absolute epsilon is a relative comparison in disguise.  All-zero tails
/// are proportional to everything (their weight is identically zero).
fn tails_proportional(a: &[f64], b: &[f64], horizon: usize) -> bool {
    let (a0, b0) = (a[0], b[0]);
    if a0 <= 0.0 || b0 <= 0.0 {
        return a0 <= 0.0 && b0 <= 0.0;
    }
    for t in 1..horizon {
        if (a[t] / a0 - b[t] / b0).abs() > SHAPE_EPS {
            return false;
        }
    }
    true
}

impl HorizonModel {
    /// Builds the model from a prediction summary.
    ///
    /// `horizon` is the number of slots in a full schedule (the client cache
    /// size in blocks), `slot_duration` the time to place one block on the
    /// network at the current bandwidth estimate, and `gamma` the future
    /// discount from Eq. 1 (`1.0` = all timesteps matter equally).
    pub fn build(
        summary: &PredictionSummary,
        horizon: usize,
        slot_duration: Duration,
        gamma: f64,
    ) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        let n = summary.num_requests();
        let materialized = summary.materialized_requests(); // sorted ascending

        // Per-slot probabilities for each materialized request and for the
        // residual tail, evaluated at the midpoint of each slot.
        let mut per_slot: Vec<Vec<f64>> = vec![Vec::with_capacity(horizon); materialized.len()];
        let mut residual_slot: Vec<f64> = Vec::with_capacity(horizon);
        for k in 0..horizon {
            let delta = Duration::from_micros(
                slot_duration.as_micros() * (k as u64) + slot_duration.as_micros() / 2,
            );
            let dist = summary.at(delta);
            for (mi, &r) in materialized.iter().enumerate() {
                per_slot[mi].push(dist.prob(r));
            }
            residual_slot.push(dist.residual_per_request());
        }

        // Suffix sums with discounting: tail[t] = sum_{k=t}^{horizon-1} gamma^k p[k].
        let suffix = |p: &[f64]| -> Vec<f64> {
            let mut tail = vec![0.0; horizon + 1];
            for t in (0..horizon).rev() {
                tail[t] = tail[t + 1] + gamma.powi(t as i32) * p[t];
            }
            tail
        };

        let mut tails = HashMap::with_capacity(materialized.len());
        for (mi, &r) in materialized.iter().enumerate() {
            tails.insert(r, suffix(&per_slot[mi]));
        }
        let residual = suffix(&residual_slot);
        let partition = TailShapePartition::build(&materialized, &tails, horizon);

        // Compress bucketed tails to scalar coefficients against the shared
        // shape; only irregular requests keep their full vector.
        let mut explicit = HashMap::with_capacity(materialized.len());
        for (bi, b) in partition.buckets.iter().enumerate() {
            for &r in &b.members {
                let coef = tails[&r][0];
                explicit.insert(
                    r,
                    ExplicitTail::Scaled {
                        bucket: bi as u32,
                        coef,
                    },
                );
            }
        }
        for &r in &partition.irregular {
            // lint:allow(unwrap) -- build invariant: the partition only lists requests whose tails were just computed
            let full = tails.remove(&r).expect("irregular request has a tail");
            explicit.insert(r, ExplicitTail::Full(full));
        }

        let slices = summary.slices();
        let signatures = materialized
            .iter()
            .map(|&r| (r, signature_of(slices, r)))
            .collect();
        let slice_deltas = slices.iter().map(|s| s.delta).collect();

        HorizonModel {
            n,
            horizon,
            slot_duration,
            gamma,
            explicit,
            residual,
            partition,
            materialized_ids: materialized,
            signatures,
            slice_deltas,
        }
    }

    /// A model where every request is uniformly likely at every slot.
    pub fn uniform(n: usize, horizon: usize, slot_duration: Duration, gamma: f64) -> Self {
        let summary = PredictionSummary::uniform(n, crate::types::Time::ZERO);
        Self::build(&summary, horizon, slot_duration, gamma)
    }

    /// Number of requests in the space.
    pub fn num_requests(&self) -> usize {
        self.n
    }

    /// Number of slots in the horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Duration of one slot.
    pub fn slot_duration(&self) -> Duration {
        self.slot_duration
    }

    /// The discount factor.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The requests with materialized (non-residual) tails, in unspecified
    /// order — callers that feed parity-sensitive state must sort.
    pub fn materialized(&self) -> impl Iterator<Item = RequestId> + '_ {
        // lint:allow(hash-iter) -- documented unordered; the one hot-path caller sorts (rebuild_touched)
        self.explicit.keys().copied()
    }

    /// Number of materialized requests.
    pub fn materialized_count(&self) -> usize {
        self.explicit.len()
    }

    /// Whether `request` has a materialized tail.
    pub fn is_materialized(&self, request: RequestId) -> bool {
        self.explicit.contains_key(&request)
    }

    /// The materialized requests grouped by tail shape (see
    /// [`TailShapePartition`]).
    pub fn shape_partition(&self) -> &TailShapePartition {
        &self.partition
    }

    /// The shape factor `s(t)` of shape bucket `b` at slot `t` (`0` for
    /// all-zero buckets).
    pub fn shape_factor(&self, b: usize, t: usize) -> f64 {
        self.partition.buckets[b].shape[t.min(self.horizon)]
    }

    /// Tail mass of `request` from slot `t` (clamped to the horizon) onward.
    pub fn tail(&self, request: RequestId, t: usize) -> f64 {
        let t = t.min(self.horizon);
        match self.explicit.get(&request) {
            Some(&ExplicitTail::Scaled { bucket, coef }) => {
                coef * self.partition.buckets[bucket as usize].shape[t]
            }
            Some(ExplicitTail::Full(v)) => v[t],
            None => self.residual[t],
        }
    }

    /// Where `request` sits in the explicit layout, if materialized.
    pub fn placement(&self, request: RequestId) -> Option<ExplicitPlacement> {
        self.explicit.get(&request).map(|e| match e {
            ExplicitTail::Scaled { bucket, .. } => ExplicitPlacement::Bucket(*bucket as usize),
            ExplicitTail::Full(_) => ExplicitPlacement::Irregular,
        })
    }

    /// Tail mass of a single non-materialized (residual) request.
    pub fn residual_tail(&self, t: usize) -> f64 {
        self.residual[t.min(self.horizon)]
    }

    /// Per-slot probability of `request` at slot `k` (recovered from the
    /// discounted suffix sums).
    pub fn slot_prob(&self, request: RequestId, k: usize) -> f64 {
        if k >= self.horizon {
            return 0.0;
        }
        let d = self.gamma.powi(k as i32);
        if d <= 0.0 {
            return 0.0;
        }
        (self.tail(request, k) - self.tail(request, k + 1)) / d
    }

    /// Applies a fresh prediction *incrementally*: diffs `summary` against
    /// the summary this model was built from, keeps tails and bucket
    /// membership for requests whose signature is unchanged, rescales
    /// shape-preserving changes in `O(1)`, and recomputes + reclassifies only
    /// the structurally changed set.  Returns the [`ModelDiff`] a sampler
    /// mirroring the layout needs to apply matching point updates.
    ///
    /// Returns `None` — leaving the model untouched — when the update cannot
    /// be applied as a small diff and the caller must fall back to
    /// [`HorizonModel::build`]: a changed horizon / slot duration / γ /
    /// slice-offset set, a structurally changed set larger than
    /// `max(64, m/4)`, or a new tail shape arriving while the bucket cap is
    /// reached with stale (empty) buckets worth reclaiming.
    pub fn apply_update(&mut self, summary: &PredictionSummary) -> Option<ModelDiff> {
        let slices = summary.slices();
        if self.n != summary.num_requests()
            || slices.len() > 32
            || slices.len() != self.slice_deltas.len()
            || slices
                .iter()
                .zip(&self.slice_deltas)
                .any(|(s, &d)| s.delta != d)
        {
            return None;
        }
        let horizon = self.horizon;
        let new_ids = summary.materialized_requests();

        // --- phase 1: plan (read-only; any bail-out leaves `self` intact) ---
        let new_sigs: HashMap<RequestId, TailSignature> = new_ids
            .iter()
            .map(|&r| (r, signature_of(slices, r)))
            .collect();
        let mut departed = Vec::new();
        let mut joined = Vec::new();
        let mut pending = Vec::new(); // joins + non-trivial changes, ascending
        let mut fast_rescale: Vec<(RequestId, f64)> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.materialized_ids.len() || j < new_ids.len() {
            let old = self.materialized_ids.get(i).copied();
            let new = new_ids.get(j).copied();
            match (old, new) {
                (Some(o), Some(nw)) if o == nw => {
                    let old_sig = &self.signatures[&o];
                    let new_sig = &new_sigs[&o];
                    if old_sig != new_sig {
                        match sig_scale(old_sig, new_sig) {
                            Some(c) => fast_rescale.push((o, c)),
                            None => pending.push(o),
                        }
                    }
                    i += 1;
                    j += 1;
                }
                (Some(o), Some(nw)) if o < nw => {
                    departed.push(o);
                    i += 1;
                }
                (Some(_), None) => {
                    departed.push(self.materialized_ids[i]);
                    i += 1;
                }
                (_, Some(nw)) => {
                    joined.push(nw);
                    pending.push(nw);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        let max_changed = (new_ids.len() / 4).max(64);
        if departed.len() + joined.len() + pending.len() > max_changed {
            return None;
        }

        let plan = SlotPlan::new(summary, horizon, self.slot_duration);
        self.apply_planned(
            &plan,
            departed,
            joined,
            pending,
            fast_rescale,
            &new_sigs,
            new_ids,
        )
    }

    /// Sparse variant of [`apply_update`](HorizonModel::apply_update), fed by
    /// the prediction-delta path: `changes.changed` lists (a provably
    /// complete superset of) the requests whose per-slice probabilities
    /// differ from the summary this model was built from, and
    /// `changes.scalars` carries the per-slice masses and adjacent-union
    /// counts the slot plan needs — both produced by the per-session
    /// [`ShadowSummary`](crate::delta::ShadowSummary) while patching the
    /// client's delta in.  Diff planning is `O(Δ · slices)` instead of the
    /// full path's `O(m · slices)` signature scan; classification, the
    /// residual-tail recompute, the returned [`ModelDiff`], and every
    /// bail-out rule match [`apply_update`](HorizonModel::apply_update)
    /// exactly (the scalars are computed in the same summation order, so the
    /// two paths build bit-identical plans).
    pub fn apply_update_sparse(
        &mut self,
        summary: &PredictionSummary,
        changes: &crate::delta::PredictionChanges,
    ) -> Option<ModelDiff> {
        let slices = summary.slices();
        if self.n != summary.num_requests()
            || slices.len() > 32
            || slices.len() != self.slice_deltas.len()
            || slices
                .iter()
                .zip(&self.slice_deltas)
                .any(|(s, &d)| s.delta != d)
        {
            return None;
        }
        let scalars = &changes.scalars;
        if scalars.masses.len() != slices.len()
            || scalars.pair_unions.len() != slices.len().saturating_sub(1)
        {
            return None;
        }
        let horizon = self.horizon;

        // --- phase 1: plan, visiting only the changed requests ---
        let mut new_sigs: HashMap<RequestId, TailSignature> =
            HashMap::with_capacity(changes.changed.len());
        let mut departed = Vec::new();
        let mut joined = Vec::new();
        let mut pending = Vec::new();
        let mut fast_rescale: Vec<(RequestId, f64)> = Vec::new();
        let mut prev: Option<RequestId> = None;
        for &r in &changes.changed {
            if prev.is_some_and(|p| p >= r) {
                // Malformed changed-set (unsorted/duplicated): refuse the
                // sparse path rather than risk a corrupt merge below.
                return None;
            }
            prev = Some(r);
            let sig = signature_of(slices, r);
            let now_materialized = sig.explicit_mask != 0;
            match (self.signatures.get(&r), now_materialized) {
                (Some(old_sig), true) => {
                    if *old_sig != sig {
                        match sig_scale(old_sig, &sig) {
                            Some(c) => fast_rescale.push((r, c)),
                            None => pending.push(r),
                        }
                    }
                    new_sigs.insert(r, sig);
                }
                (Some(_), false) => departed.push(r),
                (None, true) => {
                    joined.push(r);
                    pending.push(r);
                    new_sigs.insert(r, sig);
                }
                (None, false) => {}
            }
        }
        let new_len = self.materialized_ids.len() - departed.len() + joined.len();
        let max_changed = (new_len / 4).max(64);
        if departed.len() + joined.len() + pending.len() > max_changed {
            return None;
        }
        // Splice departures/joins into the sorted id list: a flat merge with
        // no per-id signature work (the one remaining O(m) term, and it is a
        // straight memcpy).
        let new_ids = splice_sorted(&self.materialized_ids, &departed, &joined);

        let plan = SlotPlan::from_scalars(summary, horizon, self.slot_duration, scalars);
        self.apply_planned(
            &plan,
            departed,
            joined,
            pending,
            fast_rescale,
            &new_sigs,
            new_ids,
        )
    }

    /// Shared back half of [`apply_update`](HorizonModel::apply_update) and
    /// [`apply_update_sparse`](HorizonModel::apply_update_sparse): classifies
    /// the pending tails against bucket shapes (read-only; may still bail to
    /// a full rebuild) and then applies removals, placements, and rescales.
    /// `new_sigs` must cover `pending` and `fast_rescale`.
    #[allow(clippy::too_many_arguments)]
    fn apply_planned(
        &mut self,
        plan: &SlotPlan,
        departed: Vec<RequestId>,
        joined: Vec<RequestId>,
        pending: Vec<RequestId>,
        fast_rescale: Vec<(RequestId, f64)>,
        new_sigs: &HashMap<RequestId, TailSignature>,
        new_ids: Vec<RequestId>,
    ) -> Option<ModelDiff> {
        let horizon = self.horizon;
        // Classify the recomputed tails against existing bucket shapes (and
        // shapes created earlier in this same update).
        let mut new_buckets: Vec<(RequestId, Vec<f64>)> = Vec::new(); // (rep, shape)
        let mut placed: Vec<(RequestId, ExplicitPlacement)> = Vec::new();
        let mut removed_moves: Vec<RequestId> = Vec::new();
        let mut rescaled: Vec<RequestId> = Vec::new();
        let mut pending_tails: Vec<(RequestId, Vec<f64>)> = Vec::with_capacity(pending.len());
        for &r in &pending {
            pending_tails.push((r, plan.tail_for(&new_sigs[&r], self.gamma)));
        }
        let any_empty_bucket = self.partition.buckets.iter().any(|b| b.members.is_empty());
        for (r, tail) in &pending_tails {
            let old = self.placement(*r);
            let target = self
                .partition
                .buckets
                .iter()
                .map(|b| b.shape.as_slice())
                .chain(new_buckets.iter().map(|(_, s)| s.as_slice()))
                .position(|shape| tail_matches_shape(tail, shape, horizon));
            match (old, target) {
                (Some(ExplicitPlacement::Bucket(b)), Some(tb)) if tb == b => rescaled.push(*r),
                (old, Some(tb)) => {
                    if old.is_some() {
                        removed_moves.push(*r);
                    }
                    placed.push((*r, ExplicitPlacement::Bucket(tb)));
                }
                (old, None) => {
                    if self.partition.buckets.len() + new_buckets.len() < MAX_SHAPE_BUCKETS {
                        let tb = self.partition.buckets.len() + new_buckets.len();
                        new_buckets.push((*r, normalized_shape(tail)));
                        if old.is_some() {
                            removed_moves.push(*r);
                        }
                        placed.push((*r, ExplicitPlacement::Bucket(tb)));
                    } else if any_empty_bucket {
                        // The cap is hit but stale shapes are hogging it: a
                        // full rebuild reclaims them.
                        return None;
                    } else {
                        match old {
                            Some(ExplicitPlacement::Irregular) => rescaled.push(*r),
                            Some(ExplicitPlacement::Bucket(_)) => {
                                removed_moves.push(*r);
                                placed.push((*r, ExplicitPlacement::Irregular));
                            }
                            None => placed.push((*r, ExplicitPlacement::Irregular)),
                        }
                    }
                }
            }
        }

        // --- phase 2: apply ---
        // Structural removals (departures + moves), grouped by spot.
        let mut removed: Vec<RequestId> = Vec::with_capacity(departed.len() + removed_moves.len());
        removed.extend(departed.iter().copied());
        removed.extend(removed_moves.iter().copied());
        if !removed.is_empty() {
            let mut from_bucket: Vec<Vec<RequestId>> =
                vec![Vec::new(); self.partition.buckets.len()];
            let mut from_irregular: Vec<RequestId> = Vec::new();
            for &r in &removed {
                // lint:allow(unwrap) -- diff-plan invariant: departures are drawn from the materialized set
                match self.placement(r).expect("removed request is materialized") {
                    ExplicitPlacement::Bucket(b) => from_bucket[b].push(r),
                    ExplicitPlacement::Irregular => from_irregular.push(r),
                }
            }
            for (b, dead) in from_bucket.into_iter().enumerate() {
                if !dead.is_empty() {
                    self.partition.buckets[b]
                        .members
                        .retain(|r| !dead.contains(r));
                }
            }
            if !from_irregular.is_empty() {
                self.partition
                    .irregular
                    .retain(|r| !from_irregular.contains(r));
            }
        }
        for &r in &departed {
            self.explicit.remove(&r);
            self.signatures.remove(&r);
        }
        for (rep, shape) in new_buckets.iter().cloned() {
            self.partition.buckets.push(ShapeBucket {
                rep,
                members: Vec::new(),
                shape,
            });
        }
        // Placements (joins + moves): append membership, install tails.
        // (Renamed from the pending_tails Vec: keyed lookup only, never
        // iterated, so hash ordering cannot leak into the model.)
        let mut remaining_tails: HashMap<RequestId, Vec<f64>> = pending_tails.into_iter().collect();
        for &(r, p) in &placed {
            let tail = remaining_tails
                .remove(&r)
                .expect("placed request has a tail"); // lint:allow(unwrap) -- diff-plan invariant: every placed request was given a tail in the plan phase; silent skip would corrupt the model
            match p {
                ExplicitPlacement::Bucket(b) => {
                    self.partition.buckets[b].members.push(r);
                    self.explicit.insert(
                        r,
                        ExplicitTail::Scaled {
                            bucket: b as u32,
                            coef: tail[0],
                        },
                    );
                }
                ExplicitPlacement::Irregular => {
                    self.partition.irregular.push(r);
                    self.explicit.insert(r, ExplicitTail::Full(tail));
                }
            }
            self.signatures.insert(r, new_sigs[&r].clone());
        }
        // In-place recomputed rescales (same spot, new exact tail).
        for &r in &rescaled {
            if let Some(tail) = remaining_tails.remove(&r) {
                match self
                    .explicit
                    .get_mut(&r)
                    // lint:allow(unwrap) -- diff-plan invariant: rescaled requests stay materialized; loud failure beats silent model corruption
                    .expect("rescaled request is materialized")
                {
                    ExplicitTail::Scaled { coef, .. } => *coef = tail[0],
                    ExplicitTail::Full(v) => *v = tail,
                }
                self.signatures.insert(r, new_sigs[&r].clone());
            }
        }
        // O(1) shape-preserving rescales.
        for &(r, c) in &fast_rescale {
            match self
                .explicit
                .get_mut(&r)
                // lint:allow(unwrap) -- diff-plan invariant: rescaled requests stay materialized; loud failure beats silent model corruption
                .expect("rescaled request is materialized")
            {
                ExplicitTail::Scaled { coef, .. } => *coef *= c,
                ExplicitTail::Full(v) => v.iter_mut().for_each(|x| *x *= c),
            }
            self.signatures.insert(r, new_sigs[&r].clone());
            rescaled.push(r);
        }
        rescaled.sort_unstable();
        self.residual = plan.residual_tail(self.gamma);
        self.materialized_ids = new_ids;

        Some(ModelDiff {
            departed,
            joined,
            removed,
            placed,
            rescaled,
            buckets_added: new_buckets.len(),
        })
    }
}

/// `(base \ departed) ∪ joined`, all three inputs sorted ascending;
/// `departed ⊆ base` and `joined ∩ base = ∅`.
fn splice_sorted(
    base: &[RequestId],
    departed: &[RequestId],
    joined: &[RequestId],
) -> Vec<RequestId> {
    let mut out = Vec::with_capacity(base.len() + joined.len() - departed.len());
    let (mut d, mut j) = (0usize, 0usize);
    for &r in base {
        while j < joined.len() && joined[j] < r {
            out.push(joined[j]);
            j += 1;
        }
        if d < departed.len() && departed[d] == r {
            d += 1;
            continue;
        }
        out.push(r);
    }
    out.extend_from_slice(&joined[j..]);
    out
}

/// Builds the per-slice signature of `r` under `slices`.
fn signature_of(slices: &[crate::distribution::HorizonSlice], r: RequestId) -> TailSignature {
    let mut probs = Vec::with_capacity(slices.len());
    let mut explicit_mask = 0u32;
    for (i, s) in slices.iter().enumerate() {
        if s.dist
            .explicit_entries()
            .binary_search_by_key(&r, |&(x, _)| x)
            .is_ok()
        {
            // Summaries with more than 32 slices are refused by
            // `apply_update`, so the saturating mask is never consulted.
            explicit_mask |= 1u32.checked_shl(i as u32).unwrap_or(0);
        }
        probs.push(s.dist.prob(r));
    }
    TailSignature {
        probs,
        explicit_mask,
    }
}

/// Detects a shape-preserving signature change: `new ≈ c · old` elementwise
/// for a single scalar `c > 0`, within a tight tolerance (so repeated `O(1)`
/// coefficient rescales cannot drift).  Returns the scale on success.
fn sig_scale(old: &TailSignature, new: &TailSignature) -> Option<f64> {
    if old.explicit_mask != new.explicit_mask {
        return None;
    }
    let (anchor, &p_anchor) = old
        .probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    if p_anchor <= 0.0 {
        // All-zero old signature: proportional only to an all-zero new one.
        // lint:allow(float-eq) -- exact all-zero signature detection; zeros are stored, not computed
        return new.probs.iter().all(|&q| q == 0.0).then_some(1.0);
    }
    let c = new.probs[anchor] / p_anchor;
    if !(c.is_finite() && c > 0.0) {
        return None;
    }
    let tol = 1e-12 * c * p_anchor;
    old.probs
        .iter()
        .zip(&new.probs)
        .all(|(&p, &q)| (q - c * p).abs() <= tol)
        .then_some(c)
}

/// Scalar per-slot interpolation plan over a prediction summary: recovers
/// per-slot probabilities, renormalization totals, and residuals without
/// materializing an interpolated distribution per slot — the diff path's
/// `O(m · slices + horizon)` replacement for calling
/// [`PredictionSummary::at`] on every slot.
struct SlotPlan {
    n: usize,
    /// `(a, b, frac)` per slot: bracketing slice indices and blend fraction;
    /// `a == b` means the slot clamps to slice `a` (no renormalization).
    slots: Vec<(u32, u32, f64)>,
    /// Per-slot renormalization total (what `from_entries` divides by).
    totals: Vec<f64>,
    /// Per-slot residual-per-request after renormalization.
    resid_pp: Vec<f64>,
    /// Slots whose interpolated mass degenerated to zero (uniform fallback).
    uniform: Vec<bool>,
}

/// Adjacent-pair scalars: |A ∪ B| and each side's probability mass over the
/// union (explicit mass plus residual coverage of the other side's extra
/// entries).
struct Pair {
    union: usize,
    sum_a: f64,
    sum_b: f64,
}

impl SlotPlan {
    fn new(summary: &PredictionSummary, horizon: usize, slot_duration: Duration) -> Self {
        let slices = summary.slices();
        let mass: Vec<f64> = slices
            .iter()
            .map(|s| s.dist.explicit_entries().iter().map(|&(_, p)| p).sum())
            .collect();
        let unions: Vec<usize> = slices
            .windows(2)
            .map(|w| {
                crate::distribution::union_count(
                    w[0].dist.explicit_entries(),
                    w[1].dist.explicit_entries(),
                )
            })
            .collect();
        Self::from_parts(summary, horizon, slot_duration, mass, unions)
    }

    /// Builds the plan from precomputed per-slice masses and adjacent-union
    /// counts (see [`crate::delta::SummaryScalars`]), skipping the
    /// `O(m · slices)` entry scans of [`SlotPlan::new`].  The shadow computes
    /// the scalars in the same summation/merge order, so the resulting plan
    /// is bit-identical.
    fn from_scalars(
        summary: &PredictionSummary,
        horizon: usize,
        slot_duration: Duration,
        scalars: &crate::delta::SummaryScalars,
    ) -> Self {
        Self::from_parts(
            summary,
            horizon,
            slot_duration,
            scalars.masses.clone(),
            scalars.pair_unions.clone(),
        )
    }

    fn from_parts(
        summary: &PredictionSummary,
        horizon: usize,
        slot_duration: Duration,
        mass: Vec<f64>,
        unions: Vec<usize>,
    ) -> Self {
        let slices = summary.slices();
        let n = summary.num_requests();
        let count: Vec<usize> = slices
            .iter()
            .map(|s| s.dist.explicit_entries().len())
            .collect();
        let rpp: Vec<f64> = slices
            .iter()
            .map(|s| s.dist.residual_per_request())
            .collect();
        let pairs: Vec<Pair> = unions
            .iter()
            .enumerate()
            .map(|(i, &union)| Pair {
                union,
                sum_a: mass[i] + (union - count[i]) as f64 * rpp[i],
                sum_b: mass[i + 1] + (union - count[i + 1]) as f64 * rpp[i + 1],
            })
            .collect();

        let mut slots = Vec::with_capacity(horizon);
        let mut totals = Vec::with_capacity(horizon);
        let mut resid_pp = Vec::with_capacity(horizon);
        let mut uniform = vec![false; horizon];
        for (k, uniform_k) in uniform.iter_mut().enumerate() {
            let delta = Duration::from_micros(
                slot_duration.as_micros() * (k as u64) + slot_duration.as_micros() / 2,
            );
            let mut clamped = None;
            if delta <= slices[0].delta {
                clamped = Some(0usize);
            }
            let mut resolved = false;
            if clamped.is_none() {
                for (pi, w) in slices.windows(2).enumerate() {
                    if delta <= w[1].delta {
                        let span = (w[1].delta.as_micros() - w[0].delta.as_micros()) as f64;
                        let frac = if span <= 0.0 {
                            1.0
                        } else {
                            (delta.as_micros() - w[0].delta.as_micros()) as f64 / span
                        };
                        let p = &pairs[pi];
                        let e = (1.0 - frac) * p.sum_a + frac * p.sum_b;
                        let resid_raw = if p.union >= n {
                            0.0
                        } else {
                            (1.0 - e).max(0.0)
                        };
                        let total = e + resid_raw;
                        slots.push((pi as u32, (pi + 1) as u32, frac));
                        if total <= 0.0 {
                            *uniform_k = true;
                            totals.push(1.0);
                            resid_pp.push(1.0 / n as f64);
                        } else {
                            totals.push(total);
                            resid_pp.push(if p.union >= n {
                                0.0
                            } else {
                                (resid_raw / total) / (n - p.union) as f64
                            });
                        }
                        resolved = true;
                        break;
                    }
                }
                if !resolved {
                    clamped = Some(slices.len() - 1);
                }
            }
            if let Some(s) = clamped {
                slots.push((s as u32, s as u32, 0.0));
                totals.push(1.0);
                resid_pp.push(rpp[s]);
            }
        }
        SlotPlan {
            n,
            slots,
            totals,
            resid_pp,
            uniform,
        }
    }

    /// The discounted residual tail (`suffix` of the per-slot residuals).
    fn residual_tail(&self, gamma: f64) -> Vec<f64> {
        let horizon = self.slots.len();
        let mut tail = vec![0.0; horizon + 1];
        for t in (0..horizon).rev() {
            tail[t] = tail[t + 1] + gamma.powi(t as i32) * self.resid_pp[t];
        }
        tail
    }

    /// The discounted tail of a request with signature `sig`.
    fn tail_for(&self, sig: &TailSignature, gamma: f64) -> Vec<f64> {
        let horizon = self.slots.len();
        let mut tail = vec![0.0; horizon + 1];
        for t in (0..horizon).rev() {
            let p = if self.uniform[t] {
                1.0 / self.n as f64
            } else {
                let (a, b, frac) = self.slots[t];
                let (a, b) = (a as usize, b as usize);
                if a == b {
                    sig.probs[a]
                } else if sig.explicit_mask & ((1 << a) | (1 << b)) != 0 {
                    ((1.0 - frac) * sig.probs[a] + frac * sig.probs[b]) / self.totals[t]
                } else {
                    self.resid_pp[t]
                }
            };
            tail[t] = tail[t + 1] + gamma.powi(t as i32) * p;
        }
        tail
    }
}

/// Evaluates the expected utility of a schedule under a horizon model — the
/// objective of Eq. 2 — assuming the client cache starts from the allocation
/// `initial` (blocks already cached per request).
///
/// This is the yardstick used to compare the greedy and optimal schedulers
/// (Figure 17).
pub fn schedule_expected_utility(
    schedule: &[BlockRef],
    model: &HorizonModel,
    utility: &UtilityModel,
    initial: &HashMap<RequestId, u32>,
) -> f64 {
    expected_utility_over(schedule.iter().map(|&b| Some(b)), model, utility, initial)
}

/// Slot-aligned variant of [`schedule_expected_utility`]: entry `k` is the
/// block scheduled for slot `k`, with `None` marking a slot the sender
/// consumed without a scheduled block (e.g. it ran ahead of the scheduler —
/// see [`greedy::GreedyScheduler::update_prediction`]).  Empty slots
/// contribute nothing but still advance the slot index, so later blocks keep
/// their correct (later, lower-tail) probability coefficients.
pub fn schedule_expected_utility_slots(
    schedule: &[Option<BlockRef>],
    model: &HorizonModel,
    utility: &UtilityModel,
    initial: &HashMap<RequestId, u32>,
) -> f64 {
    expected_utility_over(schedule.iter().copied(), model, utility, initial)
}

fn expected_utility_over(
    slots: impl Iterator<Item = Option<BlockRef>>,
    model: &HorizonModel,
    utility: &UtilityModel,
    initial: &HashMap<RequestId, u32>,
) -> f64 {
    let mut held: HashMap<RequestId, u32> = initial.clone();
    let mut total = 0.0;
    for (k, slot) in slots.enumerate().take(model.horizon()) {
        let Some(b) = slot else { continue };
        let have = held.entry(b.request).or_insert(0);
        *have += 1;
        let blocks_now = *have;
        // The newly delivered block contributes its marginal gain for every
        // remaining slot in the horizon, weighted by the probability the user
        // asks for this request then — identical to the U^t_{i,j} coefficient
        // of Eq. 3.
        let gain = utility.table(b.request.index()).gain(blocks_now);
        total += gain * model.tail(b.request, k);
    }
    // Blocks already cached at the start contribute over the whole horizon.
    // Summed in request order: float addition is not associative, and this
    // score is compared bit-for-bit across scheduler variants.
    // lint:allow(hash-iter) -- snapshot is sorted on the next line
    let mut cached: Vec<(RequestId, u32)> = initial.iter().map(|(&r, &b)| (r, b)).collect();
    cached.sort_unstable();
    for (r, b) in cached {
        total += utility.table(r.index()).step(b) * model.tail(r, 0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{HorizonSlice, SparseDistribution};
    use crate::types::Time;
    use crate::utility::LinearUtility;

    fn summary_point(n: usize, r: RequestId) -> PredictionSummary {
        PredictionSummary::point(n, r, Time::ZERO)
    }

    #[test]
    fn uniform_model_tails_decrease() {
        let m = HorizonModel::uniform(10, 8, Duration::from_millis(10), 1.0);
        assert_eq!(m.horizon(), 8);
        assert_eq!(m.materialized_count(), 0);
        let t0 = m.tail(RequestId(3), 0);
        let t4 = m.tail(RequestId(3), 4);
        assert!(t0 > t4);
        assert_eq!(m.tail(RequestId(3), 8), 0.0);
        // Uniform: every request has the same tail.
        assert!((m.tail(RequestId(0), 2) - m.tail(RequestId(9), 2)).abs() < 1e-12);
        // Tail at 0 is horizon * (1/n).
        assert!((t0 - 8.0 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn point_model_concentrates_mass() {
        let m = HorizonModel::build(
            &summary_point(10, RequestId(2)),
            5,
            Duration::from_millis(20),
            1.0,
        );
        assert!(m.is_materialized(RequestId(2)));
        assert!(!m.is_materialized(RequestId(3)));
        assert!((m.tail(RequestId(2), 0) - 5.0).abs() < 1e-9);
        assert_eq!(m.tail(RequestId(3), 0), 0.0);
        assert_eq!(m.materialized_count(), 1);
    }

    #[test]
    fn gamma_discounts_future() {
        let m = HorizonModel::build(
            &summary_point(4, RequestId(0)),
            4,
            Duration::from_millis(10),
            0.5,
        );
        // tail(0) = 1 + 0.5 + 0.25 + 0.125 = 1.875
        assert!((m.tail(RequestId(0), 0) - 1.875).abs() < 1e-9);
        // slot probabilities recover the undiscounted per-slot values.
        assert!((m.slot_prob(RequestId(0), 3) - 1.0).abs() < 1e-9);
        assert_eq!(m.slot_prob(RequestId(0), 4), 0.0);
    }

    #[test]
    fn time_varying_prediction_shifts_mass() {
        // Request 0 likely soon, request 1 likely later.
        let slices = vec![
            HorizonSlice {
                delta: Duration::from_millis(10),
                dist: SparseDistribution::point(4, RequestId(0)),
            },
            HorizonSlice {
                delta: Duration::from_millis(400),
                dist: SparseDistribution::point(4, RequestId(1)),
            },
        ];
        let s = PredictionSummary::new(4, slices, Time::ZERO);
        let m = HorizonModel::build(&s, 40, Duration::from_millis(10), 1.0);
        // Early slots favor request 0; late slots favor request 1.
        assert!(m.slot_prob(RequestId(0), 0) > m.slot_prob(RequestId(1), 0));
        assert!(m.slot_prob(RequestId(1), 39) > m.slot_prob(RequestId(0), 39));
    }

    #[test]
    fn expected_utility_prefers_probable_requests() {
        let n = 4;
        let m = HorizonModel::build(
            &summary_point(n, RequestId(1)),
            4,
            Duration::from_millis(10),
            1.0,
        );
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let empty = HashMap::new();
        let good: Schedule = (0..4).map(|j| BlockRef::new(RequestId(1), j)).collect();
        let bad: Schedule = (0..4).map(|j| BlockRef::new(RequestId(0), j)).collect();
        let vg = schedule_expected_utility(&good, &m, &u, &empty);
        let vb = schedule_expected_utility(&bad, &m, &u, &empty);
        assert!(vg > vb);
        assert!(vg > 0.0);
        assert_eq!(vb, 0.0);
    }

    #[test]
    fn expected_utility_counts_initial_cache() {
        let n = 2;
        let m = HorizonModel::uniform(n, 4, Duration::from_millis(10), 1.0);
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let mut initial = HashMap::new();
        initial.insert(RequestId(0), 2u32);
        let v_empty_schedule = schedule_expected_utility(&[], &m, &u, &initial);
        assert!(v_empty_schedule > 0.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        HorizonModel::uniform(4, 0, Duration::from_millis(1), 1.0);
    }

    /// A summary whose slices all share one distribution: every materialized
    /// tail is proportional (per-slot probability is constant over slots).
    fn flat_summary(n: usize, entries: Vec<(RequestId, f64)>, residual: f64) -> PredictionSummary {
        let dist = SparseDistribution::from_entries(n, entries, residual);
        let slices = PredictionSummary::default_deltas()
            .into_iter()
            .map(|delta| HorizonSlice {
                delta,
                dist: dist.clone(),
            })
            .collect();
        PredictionSummary::new(n, slices, Time::ZERO)
    }

    #[test]
    fn homogeneous_tails_share_one_bucket() {
        let s = flat_summary(
            100,
            vec![
                (RequestId(3), 0.4),
                (RequestId(11), 0.2),
                (RequestId(40), 0.1),
            ],
            0.3,
        );
        let m = HorizonModel::build(&s, 64, Duration::from_millis(5), 0.9);
        let p = m.shape_partition();
        assert_eq!(p.buckets.len(), 1, "{:?}", p);
        assert!(p.irregular.is_empty());
        assert_eq!(p.buckets[0].rep, RequestId(3));
        assert_eq!(
            p.buckets[0].members,
            vec![RequestId(3), RequestId(11), RequestId(40)]
        );
        assert_eq!(p.materialized_count(), m.materialized_count());
        // Factors recover the tails of every member, not just the rep.
        for t in 0..64 {
            for &r in &p.buckets[0].members {
                let lazy = m.tail(r, 0) * m.shape_factor(0, t);
                assert!((lazy - m.tail(r, t)).abs() <= 1e-12 * m.tail(r, 0).max(1.0));
            }
        }
        assert!((m.shape_factor(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_varying_tails_split_buckets() {
        // Request 0's mass decays over the horizon while request 1's grows:
        // their tails cannot be proportional, so they land in two buckets.
        let slices = vec![
            HorizonSlice {
                delta: Duration::from_millis(10),
                dist: SparseDistribution::point(4, RequestId(0)),
            },
            HorizonSlice {
                delta: Duration::from_millis(400),
                dist: SparseDistribution::point(4, RequestId(1)),
            },
        ];
        let s = PredictionSummary::new(4, slices, Time::ZERO);
        let m = HorizonModel::build(&s, 40, Duration::from_millis(10), 1.0);
        let p = m.shape_partition();
        assert_eq!(p.buckets.len(), 2);
        assert!(p.irregular.is_empty());
    }

    #[test]
    fn bucket_cap_overflows_to_irregular() {
        // Each request's per-slot probability interpolates between a
        // distinct pair of (early, late) weights, so all shapes differ and
        // the bucket cap forces the overflow into the irregular set.
        let n = 24;
        let early = SparseDistribution::from_weights(
            n,
            (0..n)
                .map(|i| (RequestId::from(i), (i + 1) as f64))
                .collect(),
        );
        let late = SparseDistribution::from_weights(
            n,
            (0..n)
                .map(|i| (RequestId::from(i), (n - i) as f64 * ((i % 7) + 1) as f64))
                .collect(),
        );
        let slices = vec![
            HorizonSlice {
                delta: Duration::from_millis(10),
                dist: early,
            },
            HorizonSlice {
                delta: Duration::from_millis(500),
                dist: late,
            },
        ];
        let s = PredictionSummary::new(n, slices, Time::ZERO);
        let m = HorizonModel::build(&s, 50, Duration::from_millis(10), 1.0);
        let p = m.shape_partition();
        assert_eq!(p.buckets.len(), super::MAX_SHAPE_BUCKETS);
        assert!(!p.irregular.is_empty());
        assert_eq!(p.materialized_count(), n);
        // Irregular ids stay ascending (deterministic layout).
        let mut sorted = p.irregular.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, p.irregular);
    }

    /// A summary over the default four deltas whose first two slices use
    /// `early` and last two use `late` — time-varying, so requests whose
    /// early/late balance changes change tail *shape*, not just magnitude.
    fn varying_summary(
        n: usize,
        early: Vec<(RequestId, f64)>,
        late: Vec<(RequestId, f64)>,
    ) -> PredictionSummary {
        let e = SparseDistribution::from_entries(n, early, 0.3);
        let l = SparseDistribution::from_entries(n, late, 0.3);
        let slices = PredictionSummary::default_deltas()
            .into_iter()
            .enumerate()
            .map(|(i, delta)| HorizonSlice {
                delta,
                dist: if i < 2 { e.clone() } else { l.clone() },
            })
            .collect();
        PredictionSummary::new(n, slices, Time::ZERO)
    }

    /// Asserts `diffed` (a model evolved via `apply_update`) agrees with a
    /// fresh build of the same summary on every tail, the residual, and the
    /// materialized set.
    fn assert_model_equiv(diffed: &HorizonModel, fresh: &HorizonModel) {
        assert_eq!(diffed.num_requests(), fresh.num_requests());
        let mut dm: Vec<RequestId> = diffed.materialized().collect();
        let mut fm: Vec<RequestId> = fresh.materialized().collect();
        dm.sort_unstable();
        fm.sort_unstable();
        assert_eq!(dm, fm, "materialized sets diverged");
        for t in 0..=diffed.horizon() {
            let (a, b) = (diffed.residual_tail(t), fresh.residual_tail(t));
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                "residual tail diverged at t={t}: {a} vs {b}"
            );
            for r in 0..diffed.num_requests() {
                let r = RequestId::from(r);
                let (a, b) = (diffed.tail(r, t), fresh.tail(r, t));
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                    "tail({r:?}, {t}) diverged: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn apply_update_matches_fresh_build_across_overlapping_updates() {
        let n = 30;
        let horizon = 48;
        let slot = Duration::from_millis(5);
        // A drifting sequence: reweights (shape-preserving), joins,
        // departures, and a shape change (early/late balance flip).
        let summaries = [
            flat_summary(n, vec![(RequestId(3), 0.4), (RequestId(7), 0.2)], 0.4),
            // Reweight 3, join 12, keep 7.
            flat_summary(
                n,
                vec![
                    (RequestId(3), 0.3),
                    (RequestId(7), 0.2),
                    (RequestId(12), 0.1),
                ],
                0.4,
            ),
            // Depart 7; 3 and 12 change magnitude only.
            flat_summary(n, vec![(RequestId(3), 0.5), (RequestId(12), 0.2)], 0.3),
            // Shape change: 3 becomes late-heavy, 12 early-heavy; 5 joins
            // with its own shape.
            varying_summary(
                n,
                vec![(RequestId(12), 0.5), (RequestId(5), 0.1)],
                vec![(RequestId(3), 0.6)],
            ),
            // Back to a flat overlap.
            flat_summary(n, vec![(RequestId(3), 0.4), (RequestId(5), 0.3)], 0.3),
        ];
        let mut model = HorizonModel::build(&summaries[0], horizon, slot, 0.9);
        let mut diff_applied = 0;
        for s in &summaries[1..] {
            match model.apply_update(s) {
                Some(_) => diff_applied += 1,
                None => model = HorizonModel::build(s, horizon, slot, 0.9),
            }
            assert_model_equiv(&model, &HorizonModel::build(s, horizon, slot, 0.9));
            // The partition's member lists and the per-request placements
            // stay mutually consistent under diffing.
            let p = model.shape_partition();
            assert_eq!(p.materialized_count(), model.materialized_count());
            for (bi, b) in p.buckets.iter().enumerate() {
                for &r in &b.members {
                    assert_eq!(
                        model.placement(r),
                        Some(super::ExplicitPlacement::Bucket(bi))
                    );
                }
            }
            for &r in &p.irregular {
                assert_eq!(
                    model.placement(r),
                    Some(super::ExplicitPlacement::Irregular)
                );
            }
        }
        assert_eq!(diff_applied, 4, "every update should take the diff path");
    }

    #[test]
    fn apply_update_reports_structural_diff() {
        let n = 20;
        // Horizon spans all four slice offsets (640 ms > 500 ms), so the
        // early/late balance actually shapes the tails.
        let horizon = 64;
        let slot = Duration::from_millis(10);
        let s1 = flat_summary(n, vec![(RequestId(2), 0.3), (RequestId(9), 0.2)], 0.5);
        let mut model = HorizonModel::build(&s1, horizon, slot, 0.9);
        // Join 4, depart 9, reweight 2 — all same (flat) shape.
        let s2 = flat_summary(n, vec![(RequestId(2), 0.4), (RequestId(4), 0.2)], 0.4);
        let diff = model.apply_update(&s2).expect("small diff");
        assert_eq!(diff.joined, vec![RequestId(4)]);
        assert_eq!(diff.departed, vec![RequestId(9)]);
        assert!(diff.rescaled.contains(&RequestId(2)));
        assert_eq!(diff.buckets_added, 0, "flat shapes share the one bucket");
        // A time-varying update moves 2 into a new shape bucket.
        let s3 = varying_summary(n, vec![(RequestId(4), 0.4)], vec![(RequestId(2), 0.5)]);
        let diff = model.apply_update(&s3).expect("small diff");
        assert!(diff.buckets_added > 0, "new shapes need new buckets");
        assert!(
            diff.removed.contains(&RequestId(2)) || diff.rescaled.contains(&RequestId(2)),
            "request 2 must be re-placed or rescaled: {diff:?}"
        );
        assert_model_equiv(&model, &HorizonModel::build(&s3, horizon, slot, 0.9));
    }

    #[test]
    fn apply_update_falls_back_on_incompatible_or_large_diffs() {
        let n = 400;
        let horizon = 16;
        let slot = Duration::from_millis(5);
        let s1 = flat_summary(n, vec![(RequestId(1), 0.5)], 0.5);
        let mut model = HorizonModel::build(&s1, horizon, slot, 0.9);
        // Different slice offsets: no diff.
        let two_slice = PredictionSummary::new(
            n,
            vec![
                HorizonSlice {
                    delta: Duration::from_millis(10),
                    dist: SparseDistribution::point(n, RequestId(1)),
                },
                HorizonSlice {
                    delta: Duration::from_millis(300),
                    dist: SparseDistribution::point(n, RequestId(2)),
                },
            ],
            Time::ZERO,
        );
        assert!(model.apply_update(&two_slice).is_none());
        // A different request-space size: no diff.
        let smaller = flat_summary(n - 1, vec![(RequestId(1), 0.5)], 0.5);
        assert!(model.apply_update(&smaller).is_none());
        // More structural changes than max(64, m/4): no diff.
        let big = flat_summary(
            n,
            (0..100usize).map(|i| (RequestId::from(i), 0.005)).collect(),
            0.5,
        );
        assert!(model.apply_update(&big).is_none());
        // The refusals left the model untouched.
        assert_model_equiv(&model, &HorizonModel::build(&s1, horizon, slot, 0.9));
    }

    #[test]
    fn slot_aligned_expected_utility_skips_gaps() {
        let n = 4;
        let m = HorizonModel::build(
            &summary_point(n, RequestId(1)),
            4,
            Duration::from_millis(10),
            0.5,
        );
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let empty = HashMap::new();
        let with_gap = [
            Some(BlockRef::new(RequestId(1), 0)),
            None,
            Some(BlockRef::new(RequestId(1), 1)),
        ];
        let v = schedule_expected_utility_slots(&with_gap, &m, &u, &empty);
        // Same blocks at the same slots, expressed densely with a dummy
        // zero-probability filler, give the same value.
        let dense = [
            BlockRef::new(RequestId(1), 0),
            BlockRef::new(RequestId(0), 0),
            BlockRef::new(RequestId(1), 1),
        ];
        let vd = schedule_expected_utility(&dense, &m, &u, &empty);
        assert!((v - vd).abs() < 1e-12);
        // The gap shifts the second block to a lower-tail slot: packing the
        // blocks densely scores strictly higher.
        let packed = [
            BlockRef::new(RequestId(1), 0),
            BlockRef::new(RequestId(1), 1),
        ];
        assert!(schedule_expected_utility(&packed, &m, &u, &empty) > v);
    }
}
