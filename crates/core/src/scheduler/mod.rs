//! Server-side scheduling: allocating network slots to response blocks.
//!
//! The scheduler takes a utility function and a probability distribution over
//! future requests and decides the sequence of blocks to push to the client so
//! that expected user-perceived utility is maximized over a finite horizon of
//! `C` blocks (the client cache size), per §5 of the paper.
//!
//! * [`HorizonModel`] materializes the probability terms the schedulers need:
//!   for each request, the (discounted) probability mass of it being requested
//!   during the *remainder* of the current schedule — the `P_{i,t}` matrix of
//!   Listing 1, stored sparsely so that a 10,000-request space only pays for
//!   the handful of requests with non-uniform probability.
//! * [`greedy::GreedyScheduler`] is the fast single-step sampler the paper
//!   deploys (§5.3).
//! * [`optimal::OptimalScheduler`] solves the linearized finite-horizon
//!   objective exactly (the role Gurobi plays in §5.2/§A.1) via a
//!   maximum-weight assignment.
//! * [`backend_limit`] post-processes schedules for backends with limited
//!   concurrency (§5.4).

pub mod backend_limit;
pub mod greedy;
pub mod optimal;

use std::collections::HashMap;

use crate::distribution::PredictionSummary;
use crate::types::{BlockRef, Duration, RequestId};
use crate::utility::UtilityModel;

pub use crate::sampling::SamplerVariant;
pub use backend_limit::limit_distinct_requests;
pub use greedy::{GreedyScheduler, GreedySchedulerConfig};
pub use optimal::{BruteForceScheduler, OptimalScheduler};

/// An ordered sequence of blocks for the sender to push, most urgent first.
pub type Schedule = Vec<BlockRef>;

/// The pluggable scheduling interface of the server (§5).
///
/// A scheduler turns a stream of prediction updates into an ordered stream of
/// blocks for the sender.  [`KhameleonServer`](crate::server::KhameleonServer)
/// and [`Session`](crate::session::Session) hold a `Box<dyn Scheduler>`, so
/// the greedy sampler of §5.3, the assignment-based optimal solver of §5.2,
/// the exhaustive [`BruteForceScheduler`], and user-supplied strategies are
/// interchangeable without touching the server plumbing.
///
/// The contract mirrors the sender-coordination protocol of §5.3.2:
///
/// * [`update_prediction`](Scheduler::update_prediction) receives the decoded
///   client prediction and the sender's position within the current schedule;
///   blocks before that position are immutable, the rest may be re-planned.
/// * [`next_batch`](Scheduler::next_batch) emits up to `count` more blocks of
///   the current schedule in push order, never repeating a block the
///   (simulated) client cache still holds.
/// * [`set_slot_duration`](Scheduler::set_slot_duration) re-calibrates the
///   slot length whenever the bandwidth estimate changes (§5.4).
pub trait Scheduler: Send {
    /// Applies a fresh decoded prediction.  `sender_position` is the number
    /// of blocks of the current schedule already placed on the network.
    fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize);

    /// Emits up to `count` blocks in push order.  An empty result means no
    /// block currently has positive expected gain (everything useful is
    /// scheduled or resident).
    fn next_batch(&mut self, count: usize) -> Schedule;

    /// Confirms that `block` (previously emitted by
    /// [`next_batch`](Scheduler::next_batch)) was actually placed on the
    /// wire.  Blocks are confirmed in emission order; emitted blocks that
    /// are never confirmed were dropped by the sender and may be re-planned
    /// on the next prediction update.  Schedulers that only need the
    /// `sender_position` argument of
    /// [`update_prediction`](Scheduler::update_prediction) (like the greedy
    /// scheduler, whose sampling state is position-based) can ignore this.
    fn note_sent(&mut self, block: BlockRef) {
        let _ = block;
    }

    /// Updates the bandwidth-derived duration of one network slot.
    fn set_slot_duration(&mut self, slot: Duration);

    /// The scheduler's belief about the client's per-request resident block
    /// counts (empty when the scheduler does not track the client cache).
    fn simulated_cache(&self) -> HashMap<RequestId, u32>;

    /// Expected utility (Eq. 2) of the not-yet-consumed portion of the
    /// current schedule, starting from the cache allocation `initial`.
    fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64;

    /// The scheduling horizon `C` in blocks (the client cache size).
    fn horizon(&self) -> usize;

    /// Number of prediction updates applied so far.
    fn prediction_updates(&self) -> u64;

    /// Short name used in logs and experiment reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Materialized probability model over a scheduling horizon of `horizon`
/// network slots, each lasting `slot_duration`.
///
/// `tail(i, t)` is the probability-mass term the schedulers multiply against
/// marginal utility gains: the (γ-discounted) probability that request `i`
/// is what the user wants during slots `t..horizon`.  Requests without an
/// explicit (materialized) entry all share the same tail, which is what makes
/// the greedy scheduler's meta-request optimization possible (§5.3.1).
#[derive(Debug, Clone)]
pub struct HorizonModel {
    n: usize,
    horizon: usize,
    slot_duration: Duration,
    gamma: f64,
    /// Materialized per-request tails: request -> tail vector of length
    /// `horizon + 1` (index `horizon` is 0, simplifying loops).
    explicit: HashMap<RequestId, Vec<f64>>,
    /// Tail vector shared by every non-materialized request.
    residual: Vec<f64>,
    /// Materialized requests grouped by tail *shape* (see
    /// [`TailShapePartition`]), computed once at build time.
    partition: TailShapePartition,
}

/// Maximum number of distinct shape buckets materialized per model; requests
/// beyond this many distinct shapes fall back to the exact-refresh irregular
/// set.  Real predictors emit a handful of horizon slices, so distinct shapes
/// are rare; the cap only bounds adversarial inputs.
const MAX_SHAPE_BUCKETS: usize = 16;

/// Relative tolerance for declaring two normalized tails equal.  Genuinely
/// proportional tails agree to a few ulps; anything farther apart than this
/// is a real shape difference.
const SHAPE_EPS: f64 = 1e-9;

/// The materialized requests of a [`HorizonModel`], grouped by how their tail
/// `tail_i(t)` evolves as the slot index advances.
///
/// Requests in one [`ShapeBucket`] have elementwise-proportional tail
/// vectors: `tail_i(t) = tail_i(0) · s(t)` for a bucket-wide shape `s` with
/// `s(0) = 1`.  A sampler can therefore represent the whole bucket's
/// per-slot evolution with **one scalar factor** — advancing `t` multiplies
/// the bucket, it never rewrites members.  Requests whose tails are
/// proportional to no bucket representative (or that overflow the bucket
/// cap) land in `irregular` and must be refreshed exactly each slot.
///
/// Membership lists are ascending by request id and the partition is built
/// from the id-sorted materialized set, so the layout is deterministic — a
/// requirement for seed-reproducible sampling.
#[derive(Debug, Clone, Default)]
pub struct TailShapePartition {
    /// Shape buckets, in order of first appearance over ascending ids.
    pub buckets: Vec<ShapeBucket>,
    /// Materialized requests needing exact per-slot refresh, ascending.
    pub irregular: Vec<RequestId>,
}

/// One group of materialized requests with elementwise-proportional tails.
#[derive(Debug, Clone)]
pub struct ShapeBucket {
    /// The bucket's representative (its first member): the shape factor at
    /// slot `t` is `tail(rep, t) / tail(rep, 0)`.
    pub rep: RequestId,
    /// Members in ascending request order (includes `rep`).
    pub members: Vec<RequestId>,
}

impl TailShapePartition {
    /// Total number of bucketed members plus irregular requests.
    pub fn materialized_count(&self) -> usize {
        self.buckets.iter().map(|b| b.members.len()).sum::<usize>() + self.irregular.len()
    }

    fn build(ids: &[RequestId], tails: &HashMap<RequestId, Vec<f64>>, horizon: usize) -> Self {
        let mut buckets: Vec<ShapeBucket> = Vec::new();
        let mut irregular = Vec::new();
        'next: for &r in ids {
            let tail = &tails[&r];
            for b in &mut buckets {
                if tails_proportional(&tails[&b.rep], tail, horizon) {
                    b.members.push(r);
                    continue 'next;
                }
            }
            if buckets.len() < MAX_SHAPE_BUCKETS {
                buckets.push(ShapeBucket {
                    rep: r,
                    members: vec![r],
                });
            } else {
                irregular.push(r);
            }
        }
        TailShapePartition { buckets, irregular }
    }
}

/// Whether two tail vectors are elementwise proportional (share a shape).
///
/// Tails are non-increasing and non-negative, so `tail[0]` is the maximum;
/// comparing the `tail[t] / tail[0]` ratios (both in `[0, 1]`) against an
/// absolute epsilon is a relative comparison in disguise.  All-zero tails
/// are proportional to everything (their weight is identically zero).
fn tails_proportional(a: &[f64], b: &[f64], horizon: usize) -> bool {
    let (a0, b0) = (a[0], b[0]);
    if a0 <= 0.0 || b0 <= 0.0 {
        return a0 <= 0.0 && b0 <= 0.0;
    }
    for t in 1..horizon {
        if (a[t] / a0 - b[t] / b0).abs() > SHAPE_EPS {
            return false;
        }
    }
    true
}

impl HorizonModel {
    /// Builds the model from a prediction summary.
    ///
    /// `horizon` is the number of slots in a full schedule (the client cache
    /// size in blocks), `slot_duration` the time to place one block on the
    /// network at the current bandwidth estimate, and `gamma` the future
    /// discount from Eq. 1 (`1.0` = all timesteps matter equally).
    pub fn build(
        summary: &PredictionSummary,
        horizon: usize,
        slot_duration: Duration,
        gamma: f64,
    ) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        let n = summary.num_requests();
        let materialized = summary.materialized_requests(); // sorted ascending

        // Per-slot probabilities for each materialized request and for the
        // residual tail, evaluated at the midpoint of each slot.
        let mut per_slot: Vec<Vec<f64>> = vec![Vec::with_capacity(horizon); materialized.len()];
        let mut residual_slot: Vec<f64> = Vec::with_capacity(horizon);
        for k in 0..horizon {
            let delta = Duration::from_micros(
                slot_duration.as_micros() * (k as u64) + slot_duration.as_micros() / 2,
            );
            let dist = summary.at(delta);
            for (mi, &r) in materialized.iter().enumerate() {
                per_slot[mi].push(dist.prob(r));
            }
            residual_slot.push(dist.residual_per_request());
        }

        // Suffix sums with discounting: tail[t] = sum_{k=t}^{horizon-1} gamma^k p[k].
        let suffix = |p: &[f64]| -> Vec<f64> {
            let mut tail = vec![0.0; horizon + 1];
            for t in (0..horizon).rev() {
                tail[t] = tail[t + 1] + gamma.powi(t as i32) * p[t];
            }
            tail
        };

        let mut explicit = HashMap::with_capacity(materialized.len());
        for (mi, &r) in materialized.iter().enumerate() {
            explicit.insert(r, suffix(&per_slot[mi]));
        }
        let residual = suffix(&residual_slot);
        let partition = TailShapePartition::build(&materialized, &explicit, horizon);

        HorizonModel {
            n,
            horizon,
            slot_duration,
            gamma,
            explicit,
            residual,
            partition,
        }
    }

    /// A model where every request is uniformly likely at every slot.
    pub fn uniform(n: usize, horizon: usize, slot_duration: Duration, gamma: f64) -> Self {
        let summary = PredictionSummary::uniform(n, crate::types::Time::ZERO);
        Self::build(&summary, horizon, slot_duration, gamma)
    }

    /// Number of requests in the space.
    pub fn num_requests(&self) -> usize {
        self.n
    }

    /// Number of slots in the horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Duration of one slot.
    pub fn slot_duration(&self) -> Duration {
        self.slot_duration
    }

    /// The discount factor.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The requests with materialized (non-residual) tails.
    pub fn materialized(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.explicit.keys().copied()
    }

    /// Number of materialized requests.
    pub fn materialized_count(&self) -> usize {
        self.explicit.len()
    }

    /// Whether `request` has a materialized tail.
    pub fn is_materialized(&self, request: RequestId) -> bool {
        self.explicit.contains_key(&request)
    }

    /// The materialized requests grouped by tail shape (see
    /// [`TailShapePartition`]).
    pub fn shape_partition(&self) -> &TailShapePartition {
        &self.partition
    }

    /// The shape factor `s(t) = tail(rep, t) / tail(rep, 0)` of shape bucket
    /// `b` at slot `t` (`0` for all-zero buckets).
    pub fn shape_factor(&self, b: usize, t: usize) -> f64 {
        let rep = self.partition.buckets[b].rep;
        let base = self.tail(rep, 0);
        if base <= 0.0 {
            0.0
        } else {
            self.tail(rep, t) / base
        }
    }

    /// Tail mass of `request` from slot `t` (clamped to the horizon) onward.
    pub fn tail(&self, request: RequestId, t: usize) -> f64 {
        let t = t.min(self.horizon);
        match self.explicit.get(&request) {
            Some(v) => v[t],
            None => self.residual[t],
        }
    }

    /// Tail mass of a single non-materialized (residual) request.
    pub fn residual_tail(&self, t: usize) -> f64 {
        self.residual[t.min(self.horizon)]
    }

    /// Per-slot probability of `request` at slot `k` (recovered from the
    /// discounted suffix sums).
    pub fn slot_prob(&self, request: RequestId, k: usize) -> f64 {
        if k >= self.horizon {
            return 0.0;
        }
        let d = self.gamma.powi(k as i32);
        if d <= 0.0 {
            return 0.0;
        }
        (self.tail(request, k) - self.tail(request, k + 1)) / d
    }
}

/// Evaluates the expected utility of a schedule under a horizon model — the
/// objective of Eq. 2 — assuming the client cache starts from the allocation
/// `initial` (blocks already cached per request).
///
/// This is the yardstick used to compare the greedy and optimal schedulers
/// (Figure 17).
pub fn schedule_expected_utility(
    schedule: &[BlockRef],
    model: &HorizonModel,
    utility: &UtilityModel,
    initial: &HashMap<RequestId, u32>,
) -> f64 {
    expected_utility_over(schedule.iter().map(|&b| Some(b)), model, utility, initial)
}

/// Slot-aligned variant of [`schedule_expected_utility`]: entry `k` is the
/// block scheduled for slot `k`, with `None` marking a slot the sender
/// consumed without a scheduled block (e.g. it ran ahead of the scheduler —
/// see [`greedy::GreedyScheduler::update_prediction`]).  Empty slots
/// contribute nothing but still advance the slot index, so later blocks keep
/// their correct (later, lower-tail) probability coefficients.
pub fn schedule_expected_utility_slots(
    schedule: &[Option<BlockRef>],
    model: &HorizonModel,
    utility: &UtilityModel,
    initial: &HashMap<RequestId, u32>,
) -> f64 {
    expected_utility_over(schedule.iter().copied(), model, utility, initial)
}

fn expected_utility_over(
    slots: impl Iterator<Item = Option<BlockRef>>,
    model: &HorizonModel,
    utility: &UtilityModel,
    initial: &HashMap<RequestId, u32>,
) -> f64 {
    let mut held: HashMap<RequestId, u32> = initial.clone();
    let mut total = 0.0;
    for (k, slot) in slots.enumerate().take(model.horizon()) {
        let Some(b) = slot else { continue };
        let have = held.entry(b.request).or_insert(0);
        *have += 1;
        let blocks_now = *have;
        // The newly delivered block contributes its marginal gain for every
        // remaining slot in the horizon, weighted by the probability the user
        // asks for this request then — identical to the U^t_{i,j} coefficient
        // of Eq. 3.
        let gain = utility.table(b.request.index()).gain(blocks_now);
        total += gain * model.tail(b.request, k);
    }
    // Blocks already cached at the start contribute over the whole horizon.
    for (&r, &b) in initial {
        total += utility.table(r.index()).step(b) * model.tail(r, 0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{HorizonSlice, SparseDistribution};
    use crate::types::Time;
    use crate::utility::LinearUtility;

    fn summary_point(n: usize, r: RequestId) -> PredictionSummary {
        PredictionSummary::point(n, r, Time::ZERO)
    }

    #[test]
    fn uniform_model_tails_decrease() {
        let m = HorizonModel::uniform(10, 8, Duration::from_millis(10), 1.0);
        assert_eq!(m.horizon(), 8);
        assert_eq!(m.materialized_count(), 0);
        let t0 = m.tail(RequestId(3), 0);
        let t4 = m.tail(RequestId(3), 4);
        assert!(t0 > t4);
        assert_eq!(m.tail(RequestId(3), 8), 0.0);
        // Uniform: every request has the same tail.
        assert!((m.tail(RequestId(0), 2) - m.tail(RequestId(9), 2)).abs() < 1e-12);
        // Tail at 0 is horizon * (1/n).
        assert!((t0 - 8.0 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn point_model_concentrates_mass() {
        let m = HorizonModel::build(
            &summary_point(10, RequestId(2)),
            5,
            Duration::from_millis(20),
            1.0,
        );
        assert!(m.is_materialized(RequestId(2)));
        assert!(!m.is_materialized(RequestId(3)));
        assert!((m.tail(RequestId(2), 0) - 5.0).abs() < 1e-9);
        assert_eq!(m.tail(RequestId(3), 0), 0.0);
        assert_eq!(m.materialized_count(), 1);
    }

    #[test]
    fn gamma_discounts_future() {
        let m = HorizonModel::build(
            &summary_point(4, RequestId(0)),
            4,
            Duration::from_millis(10),
            0.5,
        );
        // tail(0) = 1 + 0.5 + 0.25 + 0.125 = 1.875
        assert!((m.tail(RequestId(0), 0) - 1.875).abs() < 1e-9);
        // slot probabilities recover the undiscounted per-slot values.
        assert!((m.slot_prob(RequestId(0), 3) - 1.0).abs() < 1e-9);
        assert_eq!(m.slot_prob(RequestId(0), 4), 0.0);
    }

    #[test]
    fn time_varying_prediction_shifts_mass() {
        // Request 0 likely soon, request 1 likely later.
        let slices = vec![
            HorizonSlice {
                delta: Duration::from_millis(10),
                dist: SparseDistribution::point(4, RequestId(0)),
            },
            HorizonSlice {
                delta: Duration::from_millis(400),
                dist: SparseDistribution::point(4, RequestId(1)),
            },
        ];
        let s = PredictionSummary::new(4, slices, Time::ZERO);
        let m = HorizonModel::build(&s, 40, Duration::from_millis(10), 1.0);
        // Early slots favor request 0; late slots favor request 1.
        assert!(m.slot_prob(RequestId(0), 0) > m.slot_prob(RequestId(1), 0));
        assert!(m.slot_prob(RequestId(1), 39) > m.slot_prob(RequestId(0), 39));
    }

    #[test]
    fn expected_utility_prefers_probable_requests() {
        let n = 4;
        let m = HorizonModel::build(
            &summary_point(n, RequestId(1)),
            4,
            Duration::from_millis(10),
            1.0,
        );
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let empty = HashMap::new();
        let good: Schedule = (0..4).map(|j| BlockRef::new(RequestId(1), j)).collect();
        let bad: Schedule = (0..4).map(|j| BlockRef::new(RequestId(0), j)).collect();
        let vg = schedule_expected_utility(&good, &m, &u, &empty);
        let vb = schedule_expected_utility(&bad, &m, &u, &empty);
        assert!(vg > vb);
        assert!(vg > 0.0);
        assert_eq!(vb, 0.0);
    }

    #[test]
    fn expected_utility_counts_initial_cache() {
        let n = 2;
        let m = HorizonModel::uniform(n, 4, Duration::from_millis(10), 1.0);
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let mut initial = HashMap::new();
        initial.insert(RequestId(0), 2u32);
        let v_empty_schedule = schedule_expected_utility(&[], &m, &u, &initial);
        assert!(v_empty_schedule > 0.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        HorizonModel::uniform(4, 0, Duration::from_millis(1), 1.0);
    }

    /// A summary whose slices all share one distribution: every materialized
    /// tail is proportional (per-slot probability is constant over slots).
    fn flat_summary(n: usize, entries: Vec<(RequestId, f64)>, residual: f64) -> PredictionSummary {
        let dist = SparseDistribution::from_entries(n, entries, residual);
        let slices = PredictionSummary::default_deltas()
            .into_iter()
            .map(|delta| HorizonSlice {
                delta,
                dist: dist.clone(),
            })
            .collect();
        PredictionSummary::new(n, slices, Time::ZERO)
    }

    #[test]
    fn homogeneous_tails_share_one_bucket() {
        let s = flat_summary(
            100,
            vec![
                (RequestId(3), 0.4),
                (RequestId(11), 0.2),
                (RequestId(40), 0.1),
            ],
            0.3,
        );
        let m = HorizonModel::build(&s, 64, Duration::from_millis(5), 0.9);
        let p = m.shape_partition();
        assert_eq!(p.buckets.len(), 1, "{:?}", p);
        assert!(p.irregular.is_empty());
        assert_eq!(p.buckets[0].rep, RequestId(3));
        assert_eq!(
            p.buckets[0].members,
            vec![RequestId(3), RequestId(11), RequestId(40)]
        );
        assert_eq!(p.materialized_count(), m.materialized_count());
        // Factors recover the tails of every member, not just the rep.
        for t in 0..64 {
            for &r in &p.buckets[0].members {
                let lazy = m.tail(r, 0) * m.shape_factor(0, t);
                assert!((lazy - m.tail(r, t)).abs() <= 1e-12 * m.tail(r, 0).max(1.0));
            }
        }
        assert!((m.shape_factor(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_varying_tails_split_buckets() {
        // Request 0's mass decays over the horizon while request 1's grows:
        // their tails cannot be proportional, so they land in two buckets.
        let slices = vec![
            HorizonSlice {
                delta: Duration::from_millis(10),
                dist: SparseDistribution::point(4, RequestId(0)),
            },
            HorizonSlice {
                delta: Duration::from_millis(400),
                dist: SparseDistribution::point(4, RequestId(1)),
            },
        ];
        let s = PredictionSummary::new(4, slices, Time::ZERO);
        let m = HorizonModel::build(&s, 40, Duration::from_millis(10), 1.0);
        let p = m.shape_partition();
        assert_eq!(p.buckets.len(), 2);
        assert!(p.irregular.is_empty());
    }

    #[test]
    fn bucket_cap_overflows_to_irregular() {
        // Each request's per-slot probability interpolates between a
        // distinct pair of (early, late) weights, so all shapes differ and
        // the bucket cap forces the overflow into the irregular set.
        let n = 24;
        let early = SparseDistribution::from_weights(
            n,
            (0..n)
                .map(|i| (RequestId::from(i), (i + 1) as f64))
                .collect(),
        );
        let late = SparseDistribution::from_weights(
            n,
            (0..n)
                .map(|i| (RequestId::from(i), (n - i) as f64 * ((i % 7) + 1) as f64))
                .collect(),
        );
        let slices = vec![
            HorizonSlice {
                delta: Duration::from_millis(10),
                dist: early,
            },
            HorizonSlice {
                delta: Duration::from_millis(500),
                dist: late,
            },
        ];
        let s = PredictionSummary::new(n, slices, Time::ZERO);
        let m = HorizonModel::build(&s, 50, Duration::from_millis(10), 1.0);
        let p = m.shape_partition();
        assert_eq!(p.buckets.len(), super::MAX_SHAPE_BUCKETS);
        assert!(!p.irregular.is_empty());
        assert_eq!(p.materialized_count(), n);
        // Irregular ids stay ascending (deterministic layout).
        let mut sorted = p.irregular.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, p.irregular);
    }

    #[test]
    fn slot_aligned_expected_utility_skips_gaps() {
        let n = 4;
        let m = HorizonModel::build(
            &summary_point(n, RequestId(1)),
            4,
            Duration::from_millis(10),
            0.5,
        );
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let empty = HashMap::new();
        let with_gap = [
            Some(BlockRef::new(RequestId(1), 0)),
            None,
            Some(BlockRef::new(RequestId(1), 1)),
        ];
        let v = schedule_expected_utility_slots(&with_gap, &m, &u, &empty);
        // Same blocks at the same slots, expressed densely with a dummy
        // zero-probability filler, give the same value.
        let dense = [
            BlockRef::new(RequestId(1), 0),
            BlockRef::new(RequestId(0), 0),
            BlockRef::new(RequestId(1), 1),
        ];
        let vd = schedule_expected_utility(&dense, &m, &u, &empty);
        assert!((v - vd).abs() < 1e-12);
        // The gap shifts the second block to a lower-tail slot: packing the
        // blocks densely scores strictly higher.
        let packed = [
            BlockRef::new(RequestId(1), 0),
            BlockRef::new(RequestId(1), 1),
        ];
        assert!(schedule_expected_utility(&packed, &m, &u, &empty) > v);
    }
}
