//! Server-side scheduling: allocating network slots to response blocks.
//!
//! The scheduler takes a utility function and a probability distribution over
//! future requests and decides the sequence of blocks to push to the client so
//! that expected user-perceived utility is maximized over a finite horizon of
//! `C` blocks (the client cache size), per §5 of the paper.
//!
//! * [`HorizonModel`] materializes the probability terms the schedulers need:
//!   for each request, the (discounted) probability mass of it being requested
//!   during the *remainder* of the current schedule — the `P_{i,t}` matrix of
//!   Listing 1, stored sparsely so that a 10,000-request space only pays for
//!   the handful of requests with non-uniform probability.
//! * [`greedy::GreedyScheduler`] is the fast single-step sampler the paper
//!   deploys (§5.3).
//! * [`optimal::OptimalScheduler`] solves the linearized finite-horizon
//!   objective exactly (the role Gurobi plays in §5.2/§A.1) via a
//!   maximum-weight assignment.
//! * [`backend_limit`] post-processes schedules for backends with limited
//!   concurrency (§5.4).

pub mod backend_limit;
pub mod greedy;
pub mod optimal;

use std::collections::HashMap;

use crate::distribution::PredictionSummary;
use crate::types::{BlockRef, Duration, RequestId};
use crate::utility::UtilityModel;

pub use backend_limit::limit_distinct_requests;
pub use greedy::{GreedyScheduler, GreedySchedulerConfig};
pub use optimal::{BruteForceScheduler, OptimalScheduler};

/// An ordered sequence of blocks for the sender to push, most urgent first.
pub type Schedule = Vec<BlockRef>;

/// The pluggable scheduling interface of the server (§5).
///
/// A scheduler turns a stream of prediction updates into an ordered stream of
/// blocks for the sender.  [`KhameleonServer`](crate::server::KhameleonServer)
/// and [`Session`](crate::session::Session) hold a `Box<dyn Scheduler>`, so
/// the greedy sampler of §5.3, the assignment-based optimal solver of §5.2,
/// the exhaustive [`BruteForceScheduler`], and user-supplied strategies are
/// interchangeable without touching the server plumbing.
///
/// The contract mirrors the sender-coordination protocol of §5.3.2:
///
/// * [`update_prediction`](Scheduler::update_prediction) receives the decoded
///   client prediction and the sender's position within the current schedule;
///   blocks before that position are immutable, the rest may be re-planned.
/// * [`next_batch`](Scheduler::next_batch) emits up to `count` more blocks of
///   the current schedule in push order, never repeating a block the
///   (simulated) client cache still holds.
/// * [`set_slot_duration`](Scheduler::set_slot_duration) re-calibrates the
///   slot length whenever the bandwidth estimate changes (§5.4).
pub trait Scheduler: Send {
    /// Applies a fresh decoded prediction.  `sender_position` is the number
    /// of blocks of the current schedule already placed on the network.
    fn update_prediction(&mut self, summary: &PredictionSummary, sender_position: usize);

    /// Emits up to `count` blocks in push order.  An empty result means no
    /// block currently has positive expected gain (everything useful is
    /// scheduled or resident).
    fn next_batch(&mut self, count: usize) -> Schedule;

    /// Confirms that `block` (previously emitted by
    /// [`next_batch`](Scheduler::next_batch)) was actually placed on the
    /// wire.  Blocks are confirmed in emission order; emitted blocks that
    /// are never confirmed were dropped by the sender and may be re-planned
    /// on the next prediction update.  Schedulers that only need the
    /// `sender_position` argument of
    /// [`update_prediction`](Scheduler::update_prediction) (like the greedy
    /// scheduler, whose sampling state is position-based) can ignore this.
    fn note_sent(&mut self, block: BlockRef) {
        let _ = block;
    }

    /// Updates the bandwidth-derived duration of one network slot.
    fn set_slot_duration(&mut self, slot: Duration);

    /// The scheduler's belief about the client's per-request resident block
    /// counts (empty when the scheduler does not track the client cache).
    fn simulated_cache(&self) -> HashMap<RequestId, u32>;

    /// Expected utility (Eq. 2) of the not-yet-consumed portion of the
    /// current schedule, starting from the cache allocation `initial`.
    fn expected_utility(&self, initial: &HashMap<RequestId, u32>) -> f64;

    /// The scheduling horizon `C` in blocks (the client cache size).
    fn horizon(&self) -> usize;

    /// Number of prediction updates applied so far.
    fn prediction_updates(&self) -> u64;

    /// Short name used in logs and experiment reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Materialized probability model over a scheduling horizon of `horizon`
/// network slots, each lasting `slot_duration`.
///
/// `tail(i, t)` is the probability-mass term the schedulers multiply against
/// marginal utility gains: the (γ-discounted) probability that request `i`
/// is what the user wants during slots `t..horizon`.  Requests without an
/// explicit (materialized) entry all share the same tail, which is what makes
/// the greedy scheduler's meta-request optimization possible (§5.3.1).
#[derive(Debug, Clone)]
pub struct HorizonModel {
    n: usize,
    horizon: usize,
    slot_duration: Duration,
    gamma: f64,
    /// Materialized per-request tails: request -> tail vector of length
    /// `horizon + 1` (index `horizon` is 0, simplifying loops).
    explicit: HashMap<RequestId, Vec<f64>>,
    /// Tail vector shared by every non-materialized request.
    residual: Vec<f64>,
}

impl HorizonModel {
    /// Builds the model from a prediction summary.
    ///
    /// `horizon` is the number of slots in a full schedule (the client cache
    /// size in blocks), `slot_duration` the time to place one block on the
    /// network at the current bandwidth estimate, and `gamma` the future
    /// discount from Eq. 1 (`1.0` = all timesteps matter equally).
    pub fn build(
        summary: &PredictionSummary,
        horizon: usize,
        slot_duration: Duration,
        gamma: f64,
    ) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        let n = summary.num_requests();
        let materialized = summary.materialized_requests();

        // Per-slot probabilities for each materialized request and for the
        // residual tail, evaluated at the midpoint of each slot.
        let mut per_slot: Vec<Vec<f64>> = vec![Vec::with_capacity(horizon); materialized.len()];
        let mut residual_slot: Vec<f64> = Vec::with_capacity(horizon);
        for k in 0..horizon {
            let delta = Duration::from_micros(
                slot_duration.as_micros() * (k as u64) + slot_duration.as_micros() / 2,
            );
            let dist = summary.at(delta);
            for (mi, &r) in materialized.iter().enumerate() {
                per_slot[mi].push(dist.prob(r));
            }
            residual_slot.push(dist.residual_per_request());
        }

        // Suffix sums with discounting: tail[t] = sum_{k=t}^{horizon-1} gamma^k p[k].
        let suffix = |p: &[f64]| -> Vec<f64> {
            let mut tail = vec![0.0; horizon + 1];
            for t in (0..horizon).rev() {
                tail[t] = tail[t + 1] + gamma.powi(t as i32) * p[t];
            }
            tail
        };

        let mut explicit = HashMap::with_capacity(materialized.len());
        for (mi, r) in materialized.into_iter().enumerate() {
            explicit.insert(r, suffix(&per_slot[mi]));
        }
        let residual = suffix(&residual_slot);

        HorizonModel {
            n,
            horizon,
            slot_duration,
            gamma,
            explicit,
            residual,
        }
    }

    /// A model where every request is uniformly likely at every slot.
    pub fn uniform(n: usize, horizon: usize, slot_duration: Duration, gamma: f64) -> Self {
        let summary = PredictionSummary::uniform(n, crate::types::Time::ZERO);
        Self::build(&summary, horizon, slot_duration, gamma)
    }

    /// Number of requests in the space.
    pub fn num_requests(&self) -> usize {
        self.n
    }

    /// Number of slots in the horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Duration of one slot.
    pub fn slot_duration(&self) -> Duration {
        self.slot_duration
    }

    /// The discount factor.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The requests with materialized (non-residual) tails.
    pub fn materialized(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.explicit.keys().copied()
    }

    /// Number of materialized requests.
    pub fn materialized_count(&self) -> usize {
        self.explicit.len()
    }

    /// Whether `request` has a materialized tail.
    pub fn is_materialized(&self, request: RequestId) -> bool {
        self.explicit.contains_key(&request)
    }

    /// Tail mass of `request` from slot `t` (clamped to the horizon) onward.
    pub fn tail(&self, request: RequestId, t: usize) -> f64 {
        let t = t.min(self.horizon);
        match self.explicit.get(&request) {
            Some(v) => v[t],
            None => self.residual[t],
        }
    }

    /// Tail mass of a single non-materialized (residual) request.
    pub fn residual_tail(&self, t: usize) -> f64 {
        self.residual[t.min(self.horizon)]
    }

    /// Per-slot probability of `request` at slot `k` (recovered from the
    /// discounted suffix sums).
    pub fn slot_prob(&self, request: RequestId, k: usize) -> f64 {
        if k >= self.horizon {
            return 0.0;
        }
        let d = self.gamma.powi(k as i32);
        if d <= 0.0 {
            return 0.0;
        }
        (self.tail(request, k) - self.tail(request, k + 1)) / d
    }
}

/// Evaluates the expected utility of a schedule under a horizon model — the
/// objective of Eq. 2 — assuming the client cache starts from the allocation
/// `initial` (blocks already cached per request).
///
/// This is the yardstick used to compare the greedy and optimal schedulers
/// (Figure 17).
pub fn schedule_expected_utility(
    schedule: &[BlockRef],
    model: &HorizonModel,
    utility: &UtilityModel,
    initial: &HashMap<RequestId, u32>,
) -> f64 {
    let mut held: HashMap<RequestId, u32> = initial.clone();
    let mut total = 0.0;
    for (k, b) in schedule.iter().enumerate().take(model.horizon()) {
        let have = held.entry(b.request).or_insert(0);
        *have += 1;
        let blocks_now = *have;
        // The newly delivered block contributes its marginal gain for every
        // remaining slot in the horizon, weighted by the probability the user
        // asks for this request then — identical to the U^t_{i,j} coefficient
        // of Eq. 3.
        let gain = utility.table(b.request.index()).gain(blocks_now);
        total += gain * model.tail(b.request, k);
    }
    // Blocks already cached at the start contribute over the whole horizon.
    for (&r, &b) in initial {
        total += utility.table(r.index()).step(b) * model.tail(r, 0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{HorizonSlice, SparseDistribution};
    use crate::types::Time;
    use crate::utility::LinearUtility;

    fn summary_point(n: usize, r: RequestId) -> PredictionSummary {
        PredictionSummary::point(n, r, Time::ZERO)
    }

    #[test]
    fn uniform_model_tails_decrease() {
        let m = HorizonModel::uniform(10, 8, Duration::from_millis(10), 1.0);
        assert_eq!(m.horizon(), 8);
        assert_eq!(m.materialized_count(), 0);
        let t0 = m.tail(RequestId(3), 0);
        let t4 = m.tail(RequestId(3), 4);
        assert!(t0 > t4);
        assert_eq!(m.tail(RequestId(3), 8), 0.0);
        // Uniform: every request has the same tail.
        assert!((m.tail(RequestId(0), 2) - m.tail(RequestId(9), 2)).abs() < 1e-12);
        // Tail at 0 is horizon * (1/n).
        assert!((t0 - 8.0 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn point_model_concentrates_mass() {
        let m = HorizonModel::build(
            &summary_point(10, RequestId(2)),
            5,
            Duration::from_millis(20),
            1.0,
        );
        assert!(m.is_materialized(RequestId(2)));
        assert!(!m.is_materialized(RequestId(3)));
        assert!((m.tail(RequestId(2), 0) - 5.0).abs() < 1e-9);
        assert_eq!(m.tail(RequestId(3), 0), 0.0);
        assert_eq!(m.materialized_count(), 1);
    }

    #[test]
    fn gamma_discounts_future() {
        let m = HorizonModel::build(
            &summary_point(4, RequestId(0)),
            4,
            Duration::from_millis(10),
            0.5,
        );
        // tail(0) = 1 + 0.5 + 0.25 + 0.125 = 1.875
        assert!((m.tail(RequestId(0), 0) - 1.875).abs() < 1e-9);
        // slot probabilities recover the undiscounted per-slot values.
        assert!((m.slot_prob(RequestId(0), 3) - 1.0).abs() < 1e-9);
        assert_eq!(m.slot_prob(RequestId(0), 4), 0.0);
    }

    #[test]
    fn time_varying_prediction_shifts_mass() {
        // Request 0 likely soon, request 1 likely later.
        let slices = vec![
            HorizonSlice {
                delta: Duration::from_millis(10),
                dist: SparseDistribution::point(4, RequestId(0)),
            },
            HorizonSlice {
                delta: Duration::from_millis(400),
                dist: SparseDistribution::point(4, RequestId(1)),
            },
        ];
        let s = PredictionSummary::new(4, slices, Time::ZERO);
        let m = HorizonModel::build(&s, 40, Duration::from_millis(10), 1.0);
        // Early slots favor request 0; late slots favor request 1.
        assert!(m.slot_prob(RequestId(0), 0) > m.slot_prob(RequestId(1), 0));
        assert!(m.slot_prob(RequestId(1), 39) > m.slot_prob(RequestId(0), 39));
    }

    #[test]
    fn expected_utility_prefers_probable_requests() {
        let n = 4;
        let m = HorizonModel::build(
            &summary_point(n, RequestId(1)),
            4,
            Duration::from_millis(10),
            1.0,
        );
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let empty = HashMap::new();
        let good: Schedule = (0..4).map(|j| BlockRef::new(RequestId(1), j)).collect();
        let bad: Schedule = (0..4).map(|j| BlockRef::new(RequestId(0), j)).collect();
        let vg = schedule_expected_utility(&good, &m, &u, &empty);
        let vb = schedule_expected_utility(&bad, &m, &u, &empty);
        assert!(vg > vb);
        assert!(vg > 0.0);
        assert_eq!(vb, 0.0);
    }

    #[test]
    fn expected_utility_counts_initial_cache() {
        let n = 2;
        let m = HorizonModel::uniform(n, 4, Duration::from_millis(10), 1.0);
        let u = UtilityModel::homogeneous(&LinearUtility, 4);
        let mut initial = HashMap::new();
        initial.insert(RequestId(0), 2u32);
        let v_empty_schedule = schedule_expected_utility(&[], &m, &u, &initial);
        assert!(v_empty_schedule > 0.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        HorizonModel::uniform(4, 0, Duration::from_millis(1), 1.0);
    }
}
