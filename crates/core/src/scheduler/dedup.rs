//! Cross-session deduplication of [`HorizonModel`]s.
//!
//! Many concurrent sessions often run *identical* predictors over the same
//! catalog — anonymous clients browsing the same gallery all ship the same
//! prediction summaries — yet each session's scheduler would materialize its
//! own `O(b · horizon + m)` model.  The [`ModelCache`] lets those sessions
//! resolve to **one** shared `Arc<HorizonModel>` (including its
//! [`TailShapePartition`](crate::scheduler::TailShapePartition)), extending
//! the Arc-shared [`GreedyContext`](crate::scheduler::GreedyContext) pattern
//! from catalog-derived state to prediction-derived state.  Memory then
//! scales with the number of *distinct* predictions, not the number of
//! sessions.
//!
//! ## History-keyed registration
//!
//! Entries are keyed by the model's *derivation*, not by raw content.  A
//! fresh [`HorizonModel::build`] (or [`HorizonModel::uniform`]) is keyed by
//! the fingerprint of its build input; a diff-updated model
//! ([`HorizonModel::apply_update`]) is keyed by a **chain key** — the hash
//! of its base model's key plus the applied summary's fingerprint.  Both
//! `build` and `apply_update` are pure functions of those inputs, so two
//! sessions resolving the same key always hold *bit-identical* content —
//! even if a cross-thread race makes them build it twice and only one
//! registration wins.  That is what keeps dedup deterministic: a session's
//! model content is a function of its own update history alone, never of
//! which other sessions happen to be live.  (Keying by raw content instead
//! would NOT be safe: a diff-updated tail differs from a fresh build at the
//! ulp level — `coef *= c` versus re-summed suffixes — so diffed and built
//! models must never alias, and the chain key's distinct tag word guarantees
//! they cannot.)
//!
//! Diffed entries also carry the [`ModelDiff`] that produced them, so a
//! session hitting the chain key adopts the shared model *and* replays the
//! same point updates into its private sampler — no `O(n)` sampler rebuild.
//!
//! ## Copy-on-write divergence
//!
//! A scheduler whose prediction diverges from its shared model's chain
//! misses the cache and applies the diff through [`Arc::make_mut`]: the
//! first divergent re-prediction clones the model privately (the CoW split)
//! and leaves every other session on the shared instance.  The divergent
//! result registers under its own chain key, so sessions that later follow
//! the same history share *it* too.

use std::sync::{Arc, Mutex, Weak};

use crate::distribution::PredictionSummary;
use crate::scheduler::{HorizonModel, ModelDiff};
use crate::types::Duration;

/// A 128-bit derivation fingerprint plus the build parameters it was taken
/// under.  The parameters are compared explicitly (not only hashed) so a
/// fingerprint collision across different horizons can never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ModelKey {
    fingerprint: u128,
    n: usize,
    horizon: usize,
    slot_micros: u64,
    gamma_bits: u64,
}

/// Double FNV-1a over the words of the build input: deterministic across
/// processes and threads (unlike `std`'s randomized hasher), cheap, and with
/// 128 output bits collisions are not a practical concern — and the explicit
/// parameter comparison in [`ModelKey`] bounds the blast radius of one.
#[derive(Debug, Clone, Copy)]
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
    // A distinct offset basis decorrelates the second lane.
    const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
    const PRIME: u64 = 0x1000_0000_01b3;

    fn new() -> Self {
        Fnv2 {
            a: Self::OFFSET_A,
            b: Self::OFFSET_B,
        }
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(Self::PRIME);
            self.b = (self.b ^ u64::from(byte.rotate_left(3))).wrapping_mul(Self::PRIME);
        }
    }

    fn finish(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Fingerprints the content of a prediction summary together with the model
/// build parameters.  Two summaries hash equal iff their slice structure,
/// per-request explicit probabilities (bit-exact), and residual masses all
/// match — exactly the inputs [`HorizonModel::build`] consumes (the
/// client-side `generated_at` stamp is deliberately excluded).
fn hash_summary(h: &mut Fnv2, summary: &PredictionSummary) {
    h.word(summary.num_requests() as u64);
    h.word(summary.slices().len() as u64);
    for slice in summary.slices() {
        h.word(slice.delta.as_micros());
        h.word(slice.dist.num_requests() as u64);
        h.word(slice.dist.residual_mass().to_bits());
        h.word(slice.dist.explicit_entries().len() as u64);
        for &(r, p) in slice.dist.explicit_entries() {
            h.word(u64::from(r.0));
            h.word(p.to_bits());
        }
    }
}

fn fingerprint_summary(
    summary: &PredictionSummary,
    horizon: usize,
    slot_duration: Duration,
    gamma: f64,
) -> ModelKey {
    let mut h = Fnv2::new();
    h.word(1); // tag: summary-built model
    hash_summary(&mut h, summary);
    ModelKey {
        fingerprint: h.finish(),
        n: summary.num_requests(),
        horizon,
        slot_micros: slot_duration.as_micros(),
        gamma_bits: gamma.to_bits(),
    }
}

/// The chain key of applying `summary` as a diff on top of the model keyed
/// `base`: derivation history compressed to 128 bits.  Only sessions with
/// the *same* update history (same base chain, same new summary) resolve to
/// the same chain key, and [`HorizonModel::apply_update`] is a pure function
/// of (base content, summary), so equal keys imply bit-identical content.
pub(crate) fn chain_key(base: &ModelKey, summary: &PredictionSummary) -> ModelKey {
    let mut h = Fnv2::new();
    h.word(2); // tag: diff-chained model
    h.word((base.fingerprint >> 64) as u64);
    h.word(base.fingerprint as u64);
    hash_summary(&mut h, summary);
    ModelKey {
        fingerprint: h.finish(),
        n: summary.num_requests(),
        horizon: base.horizon,
        slot_micros: base.slot_micros,
        gamma_bits: base.gamma_bits,
    }
}

/// Fingerprints the uniform-prior model every scheduler starts from, so N
/// fresh sessions over one catalog share a single pristine model until their
/// first predictions arrive.
fn fingerprint_uniform(n: usize, horizon: usize, slot_duration: Duration, gamma: f64) -> ModelKey {
    let mut h = Fnv2::new();
    h.word(0); // tag: uniform-prior model
    h.word(n as u64);
    ModelKey {
        fingerprint: h.finish(),
        n,
        horizon,
        slot_micros: slot_duration.as_micros(),
        gamma_bits: gamma.to_bits(),
    }
}

/// Shared registry of canonical [`HorizonModel`]s, keyed by content
/// fingerprint.  Entries are held weakly: a model lives exactly as long as
/// some scheduler holds it, so a departing session's models are reclaimed
/// without any explicit eviction protocol.
///
/// One instance is shared by every session of a [`SessionManager`]
/// (`crate::session::SessionManager`) and, under sharding, by every shard of
/// a [`ShardedSessionManager`](crate::shard::ShardedSessionManager) — the
/// interior mutex makes cross-thread resolution safe, and the
/// canonical-build-only rule (module docs) makes it *deterministic*.
#[derive(Debug, Default)]
pub struct ModelCache {
    entries: Mutex<Vec<Entry>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// One registered model.  `diff` is present for chain-keyed (diff-derived)
/// entries so a hitting session can replay the same point updates into its
/// sampler; it lives exactly as long as the entry (pruned with the weak).
#[derive(Debug)]
struct Entry {
    key: ModelKey,
    model: Weak<HorizonModel>,
    diff: Option<Arc<ModelDiff>>,
}

impl ModelCache {
    /// Creates an empty cache behind an `Arc`, ready to share.
    pub fn new() -> Arc<Self> {
        Arc::new(ModelCache::default())
    }

    /// Resolves the canonical model for `summary` under the given build
    /// parameters: returns the live shared instance if one exists, otherwise
    /// builds, registers, and returns it.
    pub fn resolve_build(
        &self,
        summary: &PredictionSummary,
        horizon: usize,
        slot_duration: Duration,
        gamma: f64,
    ) -> Arc<HorizonModel> {
        self.resolve_build_keyed(summary, horizon, slot_duration, gamma)
            .0
    }

    /// [`resolve_build`](Self::resolve_build), also returning the key so the
    /// scheduler can chain later diff updates off it.
    pub(crate) fn resolve_build_keyed(
        &self,
        summary: &PredictionSummary,
        horizon: usize,
        slot_duration: Duration,
        gamma: f64,
    ) -> (Arc<HorizonModel>, ModelKey) {
        let key = fingerprint_summary(summary, horizon, slot_duration, gamma);
        let model = self.resolve_with(key, || {
            HorizonModel::build(summary, horizon, slot_duration, gamma)
        });
        (model, key)
    }

    /// Resolves the canonical uniform-prior model for the given parameters.
    pub fn resolve_uniform(
        &self,
        n: usize,
        horizon: usize,
        slot_duration: Duration,
        gamma: f64,
    ) -> Arc<HorizonModel> {
        self.resolve_uniform_keyed(n, horizon, slot_duration, gamma)
            .0
    }

    /// [`resolve_uniform`](Self::resolve_uniform), also returning the key.
    pub(crate) fn resolve_uniform_keyed(
        &self,
        n: usize,
        horizon: usize,
        slot_duration: Duration,
        gamma: f64,
    ) -> (Arc<HorizonModel>, ModelKey) {
        let key = fingerprint_uniform(n, horizon, slot_duration, gamma);
        let model = self.resolve_with(key, || {
            HorizonModel::uniform(n, horizon, slot_duration, gamma)
        });
        (model, key)
    }

    /// Looks up a diff-derived model by chain key.  On a hit, returns the
    /// shared model together with the [`ModelDiff`] that produced it (for
    /// the hitting session's sampler replay).
    pub(crate) fn lookup_diffed(
        &self,
        key: &ModelKey,
    ) -> Option<(Arc<HorizonModel>, Arc<ModelDiff>)> {
        use std::sync::atomic::Ordering;
        let mut entries = self.lock_entries();
        entries.retain(|e| e.model.strong_count() > 0);
        for entry in entries.iter() {
            if entry.key == *key {
                if let (Some(model), Some(diff)) = (entry.model.upgrade(), entry.diff.clone()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some((model, diff));
                }
            }
        }
        None
    }

    /// Registers a freshly diff-derived model under its chain key, returning
    /// the winning `(model, diff)` pair: if a concurrent session registered
    /// the same key first, its (bit-identical) instance is adopted instead.
    pub(crate) fn register_diffed(
        &self,
        key: ModelKey,
        model: Arc<HorizonModel>,
        diff: Arc<ModelDiff>,
    ) -> (Arc<HorizonModel>, Arc<ModelDiff>) {
        use std::sync::atomic::Ordering;
        let mut entries = self.lock_entries();
        for entry in entries.iter() {
            if entry.key == key {
                if let (Some(theirs), Some(their_diff)) =
                    (entry.model.upgrade(), entry.diff.clone())
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (theirs, their_diff);
                }
            }
        }
        entries.push(Entry {
            key,
            model: Arc::downgrade(&model),
            diff: Some(diff.clone()),
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        (model, diff)
    }

    fn lock_entries(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn resolve_with(
        &self,
        key: ModelKey,
        build: impl FnOnce() -> HorizonModel,
    ) -> Arc<HorizonModel> {
        use std::sync::atomic::Ordering;
        {
            let mut entries = self.lock_entries();
            entries.retain(|e| e.model.strong_count() > 0);
            for entry in entries.iter() {
                if entry.key == key {
                    if let Some(live) = entry.model.upgrade() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return live;
                    }
                }
            }
        }
        // Build outside the lock: canonical builds are pure functions of the
        // key, so two threads racing on the same key build identical models
        // and it does not matter whose registration wins.
        let built = Arc::new(build());
        let mut entries = self.lock_entries();
        for entry in entries.iter() {
            if entry.key == key {
                if let Some(live) = entry.model.upgrade() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return live;
                }
            }
        }
        entries.push(Entry {
            key,
            model: Arc::downgrade(&built),
            diff: None,
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        built
    }

    /// Number of distinct models currently kept alive by some scheduler.
    /// Prunes dead entries as a side effect.
    pub fn live_models(&self) -> usize {
        let mut entries = self.lock_entries();
        entries.retain(|e| e.model.strong_count() > 0);
        entries.len()
    }

    /// Resolutions answered from a live shared instance.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resolutions that had to build (and register) a fresh model.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{HorizonSlice, SparseDistribution};
    use crate::types::{RequestId, Time};

    fn summary(entries: &[(u32, f64)]) -> PredictionSummary {
        let dist = SparseDistribution::from_entries(
            64,
            entries
                .iter()
                .map(|&(r, p)| (RequestId(r), p))
                .collect::<Vec<_>>(),
            0.1,
        );
        PredictionSummary::new(
            64,
            vec![HorizonSlice {
                delta: Duration::ZERO,
                dist,
            }],
            Time::ZERO,
        )
    }

    #[test]
    fn identical_summaries_share_one_model() {
        let cache = ModelCache::new();
        let a = cache.resolve_build(&summary(&[(3, 0.5)]), 32, Duration::from_millis(1), 0.8);
        let b = cache.resolve_build(&summary(&[(3, 0.5)]), 32, Duration::from_millis(1), 0.8);
        assert!(Arc::ptr_eq(&a, &b), "identical inputs must dedup");
        assert_eq!(cache.live_models(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_params_do_not_alias() {
        let cache = ModelCache::new();
        let s = summary(&[(3, 0.5)]);
        let a = cache.resolve_build(&s, 32, Duration::from_millis(1), 0.8);
        let b = cache.resolve_build(&s, 64, Duration::from_millis(1), 0.8);
        let c = cache.resolve_build(&s, 32, Duration::from_millis(2), 0.8);
        let d = cache.resolve_build(&s, 32, Duration::from_millis(1), 0.9);
        let e = cache.resolve_build(&summary(&[(3, 0.25)]), 32, Duration::from_millis(1), 0.8);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert!(!Arc::ptr_eq(&a, &e));
        assert_eq!(cache.live_models(), 5);
    }

    #[test]
    fn dropped_models_are_reclaimed() {
        let cache = ModelCache::new();
        let a = cache.resolve_build(&summary(&[(1, 0.9)]), 16, Duration::from_millis(1), 1.0);
        assert_eq!(cache.live_models(), 1);
        drop(a);
        assert_eq!(cache.live_models(), 0);
        // A fresh resolve after reclamation is a miss, not a hit on a corpse.
        let _b = cache.resolve_build(&summary(&[(1, 0.9)]), 16, Duration::from_millis(1), 1.0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn chained_updates_share_and_split_on_divergence() {
        use crate::block::ResponseCatalog;
        use crate::scheduler::{GreedyScheduler, GreedySchedulerConfig};
        use crate::utility::{LinearUtility, UtilityModel};

        let catalog = Arc::new(ResponseCatalog::uniform(64, 2, 100));
        let utility = UtilityModel::homogeneous(&LinearUtility, 2);
        let cache = ModelCache::new();
        let cfg = GreedySchedulerConfig {
            cache_blocks: 32,
            ..Default::default()
        };
        let mut a = GreedyScheduler::new(cfg.clone(), utility.clone(), catalog.clone());
        let mut b = GreedyScheduler::new(cfg, utility, catalog);
        a.attach_model_cache(cache.clone());
        b.attach_model_cache(cache.clone());
        assert!(
            Arc::ptr_eq(a.model_arc(), b.model_arc()),
            "pristine sessions share the uniform prior"
        );

        // Identical update histories stay on one shared instance, whether
        // each step resolves as a rebuild or as a chain-keyed diff.
        let s1 = summary(&[(3, 0.5)]);
        a.update_prediction(&s1, 0);
        b.update_prediction(&s1, 0);
        assert!(
            Arc::ptr_eq(a.model_arc(), b.model_arc()),
            "identical histories must share after an update"
        );
        let s2 = summary(&[(3, 0.4), (7, 0.2)]);
        a.update_prediction(&s2, 0);
        b.update_prediction(&s2, 0);
        assert!(
            Arc::ptr_eq(a.model_arc(), b.model_arc()),
            "identical histories must share across chained updates"
        );
        assert!(
            b.diff_applied_updates() >= 1,
            "same-structure re-predictions should take the diff path"
        );

        // A divergent prediction is the copy-on-write split: `b` walks away
        // with its own instance, `a` keeps the shared one.
        let shared = a.model_arc().clone();
        b.update_prediction(&summary(&[(9, 0.7)]), 0);
        assert!(
            !Arc::ptr_eq(a.model_arc(), b.model_arc()),
            "divergent prediction must split the shared model"
        );
        assert!(
            Arc::ptr_eq(a.model_arc(), &shared),
            "the non-divergent session stays on the shared instance"
        );
        // Both chain tips are registered: a later session replaying either
        // history would share, so exactly two live models remain (the
        // uniform prior died when both sessions moved off it).
        assert_eq!(cache.live_models(), 2);

        // Convergence: replaying b's full history shares b's instance.
        let mut c = GreedyScheduler::new(
            GreedySchedulerConfig {
                cache_blocks: 32,
                ..Default::default()
            },
            UtilityModel::homogeneous(&LinearUtility, 2),
            Arc::new(ResponseCatalog::uniform(64, 2, 100)),
        );
        c.attach_model_cache(cache.clone());
        c.update_prediction(&s1, 0);
        c.update_prediction(&s2, 0);
        c.update_prediction(&summary(&[(9, 0.7)]), 0);
        assert!(
            Arc::ptr_eq(b.model_arc(), c.model_arc()),
            "replaying the same history must converge onto the shared instance"
        );
    }

    #[test]
    fn uniform_models_dedup_per_parameter_set() {
        let cache = ModelCache::new();
        let a = cache.resolve_uniform(100, 32, Duration::from_millis(1), 0.8);
        let b = cache.resolve_uniform(100, 32, Duration::from_millis(1), 0.8);
        let c = cache.resolve_uniform(101, 32, Duration::from_millis(1), 0.8);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
