//! Integration tests of the `audit` cargo feature: a clean mixed-churn
//! workload must produce a zero-violation report with every check exercised,
//! and a deliberately misaligned rollback must be *caught and counted* by
//! the promoted slot-alignment checks instead of aborting the process.
#![cfg(feature = "audit")]

use std::sync::Arc;

use khameleon_core::audit::{AuditCheck, AuditConfig};
use khameleon_core::block::ResponseCatalog;
use khameleon_core::distribution::{HorizonSlice, PredictionSummary, SparseDistribution};
use khameleon_core::scheduler::{GreedyScheduler, GreedySchedulerConfig};
use khameleon_core::types::{RequestId, Time};
use khameleon_core::utility::{LinearUtility, UtilityModel};

fn sparse_pred(n: usize, entries: Vec<(RequestId, f64)>, residual: f64) -> PredictionSummary {
    let dist = SparseDistribution::from_entries(n, entries, residual);
    let slices = PredictionSummary::default_deltas()
        .into_iter()
        .map(|delta| HorizonSlice {
            delta,
            dist: dist.clone(),
        })
        .collect();
    PredictionSummary::new(n, slices, Time::ZERO)
}

fn scheduler(n: usize, cache: usize) -> GreedyScheduler {
    GreedyScheduler::new(
        GreedySchedulerConfig {
            cache_blocks: cache,
            ..Default::default()
        },
        UtilityModel::homogeneous(&LinearUtility, 6),
        Arc::new(ResponseCatalog::uniform(n, 6, 1000)),
    )
}

/// A churning sequence of predictions over a fixed materialized core plus a
/// rotating fringe — structurally small diffs, so most updates take the
/// diff path (exercising the diff-signature shadow rebuild).
fn churn_pred(n: usize, round: usize) -> PredictionSummary {
    let core = [
        (RequestId(3), 0.25 + 0.01 * (round % 7) as f64),
        (RequestId(11), 0.20),
        (RequestId(19), 0.15 - 0.01 * (round % 5) as f64),
    ];
    let fringe = (
        RequestId::from(30 + (round * 3) % 20),
        0.10 + 0.02 * (round % 3) as f64,
    );
    let mut entries: Vec<(RequestId, f64)> = core.to_vec();
    entries.push(fringe);
    let explicit: f64 = entries.iter().map(|e| e.1).sum();
    sparse_pred(n, entries, 1.0 - explicit)
}

#[test]
fn clean_mixed_churn_run_audits_to_zero_violations() {
    let n = 80;
    let cache = 48;
    let mut s = scheduler(n, cache);
    s.audit_attach(AuditConfig::every_event());
    for round in 0..40 {
        // Alternate forward progress with partial rollbacks so the audited
        // state covers scheduling, eviction, schedule wrap, and re-planning.
        let sender_position = if round % 4 == 3 {
            s.position().saturating_sub(5)
        } else {
            s.position()
        };
        s.update_prediction(&churn_pred(n, round), sender_position);
        s.next_batch(12);
    }
    assert!(
        s.diff_applied_updates() > 0,
        "churn workload must exercise the diff path"
    );
    let report = s.audit_report().expect("auditor attached");
    for check in AuditCheck::ALL {
        assert!(
            report.runs(check) > 0,
            "check {} never ran over the mixed-churn workload",
            check.name()
        );
        assert_eq!(
            report.violations_of(check),
            0,
            "check {} found violations:\n{}",
            check.name(),
            report.to_json()
        );
    }
    assert_eq!(report.total_violations(), 0);
    assert!(report.events > 0);
    // The report round-trips to JSON with per-check counters present.
    let json = report.to_json();
    assert!(json.contains("\"total_violations\":0"), "{json}");
    assert!(json.contains("\"check\":\"diff_signature\""), "{json}");
}

#[test]
fn misaligned_rollback_is_counted_not_aborted() {
    let n = 40;
    let mut s = scheduler(n, 32);
    s.audit_attach(AuditConfig::every_event());
    s.update_prediction(&churn_pred(n, 0), 0);
    s.next_batch(10);
    let before = s.audit_report().expect("auditor attached");
    assert_eq!(before.total_violations(), 0, "clean before injection");
    // Deliberately desynchronize the eviction log from the slot index, then
    // force a rollback across the damage.  Without an attached auditor this
    // state debug-aborts; with one it must be reported and counted.
    s.audit_inject_eviction_log_truncation();
    let pos = s.position().saturating_sub(4);
    s.update_prediction(&churn_pred(n, 1), pos);
    let report = s.audit_report().expect("auditor attached");
    assert!(
        report.violations_of(AuditCheck::SlotAlignment) > 0,
        "misaligned rollback must be caught by the slot-alignment check:\n{}",
        report.to_json()
    );
    let json = report.to_json();
    assert!(json.contains("\"check\":\"slot_alignment\""), "{json}");
    assert!(
        json.contains("eviction log"),
        "recorded violation should localize the fault: {json}"
    );
    // The scheduler keeps operating after reporting (audit observes, never
    // unwinds).
    s.next_batch(4);
}
