//! Coverage for the session/shard public surface flagged by the
//! `untested-pub-fn` dataflow rule (analysis v2): the prediction delta and
//! resync paths, the builder/budget knobs, stats absorption and merging,
//! and the sharded-manager configuration surface.

use std::sync::Arc;

use khameleon_core::block::ResponseCatalog;
use khameleon_core::delta::{PredictionDelta, SliceDelta};
use khameleon_core::distribution::{HorizonSlice, PredictionSummary, SparseDistribution};
use khameleon_core::protocol::{ClientMessage, ServerEvent, SessionId};
use khameleon_core::scheduler::{GreedyContext, GreedySchedulerConfig, ModelCache};
use khameleon_core::server::{CatalogBackend, ServerConfig};
use khameleon_core::session::{MessageOutcome, Session, SessionBuilder, SessionManager};
use khameleon_core::shard::{RebalancePolicy, ShardSnapshot, ShardStats, ShardedSessionManager};
use khameleon_core::types::{Bandwidth, Duration, RequestId, Time};
use khameleon_core::utility::{LinearUtility, UtilityModel};

fn catalog(n: usize, blocks: u32) -> Arc<ResponseCatalog> {
    Arc::new(ResponseCatalog::uniform(n, blocks, 10_000))
}

fn utility(blocks: u32) -> UtilityModel {
    UtilityModel::homogeneous(&LinearUtility, blocks)
}

fn summary(n: usize, hot: &[(u32, f64)], residual: f64) -> PredictionSummary {
    let mut entries: Vec<(RequestId, f64)> = hot.iter().map(|&(r, p)| (RequestId(r), p)).collect();
    entries.sort_by_key(|&(r, _)| r);
    let slices = (1..=4)
        .map(|i| HorizonSlice {
            delta: Duration::from_millis(50 * i),
            dist: SparseDistribution::from_normalized(n, entries.clone(), residual),
        })
        .collect();
    PredictionSummary::new(n, slices, Time::ZERO)
}

fn builder(n: usize, blocks: u32) -> SessionBuilder {
    Session::builder(utility(blocks), catalog(n, blocks)).config(ServerConfig {
        scheduler: GreedySchedulerConfig {
            cache_blocks: (n * blocks as usize).max(64),
            ..Default::default()
        },
        ..Default::default()
    })
}

/// A delta whose every slice is untouched: generation bookkeeping only.
fn empty_delta(base: u64, next: u64, slices: usize) -> PredictionDelta {
    PredictionDelta {
        base_generation: base,
        generation: next,
        generated_at: Time::ZERO,
        slices: vec![SliceDelta::default(); slices],
    }
}

#[test]
fn predictor_full_delta_and_resync_paths() {
    let n = 40;
    let mut sess = builder(n, 4).build();
    let s = summary(n, &[(3, 0.6), (9, 0.3)], 0.05);

    sess.on_predictor_full(1, &s);
    assert_eq!(sess.shadow_generation(), Some(1));
    assert!(
        sess.sampler_entries() > 0,
        "an installed prediction must populate the sampler"
    );

    // A chained delta advances the shadow generation in place.
    let outcome = sess.on_predictor_delta(&empty_delta(1, 2, s.slices().len()));
    assert!(matches!(outcome, MessageOutcome::Handled));
    assert_eq!(sess.shadow_generation(), Some(2));
    assert_eq!(sess.resync_requests(), 0);

    // A delta off an unknown base must be refused and counted.
    let outcome = sess.on_predictor_delta(&empty_delta(99, 100, s.slices().len()));
    assert!(matches!(outcome, MessageOutcome::NeedsResync));
    assert_eq!(sess.resync_requests(), 1);
    assert_eq!(
        sess.shadow_generation(),
        Some(2),
        "a refused delta must not move the shadow"
    );

    // Slot recalibration clears exhaustion and the session keeps serving.
    sess.set_slot_duration(Duration::from_millis(7));
    assert!(sess.next_block_ref(None).is_some());
    assert!(!sess.is_closed());
    sess.on_message(&ClientMessage::Close, Time::ZERO);
    assert!(sess.is_closed());
}

#[test]
fn session_builder_knobs_feed_the_built_session() {
    let n = 30;
    let cat = catalog(n, 4);
    let util = utility(4);
    let ctx = Arc::new(GreedyContext::new(&util, &cat));
    let cache = ModelCache::new();
    let sess = Session::builder(util, cat)
        .greedy_context(ctx)
        .model_cache(cache.clone())
        .bandwidth_cap(Bandwidth::from_mbps(4.0))
        .initial_bandwidth(Bandwidth::from_mbps(2.0))
        .build();
    // The cap binds the estimate from below the seed.
    assert!(sess.bandwidth_estimate().0 <= Bandwidth::from_mbps(4.0).0);
    assert!(sess.bandwidth_estimate().0 > 0.0);
}

#[test]
fn manager_budget_routing_and_identity_surface() {
    let n = 30;
    let cat = catalog(n, 4);
    let mut mgr = SessionManager::round_robin(Box::new(CatalogBackend::new(cat)))
        .with_bandwidth_cap(Bandwidth::from_mbps(16.0));
    assert_eq!(mgr.backend_name(), "catalog");

    // Explicit-id admission is what the transport resume path uses.
    let id = mgr.add_session_with_id(SessionId(42), builder(n, 4));
    assert_eq!(id, SessionId(42));
    assert_eq!(mgr.session_ids(), vec![SessionId(42)]);

    // The shared model cache can be swapped in after construction.
    let cache = ModelCache::new();
    mgr.set_model_cache(cache.clone());
    assert!(Arc::ptr_eq(mgr.model_cache(), &cache));

    // External-budget mode with an explicit shared budget (the sharded
    // coordinator's protocol).
    mgr.set_external_budget(true);
    mgr.set_shared_budget(Bandwidth::from_mbps(8.0), None);

    let s = summary(n, &[(5, 0.7)], 0.1);
    mgr.on_message(
        SessionId(42),
        &ClientMessage::PredictorFull {
            generation: 1,
            summary: s,
        },
        Time::ZERO,
    );
    // Eligibility-restricted arbitration: only the named session may serve.
    match mgr.next_event_among(Time::ZERO, &[SessionId(42)]) {
        ServerEvent::Block { session, .. } => assert_eq!(session, SessionId(42)),
        other => panic!("expected a block, got {other:?}"),
    }
    assert!(matches!(
        mgr.next_event_among(Time::ZERO, &[]),
        ServerEvent::Idle
    ));

    // Mutable access reaches the live session.
    let sess = mgr.session_mut(SessionId(42)).expect("live session");
    sess.on_rate_report(Bandwidth::from_mbps(1.0));
    assert!(mgr.session(SessionId(42)).expect("live").blocks_sent() >= 1);
}

#[test]
fn shard_snapshot_absorb_and_stats_merge_cover_every_counter() {
    let mut a = ShardSnapshot {
        sessions: 1,
        blocks_sent: 10,
        bytes_sent: 1_000,
        prediction_updates: 3,
        diff_applied_updates: 2,
        rejected_gap_slots: 1,
        sampler_entries: 5,
        resync_requests: 1,
        delta_updates: 2,
        shared_context_count: 1,
        backpressure_skips: 4,
        audit_violations: 0,
        parked_sessions: 2,
        resumed_sessions: 1,
        replayed_events: 6,
        shed_blocks: 1,
        refused_sessions: 1,
    };
    let b = a.clone();
    a.absorb(&b);
    assert_eq!(a.sessions, 2);
    assert_eq!(a.blocks_sent, 20);
    assert_eq!(a.bytes_sent, 2_000);
    assert_eq!(a.prediction_updates, 6);
    assert_eq!(a.diff_applied_updates, 4);
    assert_eq!(a.rejected_gap_slots, 2);
    assert_eq!(a.sampler_entries, 10);
    assert_eq!(a.resync_requests, 2);
    assert_eq!(a.delta_updates, 4);
    assert_eq!(a.shared_context_count, 2);
    assert_eq!(a.backpressure_skips, 8);
    assert_eq!(a.parked_sessions, 4);
    assert_eq!(a.resumed_sessions, 2);
    assert_eq!(a.replayed_events, 12);
    assert_eq!(a.shed_blocks, 2);
    assert_eq!(a.refused_sessions, 2);

    let merged = ShardStats::merge(vec![b.clone(), b.clone(), ShardSnapshot::default()], 3);
    assert_eq!(merged.shards, 3);
    assert_eq!(merged.live_models, 3);
    assert_eq!(merged.totals.blocks_sent, 20);
    assert_eq!(merged.per_shard.len(), 3);
    assert_eq!(merged.per_shard[2], ShardSnapshot::default());
}

#[test]
fn sharded_manager_builder_knobs_apply_before_serving() {
    let n = 30;
    let cat = catalog(n, 4);
    let factory_cat = cat.clone();
    let mut mgr = ShardedSessionManager::spawn(2, move |_shard| {
        SessionManager::round_robin(Box::new(CatalogBackend::new(factory_cat.clone())))
    })
    .with_bandwidth_cap(Bandwidth::from_mbps(12.0))
    .with_rebalance(RebalancePolicy::Demand { window: 16 });

    let ids: Vec<SessionId> = (0..2).map(|_| mgr.add_session(builder(n, 4))).collect();
    let s = summary(n, &[(5, 0.7)], 0.1);
    for &id in &ids {
        mgr.on_message(
            id,
            &ClientMessage::PredictorFull {
                generation: 1,
                summary: s.clone(),
            },
            Time::ZERO,
        );
    }
    let events = mgr.pump_until_idle(Time::ZERO, 8);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ServerEvent::Block { .. })),
        "capped sharded manager still serves"
    );

    // The coordinator's shared dedup cache is observable and in use: two
    // identical predictors collapse to one live model.
    assert_eq!(mgr.model_cache().live_models(), mgr.live_models());
    assert_eq!(mgr.live_models(), 1);

    let stats = mgr.stats();
    assert_eq!(stats.shards, 2);
    assert!(stats.totals.blocks_sent > 0);
}
