//! Writing a custom predictor (the §3.4 "developer Jude" walkthrough).
//!
//! Khameleon decomposes predictors into a client component (events → compact
//! state) and a server component (state → request distribution).  This
//! example implements a momentum predictor — "the user keeps scrolling in the
//! same direction" — registers it in place of the default, and shows the
//! scheduler reacting to its forecasts.
//!
//! Run with: `cargo run --example custom_predictor`

use std::sync::Arc;

use khameleon::apps::layout::GridLayout;
use khameleon::core::block::ResponseCatalog;
use khameleon::core::distribution::{HorizonSlice, PredictionSummary, SparseDistribution};
use khameleon::core::predictor::{
    ClientPredictor, InteractionEvent, PredictorState, RequestLayout, ServerPredictor,
};
use khameleon::core::server::{CatalogBackend, ServerBuilder};
use khameleon::core::types::{Duration, RequestId, Time};
use khameleon::core::utility::{PiecewiseUtility, UtilityModel};

/// Client component: remembers the last two distinct requests to estimate a
/// direction of travel across the grid.
struct MomentumClient {
    history: Vec<RequestId>,
}

impl ClientPredictor for MomentumClient {
    fn observe(&mut self, event: &InteractionEvent) {
        if let InteractionEvent::Request { request, .. } = *event {
            if self.history.last() != Some(&request) {
                self.history.push(request);
                if self.history.len() > 2 {
                    self.history.remove(0);
                }
            }
        }
    }

    fn state(&mut self, _now: Time) -> PredictorState {
        // Ship the raw history; the server-side component interprets it.
        PredictorState::TopK(self.history.iter().map(|&r| (r, 1.0)).collect())
    }

    fn name(&self) -> &str {
        "momentum-client"
    }
}

/// Server component: extrapolates the last movement vector over the grid and
/// spreads probability over the next few requests along that direction.
struct MomentumServer {
    layout: Arc<GridLayout>,
}

impl ServerPredictor for MomentumServer {
    fn decode(&mut self, state: &PredictorState, now: Time) -> PredictionSummary {
        let n = self.layout.num_requests();
        let PredictorState::TopK(history) = state else {
            return PredictionSummary::uniform(n, now);
        };
        match history.as_slice() {
            [] => PredictionSummary::uniform(n, now),
            [(only, _)] => PredictionSummary::point(n, *only, now),
            [(prev, _), (cur, _), ..] => {
                let (pr, pc) = self.layout.cell(*prev);
                let (cr, cc) = self.layout.cell(*cur);
                let (dr, dc) = (cr as i64 - pr as i64, cc as i64 - pc as i64);
                // Weight the next few cells along the movement direction,
                // decaying with distance.
                let mut entries = vec![(*cur, 0.4)];
                for step in 1..=3i64 {
                    let r = cr as i64 + dr * step;
                    let c = cc as i64 + dc * step;
                    if r >= 0
                        && c >= 0
                        && (r as usize) < self.layout.rows()
                        && (c as usize) < self.layout.cols()
                    {
                        let id = RequestId::from(r as usize * self.layout.cols() + c as usize);
                        entries.push((id, 0.4 / step as f64));
                    }
                }
                let dist = SparseDistribution::from_entries(n, entries, 0.1);
                let slices = PredictionSummary::default_deltas()
                    .into_iter()
                    .map(|delta| HorizonSlice {
                        delta,
                        dist: dist.clone(),
                    })
                    .collect();
                PredictionSummary::new(n, slices, now)
            }
        }
    }

    fn name(&self) -> &str {
        "momentum-server"
    }
}

fn main() {
    let layout = Arc::new(GridLayout::new(10, 10, 10.0, 10.0));
    let catalog = Arc::new(ResponseCatalog::uniform(layout.num_requests(), 8, 50_000));
    let utility = UtilityModel::homogeneous(&PiecewiseUtility::image_ssim(), 8);

    let mut client_pred = MomentumClient { history: vec![] };
    let mut server = ServerBuilder::new(utility, catalog.clone())
        .predictor(Box::new(MomentumServer {
            layout: layout.clone(),
        }))
        .backend(Box::new(CatalogBackend::new(catalog)))
        .build();

    // The user moves right along row 4: requests 42 then 43.
    for (i, req) in [42u32, 43].into_iter().enumerate() {
        client_pred.observe(&InteractionEvent::Request {
            request: RequestId(req),
            at: Time::from_millis(i as u64 * 100),
        });
    }
    let state = client_pred.state(Time::from_millis(200));
    server.on_predictor_state(&state, Time::from_millis(200));

    // The scheduler should now hedge along the direction of travel: 43 (the
    // current widget) plus 44, 45, 46 ahead of it.
    println!("first 12 blocks pushed after the momentum prediction:");
    for _ in 0..12 {
        if let Some(block) = server.next_block(Time::from_millis(200)) {
            let (row, col) = layout.cell(block.meta.block.request);
            println!("  {} -> grid cell ({row},{col})", block.meta.block);
        }
    }
    let _ = Duration::from_millis(0); // keep the prelude import exercised
}
