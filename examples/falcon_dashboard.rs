//! Falcon dashboard walkthrough: run the ported Falcon linked-visualization
//! application (six charts over a synthetic flights dataset) through
//! Khameleon, comparing the Kalman predictor against Falcon's native
//! on-hover prefetching on both a PostgreSQL-like backend and a scalable
//! backend — a miniature version of Figure 14.
//!
//! Run with: `cargo run --release --example falcon_dashboard`

use khameleon::apps::falcon_app::{
    FalconApp, FalconAppConfig, FalconBackendKind, FalconDataset, FalconPredictorKind,
};
use khameleon::apps::layout::ChartRowLayout;
use khameleon::apps::traces::{generate_falcon_trace, FalconTraceConfig};
use khameleon::backend::columnar::RangeFilter;
use khameleon::core::types::{Duration, RequestId};
use khameleon::sim::config::ExperimentConfig;
use khameleon::sim::harness::run_falcon;
use khameleon::sim::result::RunResult;

fn main() {
    let app = FalconApp::new(FalconAppConfig {
        bins: 25,
        blocks_per_response: 2,
        table_rows: 50_000,
        seed: 7,
    });

    // Show that the backend substrate really answers Falcon's data-cube
    // slice queries: activate chart 1 (arrival delay) with a selection on
    // distance and print one resulting histogram.
    let table = app.table();
    let selections = vec![("distance".to_string(), RangeFilter::new(0.0, 1_000.0))];
    let group = app.query_group(RequestId(1), &selections);
    let slice = group[0].execute(&table);
    println!(
        "chart 1 activation issues {} slice queries; first slice covers {} flights",
        group.len(),
        slice.total()
    );
    println!(
        "brushing the first 5 bins yields target histogram {:?}\n",
        &slice.target_histogram(0, 5)[..8.min(slice.target_bins)]
    );

    // A synthetic analysis session over the six charts.
    let trace = generate_falcon_trace(
        &ChartRowLayout::falcon(),
        &FalconTraceConfig {
            duration: Duration::from_secs(90),
            dwell_range_ms: (150.0, 15_000.0),
            seed: 3,
            ..Default::default()
        },
    );
    let cfg = ExperimentConfig::paper_default().with_request_latency(Duration::from_millis(50));

    println!("{}", RunResult::csv_header());
    for backend in [FalconBackendKind::PostgresLike, FalconBackendKind::Scalable] {
        for predictor in [FalconPredictorKind::OnHover, FalconPredictorKind::Kalman] {
            let r = run_falcon(&app, predictor, backend, FalconDataset::Small, &trace, &cfg);
            println!("{}", r.to_csv_row());
        }
    }
}
