//! Image-exploration walkthrough: replay a synthetic mouse trace over the
//! thumbnail-grid application and compare Khameleon against the classic
//! prefetching baselines under a constrained network.
//!
//! Run with: `cargo run --release --example image_exploration`

use khameleon::prelude::*;
use khameleon::sim::result::RunResult;

fn main() {
    // A reduced gallery (900 thumbnails) so the example runs in seconds; the
    // benchmark binaries use the paper-scale 10,000-image gallery.
    let app = ImageExplorationApp::reduced(30, 42);
    let trace = generate_image_trace(
        &app.layout(),
        &ImageTraceConfig {
            duration: Duration::from_secs(20),
            seed: 42,
            ..Default::default()
        },
    );
    println!(
        "trace: {} requests over {:.0}s (mean think time {:.0} ms)",
        trace.num_requests(),
        trace.duration().as_secs_f64(),
        trace.mean_think_time().as_millis_f64()
    );

    // The paper's default condition: 5.625 MB/s, 50 MB cache, 100 ms request
    // latency.
    let cfg = ExperimentConfig::paper_default();
    println!("condition: {}\n", cfg.label());

    println!("{}", RunResult::csv_header());
    for result in run_image_comparison(&app, &trace, &cfg) {
        println!("{}", result.to_csv_row());
    }

    // Khameleon with the oracle predictor is the upper bound on prediction
    // quality (Figure 12).
    let oracle = run_image_system(
        &app,
        SystemKind::Khameleon(PredictorKind::Oracle),
        &trace,
        &cfg,
    );
    println!("{}", oracle.to_csv_row());
}
