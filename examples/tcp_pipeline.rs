//! `live_pipeline` over real sockets: a [`TransportServer`] multiplexes two
//! remote client sessions over one shared backend and one loopback TCP
//! listener, while each client speaks the framed wire protocol through a
//! blocking [`TransportClient`] — length-prefixed binary frames, O(Δ)
//! prediction deltas, credit-free streaming, and clean close, exactly what a
//! WAN deployment would run (see `docs/TRANSPORT.md` for the wire format).
//!
//! Run with: `cargo run --release --example tcp_pipeline`

use std::thread;
use std::time::Duration as StdDuration;

use khameleon::backend::blockstore::BlockStore;
use khameleon::backend::image::ImageCorpus;
use khameleon::core::client::CacheManager;
use khameleon::core::distribution::{HorizonSlice, PredictionSummary, SparseDistribution};
use khameleon::core::protocol::ServerEvent;
use khameleon::core::session::{Session, SessionManager, WeightedFair};
use khameleon::core::types::{Duration, RequestId, Time};
use khameleon::transport::{TransportClient, TransportConfig, TransportServer};

/// A prediction concentrated on `hot` with a little hedging mass.
fn prediction(n: usize, hot: u32) -> PredictionSummary {
    let entries = vec![(RequestId(hot), 0.75), (RequestId(hot + 1), 0.15)];
    let slices = (1..=3)
        .map(|i| HorizonSlice {
            delta: Duration::from_millis(50 * i),
            dist: SparseDistribution::from_normalized(n, entries.clone(), 0.10),
        })
        .collect();
    PredictionSummary::new(n, slices, Time::ZERO)
}

fn main() {
    // A small corpus with real synthetic payloads so bytes actually flow.
    let corpus = ImageCorpus::small(64, 9);
    let catalog = corpus.catalog();
    let utility = corpus.utility();
    let n = catalog.num_requests();

    // Weighted-fair arbitration across the accepted connections: the first
    // peer to connect is the interactive one (weight 2), the second the
    // background one (weight 1).
    let manager = SessionManager::new(
        Box::new(BlockStore::with_synthetic_payloads(catalog.clone())),
        Box::new(WeightedFair::new()),
    );
    let factory_catalog = catalog.clone();
    let factory_utility = utility.clone();
    let mut accepted = 0u32;
    let server = TransportServer::spawn(
        "127.0.0.1:0",
        manager,
        move || {
            accepted += 1;
            let weight = if accepted == 1 { 2.0 } else { 1.0 };
            Session::builder(factory_utility.clone(), factory_catalog.clone()).weight(weight)
        },
        TransportConfig {
            paced: true,
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = server.local_addr();

    // Client threads: each opens its own TCP connection, ships predictions
    // (full first, O(Δ) deltas after), and consumes its downlink into a
    // local cache, surfacing upcalls just like the in-process pipeline.
    let spawn_client = |first: u32, second: u32, label: &'static str| {
        let catalog = catalog.clone();
        let utility = utility.clone();
        thread::spawn(move || {
            let mut client = TransportClient::connect(addr)
                .expect("connect")
                // The example's toy summaries are small; always prefer the
                // delta frame so the saving is visible in the report.
                .with_max_delta_ratio(1.0);
            client
                .set_read_timeout(Some(StdDuration::from_millis(200)))
                .expect("read timeout");
            let mut cache = CacheManager::new(128, catalog, utility);
            let start = std::time::Instant::now();
            let mut upcalls = 0usize;
            let mut payload_bytes = 0usize;

            let _ = cache.register(RequestId(first), Time::ZERO);
            let report = client.send_prediction(&prediction(n, first)).expect("send");
            cache.note_prediction_sent(report.bytes);
            let mut switched = false;

            loop {
                let now = Time::from_millis(start.elapsed().as_millis() as u64);
                match client.recv_event() {
                    Ok(ServerEvent::Block { block, .. }) => {
                        payload_bytes += block.payload.as_ref().map(Vec::len).unwrap_or(0);
                        for up in cache.on_block(block.meta, now) {
                            upcalls += 1;
                            println!(
                                "[{label}] upcall: {} with {} block(s), utility {:.2}",
                                up.request, up.blocks, up.utility
                            );
                        }
                    }
                    Ok(_) => {}
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => break,
                }
                if !switched && start.elapsed() > StdDuration::from_millis(100) {
                    // Re-predict: only the changed entries cross the wire.
                    switched = true;
                    let _ = cache.register(RequestId(second), now);
                    let report = client
                        .send_prediction(&prediction(n, second))
                        .expect("re-predict");
                    cache.note_prediction_sent(report.bytes);
                }
                if start.elapsed() > StdDuration::from_millis(450) {
                    break;
                }
            }
            let _ = client.send_close();
            cache.finalize();
            let updates = client.full_updates() + client.delta_updates();
            let per_update = client.uplink_bytes() as f64 / updates.max(1) as f64;
            (
                upcalls,
                payload_bytes,
                cache.metrics().summary(),
                client.full_updates(),
                client.delta_updates(),
                per_update,
            )
        })
    };

    let client_a = spawn_client(3, 11, "interactive");
    // Stagger so the interactive client reliably lands the weight-2 slot.
    thread::sleep(StdDuration::from_millis(20));
    let client_b = spawn_client(40, 52, "background");

    let (up_a, bytes_a, sum_a, full_a, delta_a, per_a) =
        client_a.join().expect("client A panicked");
    let (up_b, bytes_b, sum_b, full_b, delta_b, per_b) =
        client_b.join().expect("client B panicked");
    let stats = server.stats();

    println!(
        "\nserver pushed {} blocks / {} frames across {} accepted connections",
        stats.blocks_sent, stats.frames_out, stats.accepted
    );
    println!(
        "interactive: {up_a} upcalls, {bytes_a} payload bytes, {} requests, \
         uplink {full_a} full + {delta_a} delta updates ({per_a:.0} B/update)",
        sum_a.requests
    );
    println!(
        "background:  {up_b} upcalls, {bytes_b} payload bytes, {} requests, \
         uplink {full_b} full + {delta_b} delta updates ({per_b:.0} B/update)",
        sum_b.requests
    );
    assert!(up_a >= 1, "expected at least one interactive upcall");
    assert!(up_b >= 1, "expected at least one background upcall");
    assert!(
        delta_a + delta_b >= 1,
        "expected at least one O(Δ) delta frame on the uplink"
    );
}
