//! Live (threaded) pipeline: the server streams blocks to the client over a
//! bounded channel that emulates a paced network link, while the client
//! thread registers requests and ships predictor state back — the same
//! library code the simulator drives, exercised with real threads and real
//! payload bytes.
//!
//! Run with: `cargo run --release --example live_pipeline`

use std::thread;
use std::time::Duration as StdDuration;

use crossbeam::channel;

use khameleon::backend::blockstore::BlockStore;
use khameleon::backend::image::ImageCorpus;
use khameleon::core::client::CacheManager;
use khameleon::core::predictor::simple::SimpleServerPredictor;
use khameleon::core::predictor::PredictorState;
use khameleon::core::server::{KhameleonServer, ServerConfig};
use khameleon::core::types::{RequestId, Time};

fn main() {
    // A small corpus with real synthetic payloads so bytes actually flow.
    let corpus = ImageCorpus::small(64, 9);
    let catalog = corpus.catalog();
    let utility = corpus.utility();
    let n = corpus.num_images();

    let (block_tx, block_rx) = channel::bounded(8);
    let (pred_tx, pred_rx) = channel::unbounded::<PredictorState>();

    // Server thread: apply predictions as they arrive and keep pushing blocks.
    let server_catalog = catalog.clone();
    let server_utility = utility.clone();
    let server = thread::spawn(move || {
        let mut server = KhameleonServer::new(
            ServerConfig::default(),
            server_utility,
            server_catalog.clone(),
            Box::new(SimpleServerPredictor::new(n)),
            Box::new(BlockStore::with_synthetic_payloads(server_catalog)),
        );
        let mut pushed = 0u64;
        let start = std::time::Instant::now();
        while start.elapsed() < StdDuration::from_millis(500) {
            while let Ok(state) = pred_rx.try_recv() {
                server.on_predictor_state(&state, Time::from_millis(start.elapsed().as_millis() as u64));
            }
            match server.next_block(Time::from_millis(start.elapsed().as_millis() as u64)) {
                Some(block) => {
                    if block_tx.send(block).is_err() {
                        break;
                    }
                    pushed += 1;
                    // Pace roughly like a constrained link.
                    thread::sleep(StdDuration::from_millis(2));
                }
                None => thread::sleep(StdDuration::from_millis(5)),
            }
        }
        pushed
    });

    // Client thread: register a couple of requests and consume the stream.
    let client = thread::spawn(move || {
        let mut client = CacheManager::new(128, catalog, utility);
        let start = std::time::Instant::now();
        let mut upcalls = 0usize;
        let mut payload_bytes = 0usize;

        // The user asks for image 3, then image 11 shortly after.
        let _ = client.register(RequestId(3), Time::ZERO);
        let _ = pred_tx.send(PredictorState::LastRequest(RequestId(3)));
        let mut switched = false;

        while let Ok(block) = block_rx.recv_timeout(StdDuration::from_millis(200)) {
            let now = Time::from_millis(start.elapsed().as_millis() as u64);
            payload_bytes += block.payload.as_ref().map(Vec::len).unwrap_or(0);
            for up in client.on_block(block.meta, now) {
                upcalls += 1;
                println!(
                    "upcall: {} with {} block(s), utility {:.2}",
                    up.request, up.blocks, up.utility
                );
            }
            if !switched && start.elapsed() > StdDuration::from_millis(100) {
                switched = true;
                let _ = client.register(RequestId(11), now);
                let _ = pred_tx.send(PredictorState::LastRequest(RequestId(11)));
            }
            if start.elapsed() > StdDuration::from_millis(450) {
                break;
            }
        }
        client.finalize();
        (upcalls, payload_bytes, client.metrics().summary())
    });

    let pushed = server.join().expect("server thread panicked");
    let (upcalls, payload_bytes, summary) = client.join().expect("client thread panicked");
    println!("\nserver pushed {pushed} blocks; client saw {upcalls} upcalls and {payload_bytes} payload bytes");
    println!(
        "client metrics: {} requests, cache-hit rate {:.2}, mean latency {:.1} ms",
        summary.requests, summary.cache_hit_rate, summary.mean_latency_ms
    );
    assert!(upcalls >= 1, "expected at least one upcall in the live run");
}
