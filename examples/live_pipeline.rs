//! Live (threaded) multi-client pipeline: a [`SessionManager`] multiplexes
//! two client sessions over one shared backend and one shared (paced) wire,
//! while each client thread registers its own requests and ships typed
//! [`ClientMessage`]s back — the same library code and the same protocol the
//! discrete-event simulator drives, exercised with real threads and real
//! payload bytes.
//!
//! Run with: `cargo run --release --example live_pipeline`

use std::thread;
use std::time::Duration as StdDuration;

use crossbeam::channel;

use khameleon::backend::blockstore::BlockStore;
use khameleon::backend::image::ImageCorpus;
use khameleon::core::client::CacheManager;
use khameleon::core::predictor::PredictorState;
use khameleon::core::protocol::{ClientMessage, ServerEvent, SessionId};
use khameleon::core::session::{Session, SessionManager, WeightedFair};
use khameleon::core::types::{RequestId, Time};

fn main() {
    // A small corpus with real synthetic payloads so bytes actually flow.
    let corpus = ImageCorpus::small(64, 9);
    let catalog = corpus.catalog();
    let utility = corpus.utility();

    // Two clients share the server: an interactive one (weight 2) and a
    // background one (weight 1).  Weighted-fair arbitration gives the
    // interactive session two blocks for every background block.
    let mut manager = SessionManager::new(
        Box::new(BlockStore::with_synthetic_payloads(catalog.clone())),
        Box::new(WeightedFair::new()),
    );
    let interactive =
        manager.add_session(Session::builder(utility.clone(), catalog.clone()).weight(2.0));
    let background =
        manager.add_session(Session::builder(utility.clone(), catalog.clone()).weight(1.0));

    // Uplink: every client shares one message channel (tagged by session).
    // Downlink: one block channel per client.
    let (msg_tx, msg_rx) = channel::unbounded::<(SessionId, ClientMessage)>();
    let (tx_a, rx_a) = channel::bounded(8);
    let (tx_b, rx_b) = channel::bounded(8);

    // Server thread: apply client messages as they arrive and keep the wire
    // busy, letting the share policy pick whose block goes out next.
    let server = thread::spawn(move || {
        let start = std::time::Instant::now();
        let mut pushed = 0u64;
        while start.elapsed() < StdDuration::from_millis(500) {
            let now = Time::from_millis(start.elapsed().as_millis() as u64);
            while let Ok((session, message)) = msg_rx.try_recv() {
                manager.on_message(session, &message, now);
            }
            match manager.next_event(now) {
                ServerEvent::Block { session, block } => {
                    let tx = if session == interactive { &tx_a } else { &tx_b };
                    // Non-blocking send: one slow client must not stall the
                    // shared wire, and a departed client must not take the
                    // other session down with it — its session is closed and
                    // the loop keeps serving the rest.
                    match tx.try_send(block) {
                        Ok(()) => pushed += 1,
                        Err(channel::TrySendError::Full(_)) => {
                            // Drop the block; the receiver is backlogged.
                        }
                        Err(channel::TrySendError::Disconnected(_)) => {
                            manager.on_message(session, &ClientMessage::Close, now);
                        }
                    }
                    // Pace roughly like a constrained shared link.
                    thread::sleep(StdDuration::from_millis(2));
                }
                _ => thread::sleep(StdDuration::from_millis(5)),
            }
        }
        (pushed, manager.session_ids().len())
    });

    // Client threads: each registers its own requests and consumes its own
    // downlink, shipping predictor state through the shared uplink.
    let spawn_client = |session: SessionId,
                        rx: channel::Receiver<khameleon::core::block::Block>,
                        tx: channel::Sender<(SessionId, ClientMessage)>,
                        first: u32,
                        second: u32,
                        label: &'static str| {
        let catalog = catalog.clone();
        let utility = utility.clone();
        thread::spawn(move || {
            let mut client = CacheManager::new(128, catalog, utility);
            let start = std::time::Instant::now();
            let mut upcalls = 0usize;
            let mut payload_bytes = 0usize;

            let _ = client.register(RequestId(first), Time::ZERO);
            let state = PredictorState::LastRequest(RequestId(first));
            client.note_prediction_sent(state.wire_size_bytes());
            let _ = tx.send((session, ClientMessage::Predictor(state)));
            let mut switched = false;

            while let Ok(block) = rx.recv_timeout(StdDuration::from_millis(200)) {
                let now = Time::from_millis(start.elapsed().as_millis() as u64);
                payload_bytes += block.payload.as_ref().map(Vec::len).unwrap_or(0);
                for up in client.on_block(block.meta, now) {
                    upcalls += 1;
                    println!(
                        "[{label}] upcall: {} with {} block(s), utility {:.2}",
                        up.request, up.blocks, up.utility
                    );
                }
                if !switched && start.elapsed() > StdDuration::from_millis(100) {
                    switched = true;
                    let _ = client.register(RequestId(second), now);
                    let state = PredictorState::LastRequest(RequestId(second));
                    client.note_prediction_sent(state.wire_size_bytes());
                    let _ = tx.send((session, ClientMessage::Predictor(state)));
                }
                if start.elapsed() > StdDuration::from_millis(450) {
                    break;
                }
            }
            let _ = tx.send((session, ClientMessage::Close));
            client.finalize();
            (upcalls, payload_bytes, client.metrics().summary())
        })
    };

    let client_a = spawn_client(interactive, rx_a, msg_tx.clone(), 3, 11, "interactive");
    let client_b = spawn_client(background, rx_b, msg_tx, 40, 52, "background");

    let (pushed, live_sessions) = server.join().expect("server thread panicked");
    let (up_a, bytes_a, sum_a) = client_a.join().expect("client A panicked");
    let (up_b, bytes_b, sum_b) = client_b.join().expect("client B panicked");

    println!("\nserver pushed {pushed} blocks across 2 sessions ({live_sessions} still open at shutdown)");
    let per_update = |predictions: u64, bytes: u64| bytes as f64 / predictions.max(1) as f64;
    println!(
        "interactive: {up_a} upcalls, {bytes_a} payload bytes, {} requests, cache-hit rate {:.2}, \
         uplink {:.0} B/prediction ({} updates)",
        sum_a.requests,
        sum_a.cache_hit_rate,
        per_update(sum_a.predictions_sent, sum_a.prediction_bytes),
        sum_a.predictions_sent
    );
    println!(
        "background:  {up_b} upcalls, {bytes_b} payload bytes, {} requests, cache-hit rate {:.2}, \
         uplink {:.0} B/prediction ({} updates)",
        sum_b.requests,
        sum_b.cache_hit_rate,
        per_update(sum_b.predictions_sent, sum_b.prediction_bytes),
        sum_b.predictions_sent
    );
    assert!(up_a >= 1, "expected at least one interactive upcall");
    assert!(up_b >= 1, "expected at least one background upcall");
}
