//! Quickstart: wire a Khameleon client and server together by hand and watch
//! a request get answered from proactively pushed blocks.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use khameleon::core::predictor::simple::SimpleServerPredictor;
use khameleon::prelude::*;

fn main() {
    // 1. Describe the content: 100 requests, each progressively encoded into
    //    10 blocks of 10 KB, under the conservative linear utility.
    let catalog = Arc::new(ResponseCatalog::uniform(100, 10, 10_000));
    let utility = UtilityModel::homogeneous(&LinearUtility, 10);

    // 2. Build the server: greedy scheduler + bandwidth estimator + a backend
    //    that serves blocks straight from the catalog (a pre-loaded "file
    //    system").  Every component has a sensible default; the builder makes
    //    the predictor explicit just to show where it plugs in.
    let mut server = ServerBuilder::new(utility.clone(), catalog.clone())
        .predictor(Box::new(SimpleServerPredictor::new(100)))
        .backend(Box::new(CatalogBackend::new(catalog.clone())))
        .build();

    // 3. Build the client: a 64-block ring cache plus upcall bookkeeping.
    let mut client = CacheManager::new(64, catalog, utility);

    // 4. The user interacts: request 7 is registered locally (no network
    //    request is sent!), and the predictor state tells the server what to
    //    prioritize.
    let now = Time::ZERO;
    assert!(client.register(RequestId(7), now).is_none());
    server.on_predictor_state(&PredictorState::LastRequest(RequestId(7)), now);

    // 5. The server streams blocks; the first block for request 7 triggers an
    //    application upcall with a renderable (low quality) response, and
    //    later blocks keep improving it.
    let mut t = now;
    for _ in 0..20 {
        let Some(block) = server.next_block(t) else {
            break;
        };
        t += server.pacing_interval();
        for upcall in client.on_block(block.meta, t) {
            println!(
                "upcall at {t}: request {} answered with {} block(s), utility {:.2}, latency {}",
                upcall.request,
                upcall.blocks,
                upcall.utility,
                upcall.latency()
            );
        }
    }

    println!(
        "request 7 now has {} blocks cached (utility {:.2})",
        client.current_blocks(RequestId(7)),
        client.current_utility(RequestId(7))
    );
    println!(
        "server pushed {} blocks ({} bytes) without ever receiving an explicit request",
        server.blocks_sent(),
        server.bytes_sent()
    );
}
