//! Exhaustive randomized parity check across sampler variants (dev tool).
//!
//! This is a standalone, higher-volume (400k cases) companion to the
//! in-tree `sampler_variants_emit_identical_schedules` proptest in
//! `crates/core/src/scheduler/greedy.rs` — the op grammar (`drive`) and
//! generators (`het`, `sparse_pred`) mirror that test's `drive_variant` /
//! `heterogeneous_utility` and the two must be extended together.
use std::sync::Arc;

use khameleon_core::block::ResponseCatalog;
use khameleon_core::distribution::{HorizonSlice, PredictionSummary, SparseDistribution};
use khameleon_core::scheduler::{GreedyScheduler, GreedySchedulerConfig, SamplerVariant};
use khameleon_core::types::{BlockRef, Duration, RequestId, Time};
use khameleon_core::utility::{GainTable, LinearUtility, PowerUtility, UtilityModel};

fn het(n: usize, blocks: u32) -> UtilityModel {
    let concave = PowerUtility::new(0.5);
    let steep = PowerUtility::new(0.25);
    let tables: Vec<GainTable> = (0..n)
        .map(|i| match i % 3 {
            0 => GainTable::new(&LinearUtility, blocks),
            1 => GainTable::new(&concave, blocks),
            _ => GainTable::new(&steep, blocks),
        })
        .collect();
    UtilityModel::per_request(tables)
}

fn sparse_pred(n: usize, entries: Vec<(RequestId, f64)>, residual: f64) -> PredictionSummary {
    let dist = SparseDistribution::from_entries(n, entries, residual);
    let slices = PredictionSummary::default_deltas()
        .into_iter()
        .map(|delta| HorizonSlice {
            delta,
            dist: dist.clone(),
        })
        .collect();
    PredictionSummary::new(n, slices, Time::ZERO)
}

#[allow(clippy::too_many_arguments)]
fn drive(
    variant: SamplerVariant,
    n: usize,
    blocks: u32,
    cache: usize,
    seed: u64,
    meta: bool,
    tracking: bool,
    utility: &UtilityModel,
    ops: &[(u8, usize, usize)],
) -> (Vec<BlockRef>, Vec<BlockRef>) {
    let catalog = Arc::new(ResponseCatalog::uniform(n, blocks, 100));
    let mut s = GreedyScheduler::new(
        GreedySchedulerConfig {
            cache_blocks: cache,
            seed,
            sampler: variant,
            use_meta_request: meta,
            track_client_cache: tracking,
            ..Default::default()
        },
        utility.clone(),
        catalog,
    );
    let mut emitted = Vec::new();
    // Drifting prediction state for the overlapping-update ops (kinds 6–7),
    // mirroring the in-tree proptest's diff-path grammar.
    let mut evolving: Vec<(usize, f64)> = vec![(0, 0.3), (1 % n, 0.2)];
    for &(kind, a, b) in ops {
        match kind {
            0..=2 => emitted.extend(s.next_batch(a % (2 * cache) + 1)),
            3 => {
                let p1 = (a % 9 + 1) as f64 / 20.0;
                let p2 = (b % 7 + 1) as f64 / 30.0;
                let pred = sparse_pred(
                    n,
                    vec![(RequestId::from(a % n), p1), (RequestId::from(b % n), p2)],
                    1.0 - p1 - p2,
                );
                let pos = b % (s.position() + 1);
                s.update_prediction(&pred, pos);
            }
            4 => {
                let slices = vec![
                    HorizonSlice {
                        delta: Duration::from_millis(10),
                        dist: SparseDistribution::from_entries(
                            n,
                            vec![(RequestId::from(a % n), 0.8)],
                            0.2,
                        ),
                    },
                    HorizonSlice {
                        delta: Duration::from_millis(400),
                        dist: SparseDistribution::from_entries(
                            n,
                            vec![(RequestId::from(b % n), 0.7)],
                            0.3,
                        ),
                    },
                ];
                let pred = PredictionSummary::new(n, slices, Time::ZERO);
                let pos = a % (s.position() + 1);
                s.update_prediction(&pred, pos);
            }
            5 => {
                let pos = (s.position() + b % 3).min(cache);
                let pred = PredictionSummary::uniform(n, Time::ZERO);
                s.update_prediction(&pred, pos);
            }
            6 => {
                // Overlapping re-prediction: mutate one entry of the
                // drifting prediction (add / remove / reweight) — the diff
                // path's point-update grammar.
                match a % 3 {
                    0 => {
                        let r = b % n;
                        let p = (b % 9 + 1) as f64 / 30.0;
                        match evolving.iter_mut().find(|e| e.0 == r) {
                            Some(e) => e.1 = p,
                            None => evolving.push((r, p)),
                        }
                    }
                    1 if evolving.len() > 1 => {
                        evolving.remove(b % evolving.len());
                    }
                    _ => {
                        let i = b % evolving.len();
                        evolving[i].1 *= (a % 5 + 1) as f64 / 3.0;
                    }
                }
                let entries: Vec<(RequestId, f64)> = evolving
                    .iter()
                    .map(|&(r, p)| (RequestId::from(r), p))
                    .collect();
                let mass: f64 = evolving.iter().map(|e| e.1).sum();
                let pred = sparse_pred(n, entries, (1.0 - mass).max(0.1));
                let pos = a % (s.position() + 1);
                s.update_prediction(&pred, pos);
            }
            _ => {
                // Overlapping shape-changing re-prediction over the default
                // slice offsets: moves requests between shape buckets
                // through the diff path.
                let early =
                    SparseDistribution::from_entries(n, vec![(RequestId::from(a % n), 0.6)], 0.4);
                let entries: Vec<(RequestId, f64)> = evolving
                    .iter()
                    .map(|&(r, p)| (RequestId::from(r), p))
                    .collect();
                let mass: f64 = evolving.iter().map(|e| e.1).sum();
                let late = SparseDistribution::from_entries(n, entries, (1.0 - mass).max(0.1));
                let slices = PredictionSummary::default_deltas()
                    .into_iter()
                    .enumerate()
                    .map(|(i, delta)| HorizonSlice {
                        delta,
                        dist: if i < 2 { early.clone() } else { late.clone() },
                    })
                    .collect();
                let pred = PredictionSummary::new(n, slices, Time::ZERO);
                let pos = b % (s.position() + 1);
                s.update_prediction(&pred, pos);
            }
        }
    }
    assert!(
        s.debug_weight_divergence().is_empty(),
        "sampler diverged from model: {:?}",
        s.debug_weight_divergence()
    );
    (emitted, s.simulated_ring())
}

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn main() {
    let mut found = 0u32;
    let mut lcg = Lcg(98765);
    for case in 0..400_000u64 {
        let n = (lcg.next() as usize % 12) + 2;
        let blocks = (lcg.next() as u32 % 5) + 1;
        let cache = (lcg.next() as usize % 18) + 2;
        let seed = lcg.next() % 10_000;
        let meta = lcg.next().is_multiple_of(2);
        let tracking = !lcg.next().is_multiple_of(4);
        let len = (lcg.next() as usize % 13) + 1;
        let ops: Vec<(u8, usize, usize)> = (0..len)
            .map(|_| {
                (
                    (lcg.next() % 8) as u8,
                    lcg.next() as usize % 64,
                    lcg.next() as usize % 64,
                )
            })
            .collect();
        let u = het(n, blocks);
        let sc = drive(
            SamplerVariant::Scan,
            n,
            blocks,
            cache,
            seed,
            meta,
            tracking,
            &u,
            &ops,
        );
        for v in [SamplerVariant::Eager, SamplerVariant::Lazy] {
            let e = drive(v, n, blocks, cache, seed, meta, tracking, &u, &ops);
            if e != sc {
                println!("MISMATCH case={case} {v:?} n={n} blocks={blocks} cache={cache} seed={seed} meta={meta} tracking={tracking} ops={ops:?}");
                found += 1;
            }
        }
        if found > 2 {
            std::process::exit(1);
        }
    }
    if found == 0 {
        println!("parity ok over 400k randomized cases");
    } else {
        std::process::exit(1);
    }
}
