//! Cross-crate integration tests: the full Khameleon stack (apps + backend +
//! net + sim + core) reproduces the paper's qualitative results on reduced
//! workloads.

use khameleon::prelude::*;
use khameleon::sim::harness::run_image_comparison;

fn setup() -> (ImageExplorationApp, InteractionTrace) {
    let app = ImageExplorationApp::reduced(12, 7);
    let trace = generate_image_trace(
        &app.layout(),
        &ImageTraceConfig {
            duration: Duration::from_secs(10),
            seed: 7,
            ..Default::default()
        },
    );
    (app, trace)
}

/// §6.2 headline: under constrained bandwidth Khameleon answers requests
/// orders of magnitude faster than the request/response baselines while
/// keeping a partial-quality response, and its cache-hit rate is higher than
/// every baseline's.
#[test]
fn khameleon_dominates_baselines_on_latency_and_hits() {
    let (app, trace) = setup();
    let cfg = ExperimentConfig::paper_default().with_bandwidth(Bandwidth::from_mbps(1.5));
    let results = run_image_comparison(&app, &trace, &cfg);
    let kham = results
        .iter()
        .find(|r| r.label.starts_with("Khameleon"))
        .unwrap();
    let baseline = results.iter().find(|r| r.label == "Baseline").unwrap();
    let best_acc_hits = results
        .iter()
        .filter(|r| r.label.starts_with("ACC"))
        .map(|r| r.summary.cache_hit_rate)
        .fold(0.0, f64::max);

    assert!(
        kham.summary.p50_latency_ms * 10.0 < baseline.summary.p50_latency_ms,
        "khameleon p50 {} ms vs baseline {} ms",
        kham.summary.p50_latency_ms,
        baseline.summary.p50_latency_ms
    );
    assert!(kham.summary.cache_hit_rate >= best_acc_hits);
    assert!(kham.summary.cache_hit_rate > baseline.summary.cache_hit_rate);
    // Khameleon trades quality for latency: utility is partial, not zero.
    assert!(kham.summary.mean_utility > 0.05 && kham.summary.mean_utility <= 1.0);
    // Baselines only ever deliver full responses.
    assert!(baseline.summary.mean_utility > 0.99);
}

/// Increasing bandwidth increases how much Khameleon can push and never hurts
/// the baselines, mirroring the trends of Figure 6.
#[test]
fn more_bandwidth_helps_every_system() {
    let (app, trace) = setup();
    let low = ExperimentConfig::paper_default().with_bandwidth(Bandwidth::from_mbps(1.5));
    let high = ExperimentConfig::paper_default().with_bandwidth(Bandwidth::from_mbps(15.0));
    let r_low = run_image_comparison(&app, &trace, &low);
    let r_high = run_image_comparison(&app, &trace, &high);
    for (lo, hi) in r_low.iter().zip(&r_high) {
        assert_eq!(lo.label, hi.label);
        assert!(
            hi.summary.mean_latency_ms <= lo.summary.mean_latency_ms * 1.5 + 5.0,
            "{}: latency got worse with more bandwidth ({} -> {})",
            lo.label,
            lo.summary.mean_latency_ms,
            hi.summary.mean_latency_ms
        );
    }
    // Khameleon pushes more data when more bandwidth is available.
    let kham_low = &r_low[0];
    let kham_high = &r_high[0];
    assert!(kham_high.bytes_sent > kham_low.bytes_sent);
}

/// The oracle predictor concentrates bandwidth on the requests the user will
/// actually issue, so the responses it delivers carry at least as much
/// quality as uniform hedging does (Figure 12's ordering).  (On this reduced
/// 144-image corpus uniform hedging can match the oracle's *hit rate* —
/// first blocks for every image fit in the cache — so the discriminating
/// metric is delivered utility.)
#[test]
fn predictor_quality_ordering() {
    let (app, trace) = setup();
    let cfg = ExperimentConfig::paper_default().with_bandwidth(Bandwidth::from_mbps(2.0));
    let uniform = run_image_system(
        &app,
        SystemKind::Khameleon(PredictorKind::Uniform),
        &trace,
        &cfg,
    );
    let oracle = run_image_system(
        &app,
        SystemKind::Khameleon(PredictorKind::Oracle),
        &trace,
        &cfg,
    );
    assert!(oracle.summary.cache_hit_rate > 0.0);
    assert!(uniform.summary.cache_hit_rate > 0.0);
    assert!(
        oracle.summary.mean_utility + 0.05 >= uniform.summary.mean_utility,
        "oracle utility {} vs uniform {}",
        oracle.summary.mean_utility,
        uniform.summary.mean_utility
    );
}

/// Every simulated system reports internally consistent metrics.
#[test]
fn metrics_consistency_across_systems() {
    let (app, trace) = setup();
    let cfg = ExperimentConfig::paper_default();
    for r in run_image_comparison(&app, &trace, &cfg) {
        let s = &r.summary;
        assert_eq!(s.completed + s.preempted, s.requests, "{}", r.label);
        assert!((0.0..=1.0).contains(&s.cache_hit_rate), "{}", r.label);
        assert!((0.0..=1.0).contains(&s.overpush_rate), "{}", r.label);
        assert!(s.mean_utility <= 1.0 + 1e-9, "{}", r.label);
        assert!(s.p50_latency_ms <= s.p99_latency_ms + 1e-9, "{}", r.label);
    }
}
