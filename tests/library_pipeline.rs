//! Integration tests that drive the public library API directly (no
//! simulator): client + server + predictor + backend wired by hand, the way
//! an application developer would embed Khameleon.

use std::sync::Arc;

use khameleon::apps::layout::GridLayout;
use khameleon::backend::blockstore::BlockStore;
use khameleon::backend::image::ImageCorpus;
use khameleon::core::predictor::kalman::{GaussianLayoutDecoder, KalmanMousePredictor};
use khameleon::core::predictor::{ClientPredictor, InteractionEvent, RequestLayout};
use khameleon::prelude::*;

/// A full hand-wired pipeline: mouse motion drives the Kalman predictor, the
/// server pushes blocks for the predicted widget, and the client answers the
/// eventual request from cache.
#[test]
fn hand_wired_pipeline_prefetches_the_predicted_widget() {
    let layout = Arc::new(GridLayout::new(20, 20, 10.0, 10.0));
    let corpus = ImageCorpus::small(400, 3);
    let catalog = corpus.catalog();
    let utility = corpus.utility();

    let mut server = ServerBuilder::new(utility.clone(), catalog.clone())
        .predictor(Box::new(GaussianLayoutDecoder::new(
            layout.clone() as Arc<dyn RequestLayout>
        )))
        .backend(Box::new(BlockStore::new(catalog.clone())))
        .build();
    let mut client = CacheManager::new(256, catalog, utility);
    let mut predictor = KalmanMousePredictor::with_defaults();

    // The cursor drifts toward widget (10, 15) = request 10*20+15 = 215.
    for i in 0..30u64 {
        predictor.observe(&InteractionEvent::MouseMove {
            x: 100.0 + i as f64 * 2.0,
            y: 105.0,
            at: Time::from_millis(i * 20),
        });
    }
    let now = Time::from_millis(600);
    let state = predictor.state(now);
    server.on_predictor_state(&state, now);

    // Stream for a while.
    let mut t = now;
    for _ in 0..64 {
        let Some(block) = server.next_block(t) else {
            break;
        };
        t += Duration::from_millis(2);
        let _ = client.on_block(block.meta, t);
    }

    // The widget under the (predicted) cursor position should be cached.
    let hovered = layout.request_at(160.0, 105.0).unwrap();
    assert!(
        client.has_data(hovered),
        "predicted widget {hovered} was not prefetched"
    );
    // Registering the request is answered instantly from cache.
    let upcall = client.register(hovered, t).expect("expected a cache hit");
    assert!(upcall.cache_hit);
    assert_eq!(upcall.latency(), Duration::from_micros(0));
    assert!(upcall.utility > 0.0);
}

/// The backend-concurrency heuristic (§5.4) keeps the number of distinct
/// requests per sender refill within the backend's limit even when the
/// prediction is uniform.
#[test]
fn backend_limit_is_respected_end_to_end() {
    let corpus = ImageCorpus::small(100, 5);
    let catalog = corpus.catalog();
    let utility = corpus.utility();
    let mut server = ServerBuilder::new(utility, catalog.clone())
        .config(ServerConfig {
            sender_queue_target: 24,
            ..Default::default()
        })
        .predictor(Box::new(
            khameleon::core::predictor::simple::SimpleServerPredictor::new(100),
        ))
        .backend(Box::new(BlockStore::new(catalog).with_concurrency_limit(4)))
        .build();
    let mut distinct = std::collections::HashSet::new();
    for _ in 0..24 {
        if let Some(b) = server.next_block(Time::ZERO) {
            distinct.insert(b.meta.block.request);
        }
    }
    assert!(
        distinct.len() <= 4,
        "scheduler sent blocks for {} distinct requests despite a limit of 4",
        distinct.len()
    );
}

/// Progressive quality: utility rises monotonically as more blocks of a
/// response arrive, following the SSIM curve.
#[test]
fn utility_improves_monotonically_with_blocks() {
    let corpus = ImageCorpus::small(16, 11);
    let catalog = corpus.catalog();
    let utility = corpus.utility();
    let mut client = CacheManager::new(64, catalog.clone(), utility);
    let req = RequestId(5);
    let layout = catalog.layout(req);
    let mut last = 0.0;
    for i in 0..layout.num_blocks() {
        let meta = layout.block_meta(i).unwrap();
        let _ = client.on_block(meta, Time::from_millis(i as u64));
        let u = client.current_utility(req);
        assert!(u >= last - 1e-12, "utility regressed at block {i}");
        last = u;
    }
    assert!(
        (last - 1.0).abs() < 1e-9,
        "full response should reach utility 1"
    );
}
