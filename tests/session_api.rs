//! Integration tests for the session-oriented server API: scheduler-trait
//! parity, `ServerBuilder` defaults, and multi-session fairness.

use std::collections::HashMap;
use std::sync::Arc;

use khameleon::core::block::ResponseCatalog;
use khameleon::core::distribution::PredictionSummary;
use khameleon::core::protocol::{ClientMessage, ServerEvent};
use khameleon::core::scheduler::{
    GreedyScheduler, GreedySchedulerConfig, OptimalScheduler, Scheduler,
};
use khameleon::core::server::{CatalogBackend, ServerBuilder, ServerConfig};
use khameleon::core::session::{RoundRobin, Session, SessionManager, WeightedFair};
use khameleon::core::types::{Bandwidth, RequestId, Time};
use khameleon::core::utility::{LinearUtility, PowerUtility, UtilityModel};

fn catalog(n: usize, blocks: u32) -> Arc<ResponseCatalog> {
    Arc::new(ResponseCatalog::uniform(n, blocks, 10_000))
}

fn greedy(n: usize, blocks: u32, cache: usize, seed: u64) -> GreedyScheduler {
    GreedyScheduler::new(
        GreedySchedulerConfig {
            cache_blocks: cache,
            seed,
            ..Default::default()
        },
        UtilityModel::homogeneous(&LinearUtility, blocks),
        catalog(n, blocks),
    )
}

/// The tentpole parity guarantee: driving a `GreedyScheduler` through
/// `Box<dyn Scheduler>` produces byte-identical schedules to calling the
/// concrete type directly (the seed's direct-field path), across prediction
/// updates, partial batches, and schedule wraps.
#[test]
fn boxed_greedy_schedules_identically_to_direct_calls() {
    let mut direct = greedy(200, 6, 64, 42);
    let mut boxed: Box<dyn Scheduler> = Box::new(greedy(200, 6, 64, 42));

    // Phase 1: uniform prior, a full batch.
    assert_eq!(direct.next_batch(32), boxed.next_batch(32));

    // Phase 2: a concentrated prediction arrives mid-schedule.
    let pred = PredictionSummary::point(200, RequestId(17), Time::ZERO);
    direct.update_prediction(&pred, 20);
    boxed.update_prediction(&pred, 20);
    assert_eq!(direct.next_batch(50), boxed.next_batch(50));

    // Phase 3: slot duration changes and the schedule wraps.
    use khameleon::core::types::Duration;
    direct.set_slot_duration(Duration::from_millis(4));
    boxed.set_slot_duration(Duration::from_millis(4));
    let uniform = PredictionSummary::uniform(200, Time::from_millis(100));
    direct.update_prediction(&uniform, 0);
    boxed.update_prediction(&uniform, 0);
    assert_eq!(direct.next_batch(100), boxed.next_batch(100));

    // The simulated caches agree exactly as well.
    assert_eq!(direct.simulated_cache(), boxed.simulated_cache());
    let empty = HashMap::new();
    let du = direct.expected_utility(&empty);
    let bu = boxed.expected_utility(&empty);
    assert!(
        (du - bu).abs() < 1e-12,
        "expected utility diverged: {du} vs {bu}"
    );
}

/// A server assembled by `ServerBuilder` with an explicit boxed greedy
/// scheduler streams the same blocks as one using the builder's default.
#[test]
fn builder_with_boxed_scheduler_matches_default_server() {
    let n = 80;
    let blocks = 5u32;
    let cat = catalog(n, blocks);
    let utility = UtilityModel::homogeneous(&LinearUtility, blocks);
    let cfg = ServerConfig {
        scheduler: GreedySchedulerConfig {
            cache_blocks: 48,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut default_server = ServerBuilder::new(utility.clone(), cat.clone())
        .config(cfg.clone())
        .build();
    // The explicit scheduler mirrors what the builder would construct,
    // including the bandwidth-derived slot duration (applied by the builder).
    let explicit = GreedyScheduler::new(cfg.scheduler.clone(), utility.clone(), cat.clone());
    let mut explicit_server = ServerBuilder::new(utility, cat)
        .config(cfg)
        .scheduler(Box::new(explicit))
        .build();

    let msg = ClientMessage::Predictor(khameleon::core::predictor::PredictorState::LastRequest(
        RequestId(5),
    ));
    default_server.on_message(&msg, Time::ZERO);
    explicit_server.on_message(&msg, Time::ZERO);

    for _ in 0..40 {
        let a = default_server.next_block(Time::ZERO).map(|b| b.meta.block);
        let b = explicit_server.next_block(Time::ZERO).map(|b| b.meta.block);
        assert_eq!(a, b, "streams diverged");
    }
}

/// The optimal scheduler slots into the same server plumbing.
#[test]
fn optimal_scheduler_drives_a_server() {
    let n = 6;
    let blocks = 3u32;
    let cat = catalog(n, blocks);
    let utility = UtilityModel::homogeneous(&PowerUtility::new(0.5), blocks);
    let mut server = ServerBuilder::new(utility.clone(), cat.clone())
        .scheduler(Box::new(
            OptimalScheduler::new(utility, cat).with_horizon(12),
        ))
        .build();
    assert_eq!(server.scheduler_name(), "optimal");
    server.on_message(
        &ClientMessage::Predictor(khameleon::core::predictor::PredictorState::LastRequest(
            RequestId(2),
        )),
        Time::ZERO,
    );
    let first = server.next_block(Time::ZERO).expect("a block");
    assert_eq!(first.meta.block.request, RequestId(2));
    assert_eq!(first.meta.block.index, 0);
    // The exact solver schedules the certain request's full prefix first.
    let second = server.next_block(Time::ZERO).expect("a second block");
    assert_eq!(
        second.meta.block,
        khameleon::core::types::BlockRef::new(RequestId(2), 1)
    );
}

/// Regression: a re-prediction must not lose the blocks that were queued in
/// the sender but never sent.  The session discards its queue when a
/// prediction arrives; the exact schedulers must roll those blocks back and
/// re-plan them rather than treating them as delivered.
#[test]
fn optimal_scheduler_replans_queued_but_unsent_blocks() {
    let n = 4;
    let blocks = 3u32;
    let cat = catalog(n, blocks);
    let utility = UtilityModel::homogeneous(&PowerUtility::new(0.5), blocks);
    let mut server = ServerBuilder::new(utility.clone(), cat.clone())
        .scheduler(Box::new(
            OptimalScheduler::new(utility, cat).with_horizon(12),
        ))
        .build();

    // Prime the schedule and let exactly one block (of request 0's plan) go
    // out; the rest of the 12-block plan sits in the sender queue.
    server.on_message(
        &ClientMessage::Predictor(khameleon::core::predictor::PredictorState::LastRequest(
            RequestId(0),
        )),
        Time::ZERO,
    );
    let first = server.next_block(Time::ZERO).expect("first block");
    assert_eq!(first.meta.block.request, RequestId(0));

    // A new prediction arrives: the queued-but-unsent blocks are discarded
    // by the session and must be re-planned, not considered delivered.
    server.on_message(
        &ClientMessage::Predictor(khameleon::core::predictor::PredictorState::LastRequest(
            RequestId(3),
        )),
        Time::from_millis(10),
    );
    let mut delivered = std::collections::HashSet::new();
    delivered.insert(first.meta.block);
    while let Some(b) = server.next_block(Time::from_millis(10)) {
        assert!(delivered.insert(b.meta.block), "duplicate {b:?}");
        if delivered.len() > 64 {
            panic!("runaway stream");
        }
    }
    // Every block of the tiny catalog is deliverable: nothing was lost to
    // the discarded queue (12 = n * blocks).
    assert_eq!(
        delivered.len(),
        n * blocks as usize,
        "blocks lost after re-prediction: got {delivered:?}"
    );
}

/// Regression: draining exactly one full schedule between prediction updates
/// must not make the exact scheduler re-send everything.  The sender's
/// schedule position wraps to 0 after `horizon` sends, which is
/// indistinguishable from "nothing sent"; the scheduler must rely on
/// `note_sent` confirmations instead.
#[test]
fn optimal_scheduler_survives_full_schedule_drain_between_updates() {
    let n = 4;
    let blocks = 8u32;
    let horizon = 8;
    let cat = catalog(n, blocks);
    let utility = UtilityModel::homogeneous(&PowerUtility::new(0.5), blocks);
    let mut server = ServerBuilder::new(utility.clone(), cat.clone())
        .scheduler(Box::new(
            OptimalScheduler::new(utility, cat).with_horizon(horizon),
        ))
        .build();

    server.on_message(
        &ClientMessage::Predictor(khameleon::core::predictor::PredictorState::LastRequest(
            RequestId(1),
        )),
        Time::ZERO,
    );
    // Drain exactly one full schedule (8 blocks, all of request 1).
    let mut sent = std::collections::HashSet::new();
    for _ in 0..horizon {
        let b = server.next_block(Time::ZERO).expect("schedule block");
        sent.insert(b.meta.block);
    }
    assert_eq!(sent.len(), horizon);

    // Same prediction again after the wrap: nothing new to say, so the
    // already-sent blocks must NOT be re-sent.
    server.on_message(
        &ClientMessage::Predictor(khameleon::core::predictor::PredictorState::LastRequest(
            RequestId(1),
        )),
        Time::from_millis(10),
    );
    let mut extra = 0;
    while let Some(b) = server.next_block(Time::from_millis(10)) {
        assert!(
            sent.insert(b.meta.block),
            "already-sent block {b:?} re-sent after schedule drain"
        );
        extra += 1;
        assert!(extra <= 64, "runaway stream");
    }
}

fn fairness_run(weights: &[f64], weighted: bool, steps: usize) -> Vec<usize> {
    let n = 100;
    let blocks = 10u32;
    let cat = catalog(n, blocks);
    let utility = UtilityModel::homogeneous(&LinearUtility, blocks);
    let mut mgr = if weighted {
        SessionManager::new(
            Box::new(CatalogBackend::new(cat.clone())),
            Box::new(WeightedFair::new()),
        )
    } else {
        SessionManager::new(
            Box::new(CatalogBackend::new(cat.clone())),
            Box::new(RoundRobin::new()),
        )
    };
    let ids: Vec<_> = weights
        .iter()
        .map(|&w| {
            mgr.add_session(
                Session::builder(utility.clone(), cat.clone())
                    .config(ServerConfig {
                        scheduler: GreedySchedulerConfig {
                            cache_blocks: n * blocks as usize,
                            ..Default::default()
                        },
                        ..Default::default()
                    })
                    .weight(w),
            )
        })
        .collect();
    let mut counts = vec![0usize; ids.len()];
    for _ in 0..steps {
        match mgr.next_event(Time::ZERO) {
            ServerEvent::Block { session, .. } => {
                let idx = ids.iter().position(|&id| id == session).unwrap();
                counts[idx] += 1;
            }
            _ => break,
        }
    }
    counts
}

/// Two uniform-demand sessions under round-robin each receive ~50% of the
/// shared wire.
#[test]
fn round_robin_fairness_end_to_end() {
    let counts = fairness_run(&[1.0, 1.0], false, 500);
    assert_eq!(counts.iter().sum::<usize>(), 500);
    let (a, b) = (counts[0] as f64, counts[1] as f64);
    assert!(
        (a - b).abs() <= 2.0,
        "round-robin split should be ~50/50, got {a} vs {b}"
    );
}

/// Weighted-fair with a 2:1 weight ratio yields a 2:1 block split.
#[test]
fn weighted_fair_two_to_one_split() {
    let counts = fairness_run(&[2.0, 1.0], true, 600);
    assert_eq!(counts.iter().sum::<usize>(), 600);
    let ratio = counts[0] as f64 / counts[1] as f64;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "expected a 2:1 split, got {}:{} (ratio {ratio:.3})",
        counts[0],
        counts[1]
    );
}

/// Sessions come and go dynamically; the shared budget is re-divided and
/// low rate reports from every session slow the shared pacing for everyone.
#[test]
fn sessions_join_leave_and_share_bandwidth() {
    let cat = catalog(40, 4);
    let utility = UtilityModel::homogeneous(&LinearUtility, 4);
    let mut mgr = SessionManager::round_robin(Box::new(CatalogBackend::new(cat.clone())))
        .with_bandwidth_cap(Bandwidth::from_mbps(8.0));
    let a = mgr.add_session(Session::builder(utility.clone(), cat.clone()));
    assert_eq!(mgr.num_sessions(), 1);
    let pacing_one = mgr.pacing_interval();

    let b = mgr.add_session(Session::builder(utility, cat));
    assert_eq!(mgr.num_sessions(), 2);

    // Both sessions get served.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..6 {
        if let ServerEvent::Block { session, .. } = mgr.next_event(Time::ZERO) {
            seen.insert(session);
        }
    }
    assert!(seen.contains(&a) && seen.contains(&b));

    // Slow rate reports from both clients throttle the shared estimate (the
    // total is the sum of per-session observed rates, so one client's low
    // share alone says little about the wire).
    for &id in &[a, b] {
        mgr.on_message(
            id,
            &ClientMessage::RateReport(Bandwidth::from_mbps(0.25)),
            Time::ZERO,
        );
    }
    assert!(mgr.pacing_interval() > pacing_one);

    // Closing a session stops its stream but not the other's.
    let closed = mgr.on_message(b, &ClientMessage::Close, Time::ZERO);
    assert_eq!(closed, Some(ServerEvent::Closed { session: b }));
    assert_eq!(mgr.num_sessions(), 1);
    match mgr.next_event(Time::ZERO) {
        ServerEvent::Block { session, .. } => assert_eq!(session, a),
        other => panic!("surviving session should still stream, got {other:?}"),
    }
}
