//! Integration tests for the Falcon visualization stack: columnar engine,
//! data-cube slices, progressive result encoding, and the cost models, used
//! together the way the Figure 14 harness uses them.

use khameleon::apps::falcon_app::{FalconApp, FalconAppConfig, FalconBackendKind, FalconDataset};
use khameleon::backend::columnar::RangeFilter;
use khameleon::backend::encoder::RoundRobinEncoder;
use khameleon::backend::executor::{CostModel, QueryExecutor};
use khameleon::core::types::RequestId;

fn app() -> FalconApp {
    FalconApp::new(FalconAppConfig {
        bins: 20,
        blocks_per_response: 4,
        table_rows: 30_000,
        seed: 13,
    })
}

/// A chart activation's slice queries, executed against the generated flights
/// table, partition the (in-range) rows consistently across target charts.
#[test]
fn slice_queries_are_consistent_across_targets() {
    let app = app();
    let table = app.table();
    let group = app.query_group(RequestId(0), &[]);
    assert_eq!(group.len(), 5);
    let totals: Vec<u64> = group.iter().map(|q| q.execute(&table).total()).collect();
    // Every slice counts the same underlying rows (minus those outside each
    // chart's plotted range), so totals are close to the table size.
    for &t in &totals {
        assert!(
            t > table.num_rows() as u64 / 2,
            "slice lost too many rows: {t}"
        );
        assert!(t <= table.num_rows() as u64);
    }
}

/// Selections narrow the slices: filtering on one chart reduces every other
/// chart's counts.
#[test]
fn selections_restrict_counts() {
    let app = app();
    let table = app.table();
    let unfiltered: u64 = app
        .query_group(RequestId(2), &[])
        .iter()
        .map(|q| q.execute(&table).total())
        .sum();
    let filtered: u64 = app
        .query_group(
            RequestId(2),
            &[("distance".to_string(), RangeFilter::new(0.0, 500.0))],
        )
        .iter()
        .map(|q| q.execute(&table).total())
        .sum();
    assert!(filtered < unfiltered);
    assert!(filtered > 0);
}

/// Progressive round-robin encoding of a slice reconstructs the exact counts
/// once all blocks are decoded, and a strict prefix reconstructs a subset.
#[test]
fn slice_round_trips_through_progressive_encoding() {
    let app = app();
    let table = app.table();
    let slice = app.query_group(RequestId(1), &[])[0].execute(&table);
    let encoder = RoundRobinEncoder::new(app.config().blocks_per_response);
    let blocks = encoder.encode(slice.values());
    assert_eq!(blocks.len(), 4);
    // Half the blocks: roughly half the cells known.
    let partial = encoder.decode_prefix(&blocks[..2]);
    let known = partial.iter().filter(|v| v.is_some()).count();
    assert!(known * 2 >= slice.values().len() - 4);
    // All blocks: exact reconstruction.
    let full = encoder.decode_prefix(&blocks);
    let reconstructed: Vec<u64> = full.into_iter().map(Option::unwrap).collect();
    assert_eq!(reconstructed, slice.values());
}

/// The PostgreSQL-like cost model degrades under concurrency while the
/// scalable model does not — the mechanism behind Figure 14's backend
/// comparison.
#[test]
fn cost_models_capture_backend_scalability() {
    let app = app();
    let pg = app.cost_model(FalconBackendKind::PostgresLike, FalconDataset::Small);
    let sc = app.cost_model(FalconBackendKind::Scalable, FalconDataset::Small);
    let pg_isolated = pg.latency(FalconDataset::Small.rows(), 1);
    let pg_contended = pg.latency(FalconDataset::Small.rows(), 40);
    assert!(pg_contended.as_millis_f64() > pg_isolated.as_millis_f64() * 2.0);
    assert_eq!(
        sc.latency(FalconDataset::Small.rows(), 1),
        sc.latency(FalconDataset::Small.rows(), 40)
    );
    // And the executor actually runs queries under those models.
    let mut ex = QueryExecutor::new(app.table(), CostModel::key_value());
    let q = &app.query_group(RequestId(3), &[])[0];
    let (slice, latency) = ex.execute(q, 1);
    assert!(slice.total() > 0);
    assert!(latency.as_millis_f64() < 5.0);
}
